#!/usr/bin/env python
"""Reproduce the paper's headline result at reduced scale.

"PocketSearch can serve, on average, 66% of the web search queries
submitted by an individual user without having to use the slow 3G link,
leading to 16x service access speedup."

Builds the calibrated default log, replays one month of per-user query
streams against caches built from the previous month (Section 6.2), and
prints the Figure 17 decomposition plus the latency/energy advantage.

Run: python examples/headline_reproduction.py   (takes ~1 minute)
"""

from repro.experiments import hitrate, performance


def main() -> None:
    print("== hit rates (Figure 17), 40 users per Table 6 class ==")
    f17 = hitrate.figure17(users_per_class=40)
    print(f"{'mode':18} {'overall':>8} {'low':>7} {'medium':>7} {'high':>7} {'extreme':>8}")
    for mode, row in f17.items():
        print(
            f"{mode:18} {row['overall']:8.3f} {row['low']:7.3f} "
            f"{row['medium']:7.3f} {row['high']:7.3f} {row['extreme']:8.3f}"
        )
    print(f"paper: full cache ~0.65 overall, rising with class volume\n")

    print("== service speed and energy (Figure 15) ==")
    f15 = performance.figure15()
    ps = f15["pocketsearch"]
    print(
        f"pocketsearch: {ps['mean_latency_s'] * 1000:.0f} ms, "
        f"{ps['mean_energy_j']:.2f} J per query"
    )
    for radio in ("3g", "edge", "802.11g"):
        row = f15[radio]
        print(
            f"{radio:12}: {row['mean_latency_s']:.2f} s "
            f"({row['latency_speedup']:.1f}x slower), "
            f"{row['mean_energy_j']:.1f} J ({row['energy_ratio']:.1f}x more energy)"
        )
    print("paper: 16x/25x/7x latency, 23x/41x/11x energy")

    full = f17["full"]["overall"]
    speedup = f15["3g"]["latency_speedup"]
    print(
        f"\nheadline: {full:.0%} of an individual's queries served locally, "
        f"{speedup:.0f}x faster than 3G"
    )


if __name__ == "__main__":
    main()
