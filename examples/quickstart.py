#!/usr/bin/env python
"""Quickstart: build a PocketSearch cache from logs and serve queries.

Walks the full pipeline on a small synthetic universe:

1. generate a two-month mobile search log;
2. mine the community cache content from month 0 (Section 5.1);
3. load it into a PocketSearch cache (hash table + 32-file flash DB);
4. serve month-1 queries, watching hits (~0.4 s) vs 3G misses (~6 s)
   and the personalization component learning from misses.

Run: python examples/quickstart.py
"""

from repro.logs.generator import GeneratorConfig, generate_logs
from repro.logs.popularity import CommunityModel
from repro.logs.users import PopulationConfig, UserPopulation
from repro.logs.vocabulary import Vocabulary, VocabularyConfig
from repro.pocketsearch.content import ContentPolicy, build_cache_content
from repro.pocketsearch.engine import PocketSearchEngine
from repro.sim.replay import CacheMode, make_cache


def main() -> None:
    print("== 1. generate a small mobile search log ==")
    community = CommunityModel(
        Vocabulary.build(VocabularyConfig(n_nav_topics=800, n_non_nav_topics=1200))
    )
    population = UserPopulation.build(PopulationConfig(n_users=300, seed=1))
    log = generate_logs(community, population, GeneratorConfig(months=2, seed=2))
    print(f"   {log.n_events} events from {len(population.users)} users")

    print("== 2. mine the community cache content (Section 5.1) ==")
    content = build_cache_content(log.month(0), ContentPolicy(target_coverage=0.55))
    print(
        f"   {content.n_pairs} query-result pairs covering "
        f"{content.coverage:.0%} of volume"
    )
    print(
        f"   footprint: {content.approx_dram_bytes / 1024:.0f} KB DRAM, "
        f"{content.flash_bytes / 1024:.0f} KB flash"
    )

    print("== 3. load the cache and start the engine ==")
    cache = make_cache(content, CacheMode.FULL)
    engine = PocketSearchEngine(cache)

    print("== 4. serve a user's queries ==")
    stream = log.month(1)
    shown = 0
    for i in range(stream.n_events):
        query = stream.query_string(int(stream.query_keys[i]))
        url = stream.result_url(int(stream.result_keys[i]))
        result = engine.serve_query(query, url)
        outcome = result.outcome
        if shown < 8:
            path = "cache hit " if outcome.hit else f"miss ({outcome.source.value})"
            print(
                f"   {query!r:28} -> {path:12} "
                f"{outcome.latency_s * 1000:8.1f} ms  {outcome.energy_j:6.2f} J"
            )
            shown += 1
        if i > 200:
            break

    print("== 5. summary ==")
    print(f"   hit rate so far: {cache.hit_rate:.0%}")
    print(f"   cache now holds {cache.hashtable.n_pairs} pairs "
          f"({cache.dram_bytes / 1024:.0f} KB DRAM)")


if __name__ == "__main__":
    main()
