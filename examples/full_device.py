#!/usr/bin/env python
"""A whole phone of pocket cloudlets (the paper's end vision).

Builds a 2018-generation low-end device hosting all five cloudlets —
search, ads, web content, maps, yellow pages — on one NVM partition,
then runs a slice of a user's day across all of them.

Run: python examples/full_device.py
"""

from repro.device import PocketDevice
from repro.logs.generator import GeneratorConfig, generate_logs
from repro.logs.popularity import CommunityModel
from repro.logs.users import PopulationConfig, UserPopulation
from repro.logs.vocabulary import Vocabulary, VocabularyConfig
from repro.pocketmaps.grid import Region

GB = 1024**3
MB = 1024**2


def main() -> None:
    print("== sizing the device (Section 2 projection) ==")
    spec = PocketDevice.plan(year=2018, tier="low")
    print(f"   2018 low-end NVM: {spec.nvm_bytes / GB:.0f} GB, "
          f"cloudlet partition: {spec.partition_bytes / GB:.1f} GB")
    for name, budget in spec.budgets.items():
        print(f"   {name:8} budget: {budget / MB:8.0f} MB")

    print("== building with community search content ==")
    community = CommunityModel(
        Vocabulary.build(VocabularyConfig(n_nav_topics=600, n_non_nav_topics=900))
    )
    population = UserPopulation.build(PopulationConfig(n_users=250, seed=9))
    log = generate_logs(community, population, GeneratorConfig(months=1, seed=10))
    device = PocketDevice.build(year=2018, log=log)
    print(f"   search cache: {device.search.cache.hashtable.n_pairs} pairs, "
          f"ads: {device.ads.n_queries_with_ads} queries with banners")

    print("== a slice of the user's day ==")
    query = next(iter(device.search.cache.query_registry.values()))
    hit = device.search.measure_hit(query)
    print(f"   search {query!r}: hit in {hit.outcome.latency_s * 1000:.0f} ms")
    ad = device.ads.serve(query, search_hit=True)
    print(f"   local ad alongside: {ad.served[0].advertiser if ad.served else None}")

    device.maps.prefetch_region(Region(0, 0, 9000, 9000))
    view = device.maps.serve_viewport(Region.viewport(4000, 4000))
    print(f"   map viewport: {view.tiles_hit}/{view.tiles_needed} tiles local, "
          f"{view.latency_s * 1000:.0f} ms")

    device.yellow.prefetch_region(Region(0, 0, 9000, 9000))
    biz = device.yellow.search("coffee", 4000, 4000)
    print(f"   'coffee near me': {len(biz.businesses)} results, "
          f"{biz.latency_s * 1000:.0f} ms, hit={biz.hit}")

    page = device.web.browse("www.dailyread.example", 9 * 3600.0)
    again = device.web.browse("www.dailyread.example", 13 * 3600.0)
    print(f"   first page visit: {page.latency_s:.1f} s ({page.path}); "
          f"revisit: {again.latency_s:.1f} s ({again.path})")

    print("== storage report ==")
    for name, row in device.storage_report().items():
        print(f"   {name:8} {row['used_bytes'] / MB:8.1f} / "
              f"{row['budget_bytes'] / MB:.0f} MB "
              f"({row['used_frac']:.1%})")


if __name__ == "__main__":
    main()
