#!/usr/bin/env python
"""PocketWeb: the web-content cloudlet in action (intro, Section 3.2).

A user's browsing day: staple pages served instantly from flash, a hot
news page revalidated with a cheap conditional GET, cold pages fetched
once and cached, and the overnight charge-time update that refreshes and
prefetches for tomorrow.

Run: python examples/pocketweb_browsing.py
"""

from repro.core.management import ChargeState
from repro.core.selection import CommunityAccessModel
from repro.pocketweb import PocketWebCloudlet
from repro.pocketweb.pages import PageModel

MB = 1024**2
HOUR = 3600.0
DAY = 86400.0


def show(outcome):
    print(
        f"  {outcome.url:26} {outcome.path:13} "
        f"{outcome.latency_s:6.2f} s  {outcome.energy_j:6.2f} J  "
        f"radio {outcome.bytes_over_radio / 1024:6.0f} KB"
    )


def main() -> None:
    web = PocketWebCloudlet(budget_bytes=64 * MB, page_model=PageModel())
    staples = ["www.site1.com", "www.site2.com", "www.mail.example"]
    news = "www.dailynews.example"

    print("== day 1: everything is cold ==")
    t = 8 * HOUR
    for url in staples + [news]:
        show(web.browse(url, t))
        t += HOUR

    print("== the rest of day 1: staples hit, news stays hot ==")
    for hour in range(4):
        for url in staples + [news]:
            web.browse(url, t)
            t += 0.5 * HOUR

    print("== overnight: charging on WiFi, bulk refresh + prefetch ==")
    hints = CommunityAccessModel()
    for i, url in enumerate(["www.popular-a.example", "www.popular-b.example"]):
        hints.record(url, 1000 - i)
    counters = web.overnight_update(
        DAY, ChargeState(charging=True, on_fast_link=True), community_hints=hints
    )
    print(f"  refreshed {counters['refreshed']} cached pages, "
          f"prefetched {counters['prefetched']} community picks")

    print("== day 2 morning ==")
    t = DAY + 8 * HOUR
    for url in staples + [news, "www.popular-a.example"]:
        show(web.browse(url, t))
        t += HOUR

    print("== summary ==")
    print(f"  visit hit rate: {web.hit_rate:.0%}")
    print(f"  bytes over radio: {web.bytes_over_radio / MB:.1f} MB")
    print(f"  store: {web.store.n_pages} pages, "
          f"{web.store.bytes_stored / MB:.1f} MB")


if __name__ == "__main__":
    main()
