#!/usr/bin/env python
"""NVM capacity planning for future devices (Section 2).

Projects smartphone NVM capacity out to 2026 under the Table 1 roadmap
and, for each year, asks which pocket cloudlets a low-end device could
host with 10% of its storage — reproducing the reasoning behind Table 2.

Run: python examples/nvm_capacity_planning.py
"""

from repro.nvmscaling.capacity import CLOUDLET_ITEM_SIZES, items_storable
from repro.nvmscaling.projection import ScalingScenario, project_capacity_series

GB = 1024**3

#: Items each cloudlet needs to be useful to a typical user (paper's
#: per-service discussion: a state's map tiles, the user's ~1000 URLs...)
USEFUL_THRESHOLDS = {
    "web_search": 10_000,  # the popular query-result pairs + headroom
    "web_content": 1_000,  # 90% of users visit < 1000 URLs
    "mapping": 5_500_000,  # map tiles covering a whole US state
    "yellow_business": 23_000_000,  # every US business (Section 7)
}


def main() -> None:
    print(f"{'year':>5} {'high-end':>9} {'low-end':>8}  feasible cloudlets (10% budget)")
    for projection in project_capacity_series(ScalingScenario.ALL_TECHNIQUES):
        budget = projection.low_end_bytes * 0.10
        feasible = []
        for name, needed in USEFUL_THRESHOLDS.items():
            fits = items_storable(
                CLOUDLET_ITEM_SIZES[name].item_bytes, int(budget)
            )
            if fits >= needed:
                feasible.append(name)
        print(
            f"{projection.year:>5} {projection.high_end_gb:>7.0f}GB "
            f"{projection.low_end_gb:>6.1f}GB  {', '.join(feasible) or '-'}"
        )
    print(
        "\nthe paper's observation: by the mid-2010s even low-end devices"
        "\ncan host search and web-content cloudlets; mapping a whole state"
        "\nand full yellow pages arrive with the ~256 GB generation."
    )


if __name__ == "__main__":
    main()
