#!/usr/bin/env python
"""The cache-management protocol in action (Section 5.4, Figure 14).

Shows one nightly update round: the phone uploads its hash table, the
server prunes never-accessed community pairs and stale personal pairs,
merges the fresh popular set, and ships a new table plus per-file patch
files — all within the paper's ~1.5 MB exchange budget.

Run: python examples/nightly_update.py
"""

from repro.logs.generator import GeneratorConfig, generate_logs
from repro.logs.popularity import CommunityModel
from repro.logs.users import PopulationConfig, UserPopulation
from repro.logs.vocabulary import Vocabulary, VocabularyConfig
from repro.pocketsearch.content import ContentPolicy, build_cache_content
from repro.pocketsearch.engine import PocketSearchEngine
from repro.pocketsearch.manager import CacheUpdateServer
from repro.sim.replay import CacheMode, make_cache


def main() -> None:
    community = CommunityModel(
        Vocabulary.build(VocabularyConfig(n_nav_topics=500, n_non_nav_topics=800))
    )
    population = UserPopulation.build(PopulationConfig(n_users=250, seed=3))
    log = generate_logs(community, population, GeneratorConfig(months=2, seed=4))

    policy = ContentPolicy(target_coverage=0.5)
    cache = make_cache(build_cache_content(log.month(0), policy), CacheMode.FULL)
    engine = PocketSearchEngine(cache)
    print(f"day 0: cache holds {cache.hashtable.n_pairs} pairs")

    # The user searches during the day; some personal pairs enter the cache.
    stream = log.month(1)
    for i in range(min(120, stream.n_events)):
        engine.serve_query(
            stream.query_string(int(stream.query_keys[i])),
            stream.result_url(int(stream.result_keys[i])),
        )
    print(
        f"after a day of use: {cache.hashtable.n_pairs} pairs, "
        f"hit rate {cache.hit_rate:.0%}"
    )

    # Overnight, while charging on WiFi, the server refreshes the cache.
    server = CacheUpdateServer(policy=policy)
    patch = server.refresh(cache, log.month(1))
    print("\nnightly update round:")
    print(f"  uploaded hash table: {patch.bytes_uploaded / 1024:.0f} KB")
    print(f"  pruned pairs:        {patch.pairs_removed}")
    print(f"  fresh pairs merged:  {patch.pairs_added}")
    print(f"  new results shipped: {patch.results_added} "
          f"across {len(patch.patch_files)} patch files")
    print(f"  downloaded:          {patch.bytes_downloaded / 1024:.0f} KB")
    total = patch.bytes_uploaded + patch.bytes_downloaded
    print(f"  total exchange:      {total / 1024:.0f} KB "
          f"(paper budget: ~1.5 MB)")
    print(f"\ncache after update: {cache.hashtable.n_pairs} pairs")


if __name__ == "__main__":
    main()
