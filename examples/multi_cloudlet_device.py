#!/usr/bin/env python
"""A device hosting several pocket cloudlets (Sections 3 and 7).

Registers search, ads, and mapping cloudlets under the OS-level registry,
sizes their budgets from the Table 2 arithmetic, then demonstrates the
Section 7 mechanisms: index-memory budgeting, coordinated eviction of
related items, and cross-cloudlet isolation.

Run: python examples/multi_cloudlet_device.py
"""

from repro.core.cloudlet import Cloudlet
from repro.core.registry import CloudletRegistry, IsolationError
from repro.nvmscaling.capacity import CLOUDLET_ITEM_SIZES, items_storable

GB = 1024**3
MB = 1024**2


class KeyValueCloudlet(Cloudlet):
    """A simple in-memory cloudlet for demonstration."""

    def __init__(self, name, budget, local_ms, radio_s):
        super().__init__(name, budget)
        self._store = {}
        self._sizes = {}
        self._costs = (local_ms / 1000, radio_s)

    def lookup_local(self, key):
        return self._store.get(key)

    def store_local(self, key, value, nbytes):
        self._store[key] = value
        self._sizes[key] = nbytes

    def evict(self, nbytes):
        freed = 0
        for key in list(self._store):
            if freed >= nbytes:
                break
            freed += self._sizes.pop(key)
            del self._store[key]
        return freed

    def local_cost(self, key):
        return (self._costs[0], 0.4)

    def remote_cost(self, key):
        return (self._costs[1], 8.0)


def main() -> None:
    # A 2018-era low-end phone: 16 GB NVM, 10% for cloudlets (Section 2).
    budget = int(16 * GB * 0.10)
    print(f"cloudlet partition: {budget / GB:.1f} GB")
    for name in ("web_search", "mobile_ads", "mapping"):
        spec = CLOUDLET_ITEM_SIZES[name]
        print(
            f"  {name:14} -> {items_storable(spec.item_bytes, budget // 3):,} "
            f"items of {spec.item_bytes // 1024} KB ({spec.item_description})"
        )

    registry = CloudletRegistry(
        total_budget_bytes=budget, index_budget_bytes=64 * MB
    )
    search = KeyValueCloudlet("search", budget // 2, local_ms=380, radio_s=6.0)
    ads = KeyValueCloudlet("ads", budget // 4, local_ms=50, radio_s=6.0)
    maps = KeyValueCloudlet("maps", budget // 4, local_ms=120, radio_s=9.0)
    registry.register(search, index_bytes=2 * MB)
    registry.register(ads, index_bytes=1 * MB)
    registry.register(maps, index_bytes=8 * MB)
    print(f"registered: {registry.names}, free: {registry.free_bytes / GB:.2f} GB")

    # Related content: one query touches both the search and ad caches.
    search.record_access("pizza near me", "results page", 100_000)
    ads.record_access("pizza near me", "pizza banner", 5_000)
    registry.link_group(
        "pizza near me",
        [("search", "pizza near me", 100_000), ("ads", "pizza near me", 5_000)],
    )
    print("\nserving 'pizza near me':")
    print(f"  search: hit={registry.cloudlet('search').serve('pizza near me').hit}")
    print(f"  ads:    hit={registry.cloudlet('ads').serve('pizza near me').hit}")

    # Coordinated eviction: evicting the query drops BOTH entries — an ad
    # hit is worthless once the search query misses (Section 7).
    event = registry.evict_group("pizza near me")
    print(f"coordinated eviction freed {event.total_freed:,} bytes across "
          f"{sorted(event.freed_bytes)}")
    print(f"  search now: hit={registry.cloudlet('search').serve('pizza near me').hit}")

    # Isolation: the maps cloudlet cannot read search data without a grant.
    search.record_access("my bank", "bank results", 50_000)
    try:
        registry.read_across("maps", "search", "my bank")
    except IsolationError as error:
        print(f"\nisolation enforced: {error}")
    registry.grant_access("maps", "search")
    print(f"after grant: {registry.read_across('maps', 'search', 'my bank')!r}")


if __name__ == "__main__":
    main()
