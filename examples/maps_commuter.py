#!/usr/bin/env python
"""PocketMaps: a commuter's month of map viewports (Table 2, Section 7).

Prefetches the home-work corridor while charging, then serves a month of
commute viewports from flash — side trips miss once, get batched over
the radio, and hit afterwards.  Ends with the Table 2 coverage check:
how much of the US the 25.6 GB cloudlet budget can blanket in tiles.

Run: python examples/maps_commuter.py
"""

from repro.experiments.extensions import maps_commute
from repro.pocketmaps.grid import (
    TILE_BYTES,
    area_km2_for_tiles,
    states_coverable,
    tiles_for_area_km2,
)

GB = 1024**3


def main() -> None:
    print("== one month of commuting with a 128 MB tile budget ==")
    result = maps_commute(days=20, budget_mb=128)
    for key, value in result.items():
        print(f"   {key:24} {value:,.3f}")

    print("\n== Table 2: what the 25.6 GB cloudlet budget covers ==")
    budget = int(25.6 * GB)
    tiles = budget // TILE_BYTES
    print(f"   tiles storable:   {tiles:,} (paper: ~5.5 million)")
    print(f"   ground coverage:  {area_km2_for_tiles(tiles):,.0f} km^2")
    print(f"   whole states:     {', '.join(states_coverable(budget))}")
    print(f"   (Washington state alone needs "
          f"{tiles_for_area_km2(184_800):,} tiles)")


if __name__ == "__main__":
    main()
