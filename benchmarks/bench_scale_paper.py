"""Paper-scale characterization: absolute numbers approach the paper's.

A 150k-topic universe and 10k users produce a ~770k-event month where
the Figure 4 head and the Figure 8 cache footprints land in the paper's
own absolute ranges (6000-query head, ~2500-result cache, ~1 MB flash,
~200 KB DRAM), demonstrating that the default-scale deviations are
scale-linked, not structural.
"""

from repro.experiments.scale import paper_scale_characterization
from repro.experiments.common import format_table
from benchmarks.conftest import run_once

PAPER = {
    "queries_for_60pct": "6000",
    "results_for_60pct": "4000",
    "repeat_rate": "0.565",
    "cache_flash_kb": "~1000",
    "cache_dram_kb": "~200",
    "unique_result_ratio": "~0.6-0.67",
}


def test_scale_paper_characterization(benchmark, report):
    stats = run_once(benchmark, paper_scale_characterization)
    rows = [
        [key, f"{value:,.3f}", PAPER.get(key, "")]
        for key, value in stats.items()
    ]
    body = format_table(rows, ["metric", "measured", "paper"])
    report("scale_paper", "Paper-scale characterization", body)
    # The 60% head is thousands of queries, as in the paper.
    assert 1_500 <= stats["queries_for_60pct"] <= 12_000
    # The saturation cache is paper-sized: ~2500 pairs, <2 MB flash.
    assert 1_000 <= stats["cache_pairs_at_55pct"] <= 6_000
    assert stats["cache_flash_kb"] < 2_000
    assert stats["cache_dram_kb"] < 300
