"""Extension: the PocketWeb content cloudlet (intro, Section 3.2)."""

from repro.experiments import extensions
from repro.experiments.common import format_table
from benchmarks.conftest import run_once


def test_ext_pocketweb(benchmark, report):
    result = run_once(benchmark, extensions.pocketweb_replay, users=20)
    body = format_table(
        [
            ["users replayed", f"{result['users']:.0f}"],
            ["page visits", f"{result['visits']:.0f}"],
            ["visit hit rate", f"{result['mean_hit_rate']:.3f}"],
            ["radio bytes saved", f"{result['radio_bytes_saved_frac']:.1%}"],
            ["energy advantage vs all-3G", f"{result['energy_ratio_vs_3g']:.2f}x"],
        ],
        ["metric", "value"],
    )
    body += (
        "\nthe paper's premise — 70% of web visits are revisits to a"
        "\nhandful of pages — makes an overnight-prefetched page cache"
        "\nserve ~70% of visits without the radio."
    )
    report("ext_pocketweb", "Extension: PocketWeb content cloudlet", body)
    assert result["mean_hit_rate"] > 0.55
    assert result["radio_bytes_saved_frac"] > 0.5
