"""Ablation: PocketSearch vs LRU, browser substring matching, no cache."""

from repro.experiments import ablations
from repro.experiments.common import format_table
from benchmarks.conftest import run_once


def test_ablation_baselines(benchmark, report):
    rates = run_once(benchmark, ablations.baseline_hit_rates, users_per_class=30)
    body = format_table(
        [[name, f"{rate:.3f}"] for name, rate in sorted(rates.items(), key=lambda kv: -kv[1])],
        ["system", "hit rate"],
    )
    body += (
        "\nthe browser URL-substring technique only covers navigational"
        "\nqueries whose exact text appears in a visited URL (Section 8);"
        "\nthe LRU cache lacks the community warm start."
    )
    report("ablation_baselines", "Ablation: baseline hit rates", body)
    assert rates["pocketsearch"] > rates["lru"] > rates["no_cache"]
    assert rates["pocketsearch"] > rates["browser_substring"]
