"""Figure 7: cumulative volume vs number of cached pairs."""

from repro.experiments import cachedesign
from repro.experiments.common import format_table


def test_fig7_cumulative_volume(benchmark, report):
    curve = benchmark(cachedesign.figure7)
    body = format_table(
        [[k, f"{v:.3f}"] for k, v in curve],
        ["cached pairs", "cumulative volume"],
    )
    body += (
        "\npaper shape: sharply diminishing returns — going from ~58% to"
        "\n~62% coverage requires doubling the cached pairs."
    )
    report("fig7", "Figure 7: cumulative query-result volume", body)
    coverage = dict(curve)
    ks = sorted(coverage)
    assert coverage[ks[-1]] > coverage[ks[0]]
