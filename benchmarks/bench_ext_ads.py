"""Extension: the ads cloudlet coupled to the search path (Section 7)."""

from repro.experiments import extensions
from repro.experiments.common import format_table
from benchmarks.conftest import run_once


def test_ext_ads(benchmark, report):
    result = run_once(benchmark, extensions.ads_coupling, users=24)
    body = format_table(
        [
            ["queries replayed", f"{result['queries']:.0f}"],
            ["search hit rate", f"{result['search_hit_rate']:.3f}"],
            ["local ads served on search hits", f"{result['ads_served_given_hit']:.3f}"],
            ["ad lookups suppressed (search missed)", f"{result['ads_suppressed_frac']:.3f}"],
        ],
        ["metric", "value"],
    )
    body += (
        "\nSection 7's coupling rule: when the search query misses, the"
        "\nradio wakes anyway, so the local ad cache is not consulted."
    )
    report("ext_ads", "Extension: PocketAds coupling", body)
    assert result["ads_served_given_hit"] > 0.5
