"""Table 3: the top of the <query, result, volume> triplet ranking."""

from repro.experiments import characterization
from repro.experiments.common import format_table


def test_table3_triplets(benchmark, report):
    triplets = benchmark(characterization.table3, 10)
    body = format_table(
        [[t.query, t.url, t.volume] for t in triplets],
        ["query", "search result", "volume"],
    )
    report("table3", "Table 3: top query-result pairs by volume", body)
    volumes = [t.volume for t in triplets]
    assert all(b <= a for a, b in zip(volumes, volumes[1:]))
