"""Figure 11: hash-table footprint vs results per entry."""

from repro.experiments import cachedesign
from repro.experiments.common import format_table


def test_fig11_hashtable_footprint(benchmark, report):
    rows = benchmark(cachedesign.figure11)
    best = min(rows, key=lambda r: r["footprint_bytes"])
    body = format_table(
        [
            [
                r["results_per_entry"],
                r["entries"],
                r["entry_bytes"],
                f"{r['footprint_bytes'] / 1024:.0f} KB",
                "<== min" if r is best else "",
            ]
            for r in rows
        ],
        ["results/entry", "entries", "entry bytes", "footprint", ""],
    )
    body += "\npaper: the smallest footprint is at two results per entry."
    report("fig11", "Figure 11: hash-table memory footprint", body)
    assert best["results_per_entry"] == 2
