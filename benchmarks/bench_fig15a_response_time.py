"""Figure 15(a): per-query user response time across service paths."""

from repro.experiments import performance
from repro.experiments.common import format_table

PAPER_SPEEDUPS = {"3g": 16, "edge": 25, "802.11g": 7}


def test_fig15a_response_time(benchmark, report):
    f15 = benchmark(performance.figure15)
    rows = [["pocketsearch", f"{f15['pocketsearch']['mean_latency_s']:.3f} s", "1x", "1x"]]
    for radio, paper in PAPER_SPEEDUPS.items():
        rows.append(
            [
                radio,
                f"{f15[radio]['mean_latency_s']:.3f} s",
                f"{f15[radio]['latency_speedup']:.1f}x",
                f"{paper}x",
            ]
        )
    body = format_table(
        rows, ["path", "response time", "PS speedup (measured)", "(paper)"]
    )
    report("fig15a", "Figure 15a: search user response time", body)
    for radio, paper in PAPER_SPEEDUPS.items():
        assert abs(f15[radio]["latency_speedup"] - paper) / paper < 0.15
