"""Extension: energy results expressed as battery life."""

from repro.experiments import extensions
from repro.experiments.common import format_table


def test_ext_battery(benchmark, report):
    result = benchmark(extensions.battery_life)
    body = format_table(
        [
            [
                path,
                f"{data['energy_per_query_j']:.2f} J",
                f"{data['queries_per_charge']:,}",
                f"{data['daily_share_pct']:.2f}%",
            ]
            for path, data in result.items()
        ],
        ["path", "energy/query", "queries/charge", "battery/day @40 queries"],
    )
    body += (
        "\na 1500 mAh battery sustains ~23x more PocketSearch queries"
        "\nthan 3G queries — Figure 15(b) in user-facing terms."
    )
    report("ext_battery", "Extension: battery-life impact", body)
    ratio = (
        result["pocketsearch"]["queries_per_charge"]
        / result["3g"]["queries_per_charge"]
    )
    assert 20 <= ratio <= 27
