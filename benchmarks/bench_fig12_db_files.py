"""Figure 12: retrieval time (and fragmentation) vs database file count."""

from repro.experiments import cachedesign
from repro.experiments.common import format_table


def test_fig12_db_files(benchmark, report):
    rows = benchmark(cachedesign.figure12)
    best_time = min(r["mean_fetch2_s"] for r in rows)
    body = format_table(
        [
            [
                r["n_files"],
                f"{r['mean_fetch2_s'] * 1000:.2f} ms",
                f"{r['std_fetch2_s'] * 1000:.2f} ms",
                f"{r['fragmentation_bytes'] / 1024:.0f} KB",
            ]
            for r in rows
        ],
        ["files", "fetch 2 results (mean)", "(std)", "fragmentation"],
    )
    body += (
        "\npaper: 32 files is the best tradeoff — near-minimal retrieval"
        "\ntime at a fraction of the fragmentation of higher file counts."
    )
    report("fig12", "Figure 12: database file-count tradeoff", body)
    by_files = {r["n_files"]: r for r in rows}
    assert by_files[32]["mean_fetch2_s"] <= 1.15 * best_time
    assert by_files[1]["mean_fetch2_s"] > 3 * best_time
