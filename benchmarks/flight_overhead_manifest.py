"""Flight-recorder overhead: recorder-on vs recorder-off, one manifest.

Runs the identical open-loop load test twice on the simulated clock —
once with a bare :class:`~repro.serve.telemetry.ServeTelemetry`, once
with a :class:`~repro.obs.flight.FlightRecorder` attached and a forced
bundle dump at the end — and writes one ``flight_overhead`` manifest
carrying both runs' serving metrics plus the wall-clock cost of
recording.  Because the clock is simulated, the recorder must be a pure
observer: any drift between the two runs' serving metrics is an
observer-effect bug and aborts the bench.  The manifest rides the
normal BENCH trajectory, so CI gates the recorder-on latency
percentiles against the committed seed::

    PYTHONPATH=src python benchmarks/flight_overhead_manifest.py \
        --out manifests/flight_overhead.json
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.experiments.common import DEFAULT_SEED, default_log
from repro.obs.flight import FlightRecorder
from repro.obs.manifest import ManifestRecorder
from repro.obs.triggers import TriggerConfig, TriggerEngine
from repro.serve import LoadGenConfig, ServeConfig, run_loadtest
from repro.serve.telemetry import ServeTelemetry

#: Serving metrics that must be bit-identical with and without the
#: recorder attached, and that the bench gate watches over time.
SERVING_METRICS = (
    "requests",
    "completed",
    "shed_rate",
    "hit_rate",
    "throughput_rps",
    "sojourn_p50_s",
    "sojourn_p99_s",
)


def _run_once(log, loadgen, serve_config, flight=None):
    telemetry = ServeTelemetry()
    if flight is not None:
        flight.attach(telemetry)
    t0 = time.perf_counter()
    report, _ = run_loadtest(
        log, loadgen, serve_config, telemetry=telemetry
    )
    wall_s = time.perf_counter() - t0
    point = {name: getattr(report, name) for name in SERVING_METRICS}
    point["wall_s"] = round(wall_s, 4)
    return point, wall_s


def run(
    duration_s: float,
    rate: float,
    max_devices: int,
    bundle_dir: str,
    seed: int,
    out: str,
) -> dict:
    log = default_log()
    loadgen = LoadGenConfig(
        duration_s=duration_s,
        rate_multiplier=rate,
        seed=seed,
        max_devices=max_devices or None,
    )
    serve_config = ServeConfig()
    recorder = ManifestRecorder(
        "flight_overhead",
        config={
            "duration_s": duration_s,
            "rate_multiplier": rate,
            "max_devices": max_devices,
        },
        seed=seed,
    )
    with recorder:
        off, wall_off = _run_once(log, loadgen, serve_config)
        flight = FlightRecorder(
            config={"bench": "flight_overhead"},
            seed=seed,
            triggers=TriggerEngine(TriggerConfig(bundle_dir=bundle_dir)),
        )
        on, wall_on = _run_once(log, loadgen, serve_config, flight=flight)
        t0 = time.perf_counter()
        flight.finalize(force=True)
        dump_wall_s = time.perf_counter() - t0

        drifted = [
            name for name in SERVING_METRICS if off[name] != on[name]
        ]
        if drifted:
            raise SystemExit(
                "FATAL: flight recorder perturbed the simulated run: "
                + ", ".join(
                    f"{n} {off[n]!r} -> {on[n]!r}" for n in drifted
                )
            )
        status = flight.status()
        recorder.add_metric("off", off)
        recorder.add_metric("on", on)
        recorder.add_metric("identical", True)
        recorder.add_metric(
            "wall_overhead_frac",
            round((wall_on - wall_off) / max(wall_off, 1e-9), 4),
        )
        recorder.add_metric("bundle_dump_wall_s", round(dump_wall_s, 4))
        recorder.add_metric(
            "flight_records_seen", sum(status["seen"].values())
        )
        recorder.add_metric(
            "flight_records_retained", sum(status["retained"].values())
        )
        print(
            f"off: p99 {off['sojourn_p99_s']:.3f}s in {wall_off:.2f}s wall; "
            f"on: p99 {on['sojourn_p99_s']:.3f}s in {wall_on:.2f}s wall "
            f"(+{(wall_on - wall_off) / max(wall_off, 1e-9):.1%}); "
            f"dump {dump_wall_s * 1e3:.1f}ms"
        )
    path = recorder.manifest.write(out)
    print(f"wrote manifest to {path}")
    return recorder.manifest.to_dict()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--duration", type=float, default=600.0,
        help="simulated seconds per run (default 600)",
    )
    parser.add_argument(
        "--rate", type=float, default=10.0,
        help="offered-load multiplier (default 10)",
    )
    parser.add_argument(
        "--max-devices", type=int, default=50,
        help="cap distinct devices, 0 = no cap (default 50)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--bundle-dir", default=None, metavar="DIR",
        help="where the forced bundle lands (default: a temp dir)",
    )
    parser.add_argument(
        "--out", default="manifests/flight_overhead.json",
        help="manifest destination path",
    )
    args = parser.parse_args(argv)
    if args.bundle_dir is not None:
        run(
            args.duration, args.rate, args.max_devices,
            args.bundle_dir, args.seed, args.out,
        )
    else:
        with tempfile.TemporaryDirectory() as tmp:
            run(
                args.duration, args.rate, args.max_devices,
                tmp, args.seed, args.out,
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
