"""Figure 19: navigational vs non-navigational cache hits."""

from repro.experiments import hitrate
from repro.experiments.common import format_table
from benchmarks.conftest import run_once


def test_fig19_nav_breakdown(benchmark, report):
    f19 = run_once(benchmark, hitrate.figure19, users_per_class=100)
    rows = [
        [name, f"{split['navigational']:.3f}", f"{split['non_navigational']:.3f}"]
        for name, split in f19.items()
    ]
    body = format_table(rows, ["class", "navigational", "non-navigational"])
    body += (
        "\npaper: 59% of hits navigational overall; non-navigational share"
        "\ngrows for the high-volume classes.  Our synthetic aliases are"
        "\nclassified non-navigational by the strict substring rule, which"
        "\nshifts the split toward non-navigational (see EXPERIMENTS.md)."
    )
    report("fig19", "Figure 19: hit breakdown by query type", body)
    overall = f19["overall"]
    assert abs(overall["navigational"] + overall["non_navigational"] - 1.0) < 1e-9
    assert 0.2 <= overall["navigational"] <= 0.8
