"""Extension: latency unpredictability and server load relief."""

from repro.experiments import extensions
from repro.experiments.common import format_table
from benchmarks.conftest import run_once


def test_ext_latency_variability(benchmark, report):
    result = run_once(benchmark, extensions.latency_variability, n_requests=1000)
    rows = [
        [
            path,
            f"{d['p10']:.2f} s",
            f"{d['p50']:.2f} s",
            f"{d['p90']:.2f} s",
            f"{d['p99']:.2f} s",
            f"{d['spread']:.2f} s",
        ]
        for path, d in result.items()
    ]
    body = format_table(rows, ["path", "P10", "P50", "P90", "P99", "P99-P10"])
    body += (
        "\nthe paper's Section 1 claim: 3G search takes '3 to 10 seconds"
        "\ndepending on location, device and operator', doubling or more on"
        "\nweak signal — while a cache hit is deterministic at ~0.37 s."
    )
    report("ext_variability", "Extension: latency distributions", body)
    threeg = result["3g"]
    assert 3.0 <= threeg["p10"] <= 10.0
    assert threeg["p99"] > 1.5 * threeg["p10"]
    assert result["pocketsearch"]["spread"] == 0.0
    assert result["edge"]["p50"] > threeg["p50"]


def test_ext_server_load(benchmark, report):
    result = run_once(benchmark, extensions.server_load_relief)
    body = format_table(
        [
            ["queries replayed", f"{result['queries']:.0f}"],
            ["reaching the server", f"{result['server_queries']:.0f}"],
            ["load eliminated", f"{result['load_eliminated_frac']:.1%}"],
            [
                "peak hour (h{}): QPS before/after".format(result["peak_hour"]),
                f"{result['peak_hour_before']:.0f} -> {result['peak_hour_after']:.0f}",
            ],
            ["peak reduction", f"{result['peak_reduction_frac']:.1%}"],
        ],
        ["metric", "value"],
    )
    body += (
        "\nSection 7: 'Pocketsearch prevents 66% of the query volume"
        "\nacross all users from hitting the cellular radio and the search"
        "\nengine servers' — query-weighted, our heavier (more repetitive)"
        "\nusers push the eliminated share slightly above the per-user mean."
    )
    report("ext_server_load", "Extension: search-engine load relief", body)
    assert 0.6 <= result["load_eliminated_frac"] <= 0.85
    assert result["peak_reduction_frac"] > 0.5
    assert 11 <= result["peak_hour"] <= 23  # daytime/evening peak
