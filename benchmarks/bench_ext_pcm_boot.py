"""Extension: the PCM index tier (Section 3.3) at boot time."""

from repro.experiments import extensions
from repro.experiments.common import format_table


def test_ext_pcm_boot(benchmark, report):
    rows = benchmark(extensions.pcm_boot)
    body = format_table(
        [
            [
                f"{r['index_mb']} MB",
                f"{r['dram_only_s']:.3f} s",
                f"{r['with_pcm_s'] * 1e6:.1f} us",
            ]
            for r in rows
        ],
        ["index size", "boot load (DRAM-only)", "boot load (PCM tier)"],
    )
    body += (
        "\nSection 3.3: GB-scale indexes take tens of seconds to stream"
        "\nfrom NAND after every power cycle; a PCM tier makes them"
        "\ninstantly available at boot."
    )
    report("ext_pcm_boot", "Extension: PCM index tier at boot", body)
    big = rows[-1]
    assert big["dram_only_s"] > 10.0
    assert big["with_pcm_s"] < 1e-3
