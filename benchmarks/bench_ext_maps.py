"""Extension: the mapping cloudlet on a commuting workload."""

from repro.experiments import extensions
from repro.experiments.common import format_table
from repro.pocketmaps.grid import area_km2_for_tiles, states_coverable
from benchmarks.conftest import run_once

GB = 1024**3


def test_ext_maps(benchmark, report):
    result = run_once(benchmark, extensions.maps_commute)
    body = format_table(
        [
            ["corridor tiles prefetched", f"{result['prefetched_tiles']:.0f}"],
            ["viewports served", f"{result['viewports']:.0f}"],
            ["viewport hit rate", f"{result['viewport_hit_rate']:.3f}"],
            ["tile hit rate", f"{result['tile_hit_rate']:.3f}"],
            ["radio bytes saved", f"{result['radio_bytes_saved_frac']:.1%}"],
            ["store used", f"{result['store_mb']:.1f} MB"],
        ],
        ["metric", "value"],
    )
    budget = int(25.6 * GB)
    tiles = budget // (5 * 1024)
    body += (
        f"\nTable 2 check: the 25.6 GB cloudlet budget holds {tiles:,} tiles"
        f"\n= {area_km2_for_tiles(tiles):,.0f} km^2 — enough for"
        f" {', '.join(states_coverable(budget))}."
    )
    report("ext_maps", "Extension: PocketMaps commuting workload", body)
    assert result["viewport_hit_rate"] > 0.8
    assert result["radio_bytes_saved_frac"] > 0.8


def test_ext_suggest(benchmark, report):
    result = run_once(benchmark, extensions.suggest_effort, users=12)
    body = format_table(
        [
            ["cached queries tested", f"{result['hit_queries_tested']:.0f}"],
            ["topped the box before fully typed", f"{result['topped_before_full_query']:.1%}"],
            ["mean keystrokes saved", f"{result['mean_keystrokes_saved_frac']:.1%}"],
        ],
        ["metric", "value"],
    )
    body += (
        "\nFigure 1's experience: actual results appear in the"
        "\nauto-suggest box while typing — ~94% of cached queries top the"
        "\nbox early, saving ~44% of keystrokes."
    )
    report("ext_suggest", "Extension: auto-suggest effort savings", body)
    assert result["topped_before_full_query"] > 0.7


def test_ext_yellow_pages(benchmark, report):
    from repro.pocketyellow.directory import national_directory_bytes

    result = run_once(benchmark, extensions.yellow_pages_day)
    body = format_table(
        [
            ["metro tiles prefetched", f"{result['prefetched_tiles']:.0f}"],
            ["searches", f"{result['searches']:.0f}"],
            ["search hit rate", f"{result['search_hit_rate']:.3f}"],
            ["mean latency", f"{result['mean_latency_s']:.3f} s"],
            ["mean results returned", f"{result['mean_results']:.1f}"],
            ["store used", f"{result['store_mb']:.1f} MB"],
        ],
        ["metric", "value"],
    )
    national = national_directory_bytes() / GB
    body += (
        f"\nSection 7 check: the full US directory (23M businesses) needs"
        f"\n~{national:.0f} GB (paper: 'approximately 100 GB') — but a metro"
        "\narea fits in tens of MB and serves ~85% of searches locally."
    )
    report("ext_yellow", "Extension: PocketYellow metro workload", body)
    assert result["search_hit_rate"] > 0.6
