"""Figure 18: hit rate in week 1 and weeks 1-2 (warm start)."""

from repro.experiments import hitrate
from repro.experiments.common import format_table
from benchmarks.conftest import run_once


def test_fig18_warmup(benchmark, report):
    f18 = run_once(benchmark, hitrate.figure18, users_per_class=100)
    rows = []
    for window in ("week1", "weeks1_2", "full_month"):
        for mode, by_class in f18[window].items():
            rows.append(
                [window, mode]
                + [f"{by_class[k]:.3f}" for k in ("low", "medium", "high", "extreme")]
            )
    body = format_table(rows, ["window", "mode", "low", "medium", "high", "extreme"])
    body += (
        "\npaper: during week 1 the community component provides the warm"
        "\nstart (personalization is still cold, especially for low-volume"
        "\nusers), while the full cache already performs at its month-long"
        "\nlevel."
    )
    report("fig18", "Figure 18: first-week / two-week hit rates", body)
    week1 = f18["week1"]
    assert week1["community"]["low"] > week1["personalization"]["low"] - 0.03
