"""Section 6.2.2: daily cache updates vs a static monthly cache."""

from repro.experiments import hitrate
from repro.experiments.common import format_table
from benchmarks.conftest import run_once


def test_s622_daily_updates(benchmark, report):
    result = run_once(benchmark, hitrate.daily_updates, users_per_class=25)
    body = format_table(
        [
            ["static monthly cache", f"{result['static_hit_rate']:.3f}", "0.650"],
            ["daily updates", f"{result['daily_update_hit_rate']:.3f}", "0.660"],
            ["improvement", f"{result['improvement']:+.3f}", "+0.015"],
        ],
        ["configuration", "hit rate (measured)", "(paper)"],
    )
    body += (
        "\npaper: daily updates buy only ~1.5 points because the popular"
        "\nset barely changes within a month — the same stationarity holds"
        "\nfor the synthetic community."
    )
    report("s622", "Section 6.2.2: daily cache updates", body)
    assert result["improvement"] >= -0.02
