"""Figure 15(b): per-query energy across service paths."""

from repro.experiments import performance
from repro.experiments.common import format_table

PAPER_RATIOS = {"3g": 23, "edge": 41, "802.11g": 11}


def test_fig15b_energy(benchmark, report):
    f15 = benchmark(performance.figure15)
    rows = [["pocketsearch", f"{f15['pocketsearch']['mean_energy_j']:.2f} J", "1x", "1x"]]
    for radio, paper in PAPER_RATIOS.items():
        rows.append(
            [
                radio,
                f"{f15[radio]['mean_energy_j']:.2f} J",
                f"{f15[radio]['energy_ratio']:.1f}x",
                f"{paper}x",
            ]
        )
    body = format_table(
        rows, ["path", "energy/query", "PS advantage (measured)", "(paper)"]
    )
    body += "\npaper: the energy gaps exceed the latency gaps."
    report("fig15b", "Figure 15b: per-query energy", body)
    for radio, paper in PAPER_RATIOS.items():
        assert abs(f15[radio]["energy_ratio"] - paper) / paper < 0.15
        assert f15[radio]["energy_ratio"] > f15[radio]["latency_speedup"]
