"""Edge-tier community hit rate benchmark, recorded in a manifest.

Two halves, one manifest:

* **Offline capacity sweep** — the fixed device-miss reference stream
  replayed through an 8-node tier at increasing per-node slice
  capacities (:func:`repro.experiments.edge.capacity_sweep_experiment`).
  Strict-LRU slices make the hit-rate curve provably monotone
  non-decreasing; a violation is an implementation bug and the script
  dies rather than record it.  The sweep runs on the
  ``personalization`` replay mode, where device caches hold no
  community content — the traffic the cloudlet tier exists to absorb.

* **Live serve run** — the Section 6.2 replay through the online
  server fronted by 8 cloudlet nodes, recording the per-hop latency
  p99 and asserting every response's per-tier latency/energy breakdown
  re-sums to its end-to-end sojourn/joules within 1e-9 (again fatal:
  attribution drift is accounting corruption, not noise).

The manifest is ``emit_bench_json.py``-compatible, so the edge tier
rides the same BENCH trajectory as the rest of the benchmarks::

    PYTHONPATH=src python benchmarks/edge_hitrate_manifest.py \
        --out manifests/edge_hitrate.json
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.edge.tier import EdgeTopology
from repro.experiments.common import DEFAULT_SEED, default_log
from repro.experiments.edge import (
    capacity_sweep_experiment,
    hit_rate_vs_nodes,
)
from repro.obs.manifest import ManifestRecorder
from repro.serve.harness import serve_replay
from repro.sim.replay import CacheMode, ReplayConfig

#: Per-tier re-sum drift above this is an accounting bug (fatal).
RESUM_TOLERANCE = 1e-9


def run(
    users: int,
    sweep_users: int,
    n_nodes: int,
    capacities: list,
    seed: int,
    out: str,
) -> dict:
    recorder = ManifestRecorder(
        "edge_hitrate",
        config={
            "users": users,
            "sweep_users": sweep_users,
            "n_nodes": n_nodes,
            "capacities": capacities,
            "sweep_mode": CacheMode.PERSONALIZATION_ONLY,
        },
        seed=seed,
    )
    with recorder:
        # -- offline: hit rate vs. per-node capacity (monotone gate) --
        t0 = time.perf_counter()
        sweep = capacity_sweep_experiment(
            capacities=capacities,
            n_nodes=n_nodes,
            users_per_class=sweep_users,
            seed=seed,
            mode=CacheMode.PERSONALIZATION_ONLY,
        )
        sweep_wall_s = time.perf_counter() - t0
        rows = sweep["rows"]
        for row in rows:
            cap = row["node_capacity"]
            print(
                f"capacity {'inf' if cap is None else cap:>6}: "
                f"community hit rate {row['community_hit_rate']:.4f} "
                f"({row['community_hits']}/{row['events']}, "
                f"{row['evictions']} evictions)"
            )
        if not sweep["monotone"]:
            raise SystemExit(
                "FATAL: community hit rate is not monotone non-decreasing "
                "in node capacity — the LRU inclusion property is broken"
            )
        recorder.add_metric(
            "capacity_sweep",
            {
                (f"c{row['node_capacity']}" if row["node_capacity"]
                 is not None else "cinf"): {
                    "community_hit_rate": round(
                        row["community_hit_rate"], 6
                    ),
                    "evictions": row["evictions"],
                }
                for row in rows
            },
        )
        # flatten_metrics drops booleans; record the gate bit as a float
        recorder.add_metric("capacity_monotone", 1.0)
        recorder.add_metric(
            "community_hit_rate", round(rows[-1]["community_hit_rate"], 6)
        )
        recorder.add_metric("sweep_events", sweep["n_events"])
        recorder.add_metric("sweep_wall_s", round(sweep_wall_s, 4))

        # node-count scaling at the middle capacity, same stream
        mid_capacity = capacities[len(capacities) // 2]
        node_rows = hit_rate_vs_nodes(
            node_counts=(1, 2, 4, n_nodes),
            node_capacity=mid_capacity,
            users_per_class=sweep_users,
            seed=seed,
            mode=CacheMode.PERSONALIZATION_ONLY,
        )
        recorder.add_metric(
            "node_sweep",
            {
                f"n{row['n_nodes']}": round(row["community_hit_rate"], 6)
                for row in node_rows
            },
        )

        # -- live: 8-node serve run, per-hop accounting gate --
        t0 = time.perf_counter()
        _, reports = serve_replay(
            default_log(),
            ReplayConfig(users_per_class=users, seed=seed),
            modes=(CacheMode.FULL,),
            edge_topology=EdgeTopology(n_nodes=n_nodes, seed=seed),
        )
        live_wall_s = time.perf_counter() - t0
        report = reports[CacheMode.FULL]
        assert report.edge is not None
        for name, err in (
            ("latency", report.hop_resum_error_s),
            ("energy", report.hop_resum_error_j),
        ):
            if not err <= RESUM_TOLERANCE:
                raise SystemExit(
                    f"FATAL: per-hop {name} breakdowns drift "
                    f"{err:.3e} off the end-to-end totals "
                    f"(tolerance {RESUM_TOLERANCE})"
                )
        if report.shed:
            raise SystemExit(
                f"FATAL: unbounded edge run shed {report.shed} requests"
            )
        print(
            f"live {n_nodes}-node serve: "
            f"community hit rate {report.edge['community_hit_rate']:.4f}, "
            f"edge hop p99 {report.edge_hop_p99_s:.4f}s, "
            f"hop re-sum err {report.hop_resum_error_s:.2e}s / "
            f"{report.hop_resum_error_j:.2e}J "
            f"({live_wall_s:.2f}s wall)"
        )
        recorder.add_metric(
            "live_community_hit_rate",
            round(report.edge["community_hit_rate"], 6),
        )
        recorder.add_metric(
            "edge_hop_p99_s", round(report.edge_hop_p99_s, 6)
        )
        recorder.add_metric(
            "hop_resum_error_s", report.hop_resum_error_s
        )
        recorder.add_metric(
            "hop_resum_error_j", report.hop_resum_error_j
        )
        recorder.add_metric("live_wall_s", round(live_wall_s, 4))
    path = recorder.manifest.write(out)
    print(f"wrote manifest to {path}")
    return recorder.manifest.to_dict()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--users", type=int, default=2,
        help="users per class in the live serve run (default 2)",
    )
    parser.add_argument(
        "--sweep-users", type=int, default=20,
        help="users per class behind the offline miss stream (default 20)",
    )
    parser.add_argument(
        "--nodes", type=int, default=8,
        help="cloudlet node count (default 8)",
    )
    parser.add_argument(
        "--capacities", default="64,256,1024,inf",
        help="comma-separated per-node capacities, 'inf' = unbounded "
        "(default 64,256,1024,inf)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--out", default="manifests/edge_hitrate.json",
        help="manifest destination path",
    )
    args = parser.parse_args(argv)
    capacities = [
        None if c.strip() in ("inf", "none") else int(c)
        for c in args.capacities.split(",")
        if c.strip()
    ]
    if not capacities:
        print("no capacities given", file=sys.stderr)
        return 2
    run(
        args.users, args.sweep_users, args.nodes, capacities,
        args.seed, args.out,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
