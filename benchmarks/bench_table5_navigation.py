"""Table 5: navigation user response time."""

from repro.experiments import performance
from repro.experiments.common import format_table

PAPER = {"lightweight": (15.378, 21.048, 28.7), "heavyweight": (30.378, 36.048, 16.7)}


def test_table5_navigation(benchmark, report):
    t5 = benchmark(performance.table5)
    rows = [
        [
            page,
            f"{data['pocketsearch_s']:.2f} s",
            f"{data['threeg_s']:.2f} s",
            f"{data['speedup_pct']:.1f}%",
            f"{PAPER[page][2]:.1f}%",
        ]
        for page, data in t5.items()
    ]
    body = format_table(
        rows, ["page", "PocketSearch", "3G", "speedup (measured)", "(paper)"]
    )
    report("table5", "Table 5: navigation response time", body)
    assert abs(t5["lightweight"]["speedup_pct"] - 28.7) < 4
    assert abs(t5["heavyweight"]["speedup_pct"] - 16.7) < 3
