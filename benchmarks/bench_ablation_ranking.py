"""Ablation: the personalized-ranking decay rate (Equations 1-2)."""

from repro.experiments import ablations
from repro.experiments.common import format_table
from benchmarks.conftest import run_once


def test_ablation_ranking(benchmark, report):
    sweep = run_once(
        benchmark,
        ablations.ranking_lambda_sweep,
        lambdas=(0.0, 0.05, 0.1, 0.3, 0.7),
        users_per_class=10,
    )
    body = format_table(
        [[f"{lam:.2f}", f"{acc:.3f}"] for lam, acc in sweep.items()],
        ["decay lambda", "top-rank accuracy"],
    )
    body += (
        "\nfraction of multi-result hits where the clicked result was"
        "\nranked first at lookup time."
    )
    report("ablation_ranking", "Ablation: ranking decay sweep", body)
    assert all(0 <= v <= 1 for v in sweep.values())
