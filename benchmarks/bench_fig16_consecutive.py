"""Figure 16: 10 consecutive queries — total time and power."""

from repro.experiments import performance
from repro.experiments.common import format_table
from repro.radio.energy import timeline_by_state
from repro.sim.powertrace import render_trace


def test_fig16_consecutive(benchmark, report):
    f16 = benchmark(performance.figure16)
    ps, radio = f16["pocketsearch"], f16["radio"]
    body = format_table(
        [
            [
                "pocketsearch",
                f"{ps['total_s']:.1f} s",
                f"{ps['energy_j']:.1f} J",
                f"{ps['mean_power_w'] * 1000:.0f} mW",
            ],
            [
                radio["name"],
                f"{radio['total_s']:.1f} s",
                f"{radio['energy_j']:.1f} J",
                f"{radio['mean_power_w'] * 1000:.0f} mW",
            ],
        ],
        ["path", "total time", "energy", "mean power"],
    )
    states = timeline_by_state(radio["segments"])
    body += "\nradio timeline (state, seconds, joules):"
    for state, data in states.items():
        if data["duration_s"] > 0:
            body += (
                f"\n  {state.value:>6}: {data['duration_s']:.1f} s,"
                f" {data['energy_j']:.2f} J"
            )
    body += (
        f"\nwakeups: {radio['wakeups']} (the tail keeps the radio awake"
        "\nacross the burst)\npaper: ~4 s vs ~40 s; ~900 mW vs ~1500 mW.\n\n"
    )
    body += render_trace(
        radio["segments"],
        width=64,
        height=6,
        base_power_w=0.9,
        title="device power, 10 consecutive queries over 3G:",
    )
    report("fig16", "Figure 16: 10 consecutive queries", body)
    assert 3.0 <= ps["total_s"] <= 5.0
    assert 35.0 <= radio["total_s"] <= 50.0
    assert radio["wakeups"] == 1
