"""Figure 4: community query/result volume CDFs."""

from repro.experiments import characterization
from repro.experiments.common import format_table


def test_fig4_community_cdf(benchmark, report):
    f4 = benchmark(characterization.figure4)
    k60 = f4.pop("_k60")
    rows = [
        [
            name,
            data["events"],
            data["distinct_queries"],
            data["queries_for_60pct"],
            data["results_for_60pct"],
            f"{data['query_coverage_at_k60']:.3f}",
            f"{data['result_coverage_at_k60']:.3f}",
        ]
        for name, data in f4.items()
    ]
    body = format_table(
        rows,
        ["subset", "events", "queries", "q@60%", "r@60%", f"qcov@{k60}", f"rcov@{k60}"],
    )
    body += (
        "\npaper shape: top ~3% of queries carry 60% of volume; results need"
        "\n~2/3 as many items; nav >> non-nav concentration; featurephone >"
        "\nsmartphone concentration."
    )
    report("fig4", "Figure 4: community volume CDFs", body)
    assert f4["navigational"]["query_coverage_at_k60"] > 0.85
