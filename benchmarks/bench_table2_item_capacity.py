"""Table 2: items storable in the 25.6 GB cloudlet budget."""

from repro.experiments import scaling
from repro.experiments.common import format_table

PAPER = {
    "web_search": 270_000,
    "mobile_ads": 5_500_000,
    "yellow_business": 5_500_000,
    "web_content": 17_500,
    "mapping": 5_500_000,
}


def test_table2_item_capacity(benchmark, report):
    rows = benchmark(scaling.table2)
    body = format_table(
        [
            [name, f"{item_bytes // 1024} KB", f"{count:,}", f"{PAPER[name]:,}"]
            for name, item_bytes, count in rows
        ],
        ["cloudlet", "item size", "items (measured)", "items (paper)"],
    )
    report("table2", "Table 2: items storable in 25.6 GB", body)
    measured = {name: count for name, _, count in rows}
    for name, expected in PAPER.items():
        assert abs(measured[name] - expected) / expected < 0.05
