"""Table 1: NVM technology scaling trends."""

from repro.experiments import scaling
from repro.experiments.common import format_table


def test_table1_scaling(benchmark, report):
    rows = benchmark(scaling.table1)
    body = format_table(
        [
            [
                r["year"],
                r["technology"],
                r["tech_nm"],
                r["scaling_factor"],
                r["chip_stack"],
                r["cell_layers"],
                r["bits_per_cell"],
            ]
            for r in rows
        ],
        ["year", "technology", "tech(nm)", "scaling", "stack", "layers", "bits/cell"],
    )
    report("table1", "Table 1: technology scaling trends", body)
    assert len(rows) == 9
