"""Figure 8: DRAM and flash overhead vs covered volume."""

from repro.experiments import cachedesign
from repro.experiments.common import format_table


def test_fig8_memory_overhead(benchmark, report):
    rows = benchmark(cachedesign.figure8)
    body = format_table(
        [
            [
                f"{r['coverage']:.2f}",
                r["pairs"],
                r["unique_results"],
                f"{r['dram_bytes'] / 1024:.0f} KB",
                f"{r['flash_bytes'] / 1024:.0f} KB",
                f"{r['flash_allocated_bytes'] / 1024:.0f} KB",
            ]
            for r in rows
        ],
        ["coverage", "pairs", "results", "DRAM", "flash", "flash (allocated)"],
    )
    body += (
        "\npaper operating point: ~55% coverage at ~200 KB DRAM / ~1 MB"
        "\nflash — well under 1% of a smartphone's resources."
    )
    report("fig8", "Figure 8: cache memory overhead", body)
    op = [r for r in rows if abs(r["coverage"] - 0.55) < 0.01][0]
    assert op["dram_bytes"] < 300 * 1024
    assert op["flash_bytes"] < 2 * 1024 * 1024
