"""Table 4: PocketSearch response-time breakdown."""

from repro.experiments import performance
from repro.experiments.common import format_table

PAPER_MS = {
    "hash_table_lookup_s": 0.01,
    "fetch_search_results_s": 10.0,
    "browser_rendering_s": 361.0,
    "miscellaneous_s": 7.0,
    "total": 378.0,
}


def test_table4_breakdown(benchmark, report):
    t4 = benchmark(performance.table4)
    rows = [
        [
            part,
            f"{data['mean_s'] * 1000:.2f} ms",
            f"{data['share'] * 100:.1f}%",
            f"{PAPER_MS.get(part, 0):.2f} ms",
        ]
        for part, data in t4.items()
    ]
    body = format_table(rows, ["operation", "measured", "share", "paper"])
    report("table4", "Table 4: response-time breakdown (cache hit)", body)
    assert abs(t4["total"]["mean_s"] - 0.378) < 0.02
    assert t4["browser_rendering_s"]["share"] > 0.9
