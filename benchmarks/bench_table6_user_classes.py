"""Table 6: user classes and their population shares."""

from repro.experiments import hitrate
from repro.experiments.common import format_table


def test_table6_user_classes(benchmark, report):
    t6 = benchmark(hitrate.table6)
    rows = [
        [
            name,
            f"[{data['volume_range'][0]}, {data['volume_range'][1]})",
            f"{data['observed_share'] * 100:.1f}%",
            f"{data['target_share'] * 100:.0f}%",
        ]
        for name, data in t6.items()
    ]
    body = format_table(
        rows, ["class", "monthly volume", "share (measured)", "(paper)"]
    )
    report("table6", "Table 6: user classes", body)
    assert abs(t6["low"]["observed_share"] - 0.55) < 0.08
