"""Serial-vs-sharded replay wall-clock comparison, recorded in a manifest.

Runs the same Section 6.2 full-cache replay twice — ``workers=1`` and
``workers=N`` — over the default-calibrated log, verifies the two
results are bit-identical, and writes a run manifest containing both
wall times, the speedup, and the per-shard timing stats the replay
layer reports.

The default ``--users-per-class 50`` selects 200 users (Table 6 has four
classes), the population the acceptance criterion targets::

    PYTHONPATH=src python benchmarks/parallel_speedup_manifest.py \
        --workers 4 --out manifests/parallel_speedup.json

On an N-core machine the expected speedup approaches min(N, workers);
on fewer cores the run still proves determinism, just not speed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.common import DEFAULT_SEED, default_log
from repro.obs import trace as obs_trace
from repro.obs.manifest import ManifestRecorder
from repro.sim.replay import CacheMode, ReplayConfig, run_replay


def _shard_stats(tracer) -> list:
    """Per-shard wall times captured by the replay layer's trace events."""
    return [
        {k: r.attrs[k] for k in ("mode", "shard", "n_users", "wall_s")}
        for r in tracer.records()
        if r.name == "replay_shard"
    ]


def run(users_per_class: int, workers: int, seed: int, out: str) -> dict:
    log = default_log(seed=seed)
    modes = [CacheMode.FULL]

    recorder = ManifestRecorder(
        "parallel_replay_speedup",
        config={"users_per_class": users_per_class, "workers": workers},
        seed=seed,
    )
    with recorder:
        t0 = time.perf_counter()
        serial = run_replay(
            log,
            ReplayConfig(users_per_class=users_per_class, seed=seed),
            modes=modes,
        )[CacheMode.FULL]
        serial_s = time.perf_counter() - t0

        tracer = obs_trace.enable()
        try:
            t0 = time.perf_counter()
            parallel = run_replay(
                log,
                ReplayConfig(
                    users_per_class=users_per_class,
                    seed=seed,
                    workers=workers,
                ),
                modes=modes,
            )[CacheMode.FULL]
            parallel_s = time.perf_counter() - t0
            shards = _shard_stats(tracer)
        finally:
            obs_trace.disable()

        identical = (
            len(serial.users) == len(parallel.users)
            and all(
                a.user_id == b.user_id
                and a.metrics.count == b.metrics.count
                and a.metrics.hits == b.metrics.hits
                and a.metrics.outcomes == b.metrics.outcomes
                for a, b in zip(serial.users, parallel.users)
            )
            and serial.overall_hit_rate() == parallel.overall_hit_rate()
        )

        recorder.add_metric("n_users", len(serial.users))
        recorder.add_metric("overall_hit_rate", serial.overall_hit_rate())
        recorder.add_metric("serial_wall_s", round(serial_s, 4))
        recorder.add_metric("parallel_wall_s", round(parallel_s, 4))
        recorder.add_metric("speedup", round(serial_s / parallel_s, 4))
        recorder.add_metric("bit_identical", identical)
        recorder.add_metric("shards", shards)

    path = recorder.manifest.write(out)
    print(
        f"{len(serial.users)} users: serial {serial_s:.2f}s, "
        f"workers={workers} {parallel_s:.2f}s "
        f"(speedup {serial_s / parallel_s:.2f}x, "
        f"bit_identical={identical})"
    )
    print(f"wrote manifest to {path}")
    if not identical:
        raise SystemExit("FATAL: parallel replay diverged from serial")
    return recorder.manifest.to_dict()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users-per-class", type=int, default=50)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--out", default="manifests/parallel_speedup.json",
        help="manifest destination path",
    )
    args = parser.parse_args(argv)
    run(args.users_per_class, args.workers, args.seed, args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
