"""Figure 17: cache hit rate per user class and cache mode."""

from repro.experiments import hitrate
from repro.experiments.common import format_table
from benchmarks.conftest import run_once

PAPER = {
    "full": {"overall": 0.65, "low": 0.60, "medium": 0.70, "high": 0.75, "extreme": 0.75},
    "community": {"overall": 0.55},
    "personalization": {"overall": 0.565},
}


def test_fig17_hit_rate(benchmark, report):
    f17 = run_once(benchmark, hitrate.figure17, users_per_class=100)
    rows = []
    for mode, data in f17.items():
        rows.append(
            [mode]
            + [f"{data[k]:.3f}" for k in ("overall", "low", "medium", "high", "extreme")]
            + [f"{PAPER.get(mode, {}).get('overall', float('nan')):.3f}"]
        )
    body = format_table(
        rows,
        ["mode", "overall", "low", "medium", "high", "extreme", "paper overall"],
    )
    body += (
        "\npaper shape: ~65% overall for the full cache, rising with class"
        "\nvolume; community-only ~55%; personalization-only ~56.5%, always"
        "\n>= community-only per class."
    )
    report("fig17", "Figure 17: average cache hit rate", body)
    assert 0.60 <= f17["full"]["overall"] <= 0.78
    assert f17["community"]["overall"] < f17["full"]["overall"]
    assert f17["personalization"]["overall"] < f17["full"]["overall"]
    assert f17["full"]["extreme"] > f17["full"]["low"]
