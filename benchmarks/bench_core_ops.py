"""Microbenchmarks of the hot operations on the service path."""

import numpy as np

from repro.experiments.common import default_content
from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.database import ResultDatabase
from repro.pocketsearch.hashtable import QueryHashTable, hash64
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash


def _loaded_table():
    table = QueryHashTable()
    for entry in default_content().entries:
        table.insert(entry.query, hash64(entry.url), entry.score)
    return table


def test_hashtable_lookup_throughput(benchmark):
    table = _loaded_table()
    queries = list({e.query for e in default_content().entries})[:256]

    def lookup_all():
        for query in queries:
            table.lookup(query)

    benchmark(lookup_all)


def test_hashtable_insert_throughput(benchmark):
    content = default_content()

    def build():
        table = QueryHashTable()
        for entry in content.entries:
            table.insert(entry.query, hash64(entry.url), entry.score)
        return table

    table = benchmark(build)
    assert table.n_pairs > 0


def test_database_fetch_throughput(benchmark):
    database = ResultDatabase(FlashFilesystem(NandFlash()))
    content = default_content()
    for entry in content.entries:
        database.add_result(entry.url, entry.record_bytes)
    hashes = [hash64(e.url) for e in content.entries[:128]]

    def fetch_all():
        for h in hashes:
            database.fetch(h)

    benchmark(fetch_all)


def test_cache_lookup_throughput(benchmark):
    cache = PocketSearchCache.from_content(default_content())
    queries = list(cache.query_registry.values())[:256]

    def lookup_all():
        for query in queries:
            cache.lookup(query)

    benchmark(lookup_all)


def test_community_sampling_throughput(benchmark):
    from repro.experiments.common import default_log

    community = default_log().community
    rng = np.random.default_rng(7)
    benchmark(lambda: community.sample_pairs(10_000, rng, tilt=1.15))


def test_suggest_completion_throughput(benchmark):
    from repro.pocketsearch.suggest import SuggestIndex

    cache = PocketSearchCache.from_content(default_content())
    index = SuggestIndex(cache)
    prefixes = [q[:3] for q in list(cache.query_registry.values())[:128]]

    def complete_all():
        for prefix in prefixes:
            index.complete(prefix, k=5)

    benchmark(complete_all)


def test_hashtable_serialize_throughput(benchmark):
    table = _loaded_table()
    blob = benchmark(table.serialize)
    assert len(blob) > 0


def test_log_generation_throughput(benchmark):
    from repro.logs.generator import GeneratorConfig, generate_logs
    from repro.logs.popularity import CommunityModel
    from repro.logs.users import PopulationConfig, UserPopulation
    from repro.logs.vocabulary import Vocabulary, VocabularyConfig

    community = CommunityModel(
        Vocabulary.build(VocabularyConfig(n_nav_topics=500, n_non_nav_topics=800))
    )
    population = UserPopulation.build(PopulationConfig(n_users=200, seed=3))

    def generate():
        return generate_logs(
            community, population, GeneratorConfig(months=1, seed=4)
        )

    log = benchmark(generate)
    assert log.n_events > 0
