"""Figure 2: smartphone NVM capacity evolution."""

from repro.experiments import scaling
from repro.experiments.common import format_table


def test_fig2_nvm_evolution(benchmark, report):
    curves = benchmark(scaling.figure2)
    years = [p.year for p in next(iter(curves.values()))]
    rows = []
    for year_idx, year in enumerate(years):
        row = [year]
        for scenario in sorted(curves):
            row.append(f"{curves[scenario][year_idx].high_end_gb:.0f}")
        rows.append(row)
    body = format_table(rows, ["year"] + [f"{s} (GB)" for s in sorted(curves)])
    milestones = scaling.figure2_milestones()
    body += (
        f"\npaper milestones: high-end 2018 = {milestones['high_end_2018_gb']:.0f} GB"
        f" (paper: 1024), low-end 2018 = {milestones['low_end_2018_gb']:.0f} GB"
        f" (paper: 16), low-end final = {milestones['low_end_final_gb']:.0f} GB"
        f" (paper: 256)"
    )
    report("fig2", "Figure 2: NVM capacity evolution (high-end)", body)
    assert milestones["high_end_2018_gb"] == 1024.0
