"""Section 4.2: mobile vs desktop repeatability and concentration."""

from repro.experiments import characterization
from repro.experiments.common import format_table


def test_s42_mobile_vs_desktop(benchmark, report):
    contrast = benchmark(characterization.mobile_vs_desktop)
    body = format_table(
        [
            [
                "repeat rate",
                f"{contrast['mobile_repeat_rate']:.3f}",
                f"{contrast['desktop_repeat_rate']:.3f}",
                "0.565 / 0.40",
            ],
            [
                f"coverage at top {contrast['k60']} queries",
                f"{contrast['mobile_coverage_at_k60']:.3f}",
                f"{contrast['desktop_coverage_at_k60']:.3f}",
                "0.60 / <0.20",
            ],
        ],
        ["metric", "mobile", "desktop", "paper (mobile/desktop)"],
    )
    report("s42", "Section 4.2: mobile vs desktop", body)
    assert contrast["mobile_repeat_rate"] > contrast["desktop_repeat_rate"]
