"""Serving-layer latency/throughput sweep, recorded in a manifest.

Runs the open-loop load test over the default-calibrated log at a sweep
of offered-load multipliers on the deterministic simulated clock, and
writes one run manifest whose metrics carry, per rate: simulated
throughput, sojourn p50/p99 of admitted requests, shed rate, batching
efficiency, and the wall-clock cost of simulating it.  The manifest is
``emit_bench_json.py``-compatible, so serve latency rides the same
BENCH trajectory as the rest of the benchmarks::

    PYTHONPATH=src python benchmarks/serve_latency_manifest.py \
        --rates 1,10 --out manifests/serve_latency.json
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import DEFAULT_SEED, default_log
from repro.obs.manifest import ManifestRecorder
from repro.serve import LoadGenConfig, ServeConfig, run_loadtest


def run(
    duration_s: float,
    rates: list,
    queue_depth: int,
    max_devices: int,
    seed: int,
    out: str,
) -> dict:
    log = default_log()
    recorder = ManifestRecorder(
        "serve_latency",
        config={
            "duration_s": duration_s,
            "rates": rates,
            "queue_depth": queue_depth,
            "max_devices": max_devices,
        },
        seed=seed,
    )
    with recorder:
        sweep = {}
        for rate in rates:
            t0 = time.perf_counter()
            report, workload = run_loadtest(
                log,
                LoadGenConfig(
                    duration_s=duration_s,
                    rate_multiplier=rate,
                    seed=seed,
                    max_devices=max_devices or None,
                ),
                ServeConfig(queue_depth=queue_depth),
            )
            wall_s = time.perf_counter() - t0
            lost = report.requests - report.completed - report.shed
            if lost:
                raise SystemExit(
                    f"FATAL: rate {rate}: {lost} requests neither "
                    "completed nor shed"
                )
            point = {
                "requests": report.requests,
                "offered_rate_rps": round(workload.offered_rate, 6),
                "throughput_rps": round(report.throughput_rps, 6),
                "shed_rate": round(report.shed_rate, 6),
                "hit_rate": round(report.hit_rate, 6),
                "sojourn_p50_s": round(report.sojourn_p50_s, 6),
                "sojourn_p99_s": round(report.sojourn_p99_s, 6),
                "batch_efficiency": round(report.batch_efficiency, 6),
                "wall_s": round(wall_s, 4),
            }
            # Energy attribution: only present when responses carried
            # breakdowns (NaN fields are skipped to keep the JSON clean).
            for name in (
                "energy_j_per_query",
                "energy_j_p50",
                "energy_j_p99",
                "hit_miss_energy_ratio",
                "battery_day_fraction",
            ):
                value = getattr(report, name)
                if value == value:  # not NaN
                    point[name] = round(value, 6)
            if report.queries_per_charge is not None:
                point["queries_per_charge"] = report.queries_per_charge
            if report.energy_conserved is not None:
                point["energy_conserved"] = report.energy_conserved
                if not report.energy_conserved:
                    raise SystemExit(
                        f"FATAL: rate {rate}: energy attribution drifted "
                        f"{report.conservation_error_j:+.3e} J off the "
                        "radio timeline"
                    )
            sweep[f"x{rate:g}"] = point
            print(
                f"rate x{rate:g}: {report.requests} reqs, "
                f"throughput {report.throughput_rps:.3f}/s, "
                f"p99 {report.sojourn_p99_s:.3f}s, "
                f"shed {report.shed_rate:.1%}, "
                f"{report.energy_j_per_query:.3f} J/query "
                f"(miss/hit {report.hit_miss_energy_ratio:.1f}x) "
                f"(simulated {duration_s:.0f}s in {wall_s:.2f}s wall)"
            )
        recorder.add_metric("sweep", sweep)
        recorder.add_metric(
            "p99_s_at_max_rate", sweep[f"x{rates[-1]:g}"]["sojourn_p99_s"]
        )
        recorder.add_metric(
            "throughput_rps_at_max_rate",
            sweep[f"x{rates[-1]:g}"]["throughput_rps"],
        )
    path = recorder.manifest.write(out)
    print(f"wrote manifest to {path}")
    return recorder.manifest.to_dict()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--duration", type=float, default=600.0,
        help="simulated seconds per rate point (default 600)",
    )
    parser.add_argument(
        "--rates", default="1,10",
        help="comma-separated offered-load multipliers (default 1,10)",
    )
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument(
        "--max-devices", type=int, default=0,
        help="cap distinct devices, 0 = no cap",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--out", default="manifests/serve_latency.json",
        help="manifest destination path",
    )
    args = parser.parse_args(argv)
    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    if not rates:
        print("no rates given", file=sys.stderr)
        return 2
    run(
        args.duration, rates, args.queue_depth, args.max_devices,
        args.seed, args.out,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
