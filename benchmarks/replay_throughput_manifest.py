"""Scalar-vs-vectorized replay-core throughput, recorded in a manifest.

Builds the replay inputs once — the log, the mined cache content, and
the Table 6 user selection — then times each engine's per-user replay
loop over the same inputs, exactly the work ``run_replay`` fans out to
workers.  The vectorized engine's process-level caches are cleared
before its run, so its wall time includes the columnar batch build and
universe construction (a cold start, the honest number).

The headline metric is ``speedup_x`` = vectorized events/sec over
scalar events/sec.  At paper scale (10k-user population, ~1.5M-event
months) the run refuses to write a passing manifest below the 10x
floor the vectorized engine exists to clear::

    PYTHONPATH=src python benchmarks/replay_throughput_manifest.py \
        --scale paper --out manifests/replay_throughput.json

``--scale default`` runs the same comparison on the small default
universe (useful for smoke tests; setup costs dominate there, so no
speedup floor is applied unless ``--min-speedup`` is given).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import DEFAULT_SEED, default_log
from repro.experiments.scale import paper_scale_log
from repro.logs.schema import MONTH_SECONDS
from repro.obs.manifest import ManifestRecorder
from repro.pocketsearch.content import build_cache_content
from repro.sim.replay import (
    CacheMode,
    ReplayConfig,
    replay_one_user,
    select_replay_users,
)
from repro.sim.vectorized import clear_caches


def _timed_replay(log, content, config, selected, t_start, t_end):
    """Run every selected user through ``replay_one_user``; return
    (wall seconds, user results) for the engine named in ``config``."""
    if config.engine == "vectorized":
        clear_caches()  # cold: charge batch+universe construction to the run
    t0 = time.perf_counter()
    users = [
        replay_one_user(
            log, content, [], config, CacheMode.FULL,
            user_class, user_id, t_start, t_end,
        )
        for user_class, user_ids in selected.items()
        for user_id in user_ids
    ]
    return time.perf_counter() - t0, users


def run(
    scale: str,
    users_per_class: int,
    seed: int,
    out: str,
    min_speedup: float,
) -> dict:
    log = (
        paper_scale_log(months=2, seed=seed)
        if scale == "paper"
        else default_log(seed=seed)
    )
    base = ReplayConfig(
        users_per_class=users_per_class, seed=seed, bounded_metrics=True
    )
    content = build_cache_content(log.month(base.build_month), base.policy)
    selected = select_replay_users(
        log, base.replay_month, users_per_class, seed
    )
    t_start = base.replay_month * MONTH_SECONDS
    t_end = t_start + MONTH_SECONDS

    recorder = ManifestRecorder(
        "replay_throughput",
        config={
            "scale": scale,
            "users_per_class": users_per_class,
            "mode": CacheMode.FULL,
            "bounded_metrics": True,
        },
        seed=seed,
    )
    with recorder:
        results = {}
        walls = {}
        for engine in ("scalar", "vectorized"):
            config = ReplayConfig(
                users_per_class=users_per_class,
                seed=seed,
                bounded_metrics=True,
                engine=engine,
            )
            walls[engine], results[engine] = _timed_replay(
                log, content, config, selected, t_start, t_end
            )

        identical = all(
            a.user_id == b.user_id
            and a.user_class == b.user_class
            and a.metrics.count == b.metrics.count
            and a.metrics.hits == b.metrics.hits
            and a.metrics.hit_rate == b.metrics.hit_rate
            for a, b in zip(results["scalar"], results["vectorized"])
        )
        n_events = sum(u.metrics.count for u in results["scalar"])
        rates = {
            engine: n_events / walls[engine] for engine in walls
        }
        speedup = rates["vectorized"] / rates["scalar"]

        recorder.add_metric("n_users", len(results["scalar"]))
        recorder.add_metric("n_events", n_events)
        recorder.add_metric("scalar_wall_s", round(walls["scalar"], 4))
        recorder.add_metric("vectorized_wall_s", round(walls["vectorized"], 4))
        recorder.add_metric("scalar_events_per_s", round(rates["scalar"], 1))
        recorder.add_metric(
            "vectorized_events_per_s", round(rates["vectorized"], 1)
        )
        recorder.add_metric("speedup_x", round(speedup, 3))
        recorder.add_metric("identical", identical)

    path = recorder.manifest.write(out)
    for engine in ("scalar", "vectorized"):
        print(
            f"{engine:>10}: {len(results[engine])} users, "
            f"{n_events} events in {walls[engine]:.3f}s "
            f"= {rates[engine]:,.0f} events/s"
        )
    print(
        f"speedup {speedup:.2f}x (identical={identical}); "
        f"wrote manifest to {path}"
    )
    if not identical:
        raise SystemExit("FATAL: vectorized replay diverged from scalar")
    if speedup < min_speedup:
        raise SystemExit(
            f"FATAL: speedup {speedup:.2f}x below the "
            f"{min_speedup:.1f}x floor"
        )
    return recorder.manifest.to_dict()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=("paper", "default"), default="paper"
    )
    parser.add_argument("--users-per-class", type=int, default=100)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="fail below this speedup (default: 10 at paper scale, "
        "0 at default scale)",
    )
    parser.add_argument(
        "--out", default="manifests/replay_throughput.json",
        help="manifest destination path",
    )
    args = parser.parse_args(argv)
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 10.0 if args.scale == "paper" else 0.0
    run(args.scale, args.users_per_class, args.seed, args.out, min_speedup)
    return 0


if __name__ == "__main__":
    sys.exit(main())
