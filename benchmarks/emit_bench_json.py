"""Aggregate per-bench run manifests into one trajectory record.

Workflow::

    PYTHONPATH=src python -m pytest benchmarks -q --manifest-out benchmarks/manifests
    PYTHONPATH=src python benchmarks/emit_bench_json.py \
        --manifests benchmarks/manifests --out BENCH_$(date +%F).json

The output is a single JSON document: run-level provenance (git SHA,
date, totals) plus the individual bench manifests sorted by name, so
successive commits' files diff cleanly.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.obs.manifest import RunManifest, git_sha  # noqa: E402

DEFAULT_MANIFEST_DIR = os.path.join(os.path.dirname(__file__), "manifests")


def aggregate(manifest_dir: str) -> dict:
    """Combine every ``*.json`` manifest in ``manifest_dir``."""
    paths = sorted(glob.glob(os.path.join(manifest_dir, "*.json")))
    benches = []
    for path in paths:
        try:
            benches.append(RunManifest.read(path).to_dict())
        except (ValueError, KeyError, TypeError) as exc:
            print(f"skipping {path}: {exc}", file=sys.stderr)
    benches.sort(key=lambda b: b["name"])
    return {
        "schema_version": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": git_sha(),
        "n_benches": len(benches),
        "total_wall_time_s": sum(b.get("wall_time_s") or 0.0 for b in benches),
        "max_peak_rss_bytes": max(
            (b.get("peak_rss_bytes") or 0 for b in benches), default=0
        ),
        "benches": benches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Aggregate bench manifests into one BENCH_<date>.json."
    )
    parser.add_argument(
        "--manifests",
        default=DEFAULT_MANIFEST_DIR,
        metavar="DIR",
        help="directory of per-bench manifest JSONs (from --manifest-out)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default: BENCH_<YYYY-MM-DD>.json in the cwd)",
    )
    args = parser.parse_args(argv)
    if not os.path.isdir(args.manifests):
        print(f"no manifest directory at {args.manifests}", file=sys.stderr)
        return 2
    combined = aggregate(args.manifests)
    if combined["n_benches"] == 0:
        print(f"no manifests found under {args.manifests}", file=sys.stderr)
        return 2
    out = args.out or f"BENCH_{time.strftime('%Y-%m-%d')}.json"
    with open(out, "w") as fh:
        json.dump(combined, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"wrote {out}: {combined['n_benches']} benches, "
        f"{combined['total_wall_time_s']:.2f}s total"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
