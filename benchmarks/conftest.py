"""Benchmark harness plumbing.

Every benchmark regenerates one of the paper's tables or figures.  The
``report`` fixture prints the regenerated rows/series and also writes
them to ``benchmarks/output/<name>.txt`` so results survive pytest's
output capture.
"""

import os

import pytest

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture
def report():
    """Emit a named report: print it and persist it to output/."""

    def emit(name: str, title: str, body: str) -> None:
        text = f"\n=== {title} ===\n{body}\n"
        print(text)
        os.makedirs(OUTPUT_DIR, exist_ok=True)
        with open(os.path.join(OUTPUT_DIR, f"{name}.txt"), "w") as f:
            f.write(text)

    return emit


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an expensive experiment with a single measured round."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
