"""Benchmark harness plumbing.

Every benchmark regenerates one of the paper's tables or figures.  The
``report`` fixture prints the regenerated rows/series and also writes
them to ``benchmarks/output/<name>.txt`` so results survive pytest's
output capture.

Passing ``--manifest-out DIR`` additionally writes one run-manifest JSON
per benchmark (name, wall time, git SHA, peak RSS — see
:mod:`repro.obs.manifest`) into ``DIR``; ``benchmarks/emit_bench_json.py``
aggregates a directory of manifests into a single ``BENCH_<date>.json``
for the perf trajectory.
"""

import os
import re

import pytest

from repro.obs.manifest import ManifestRecorder

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def pytest_addoption(parser):
    parser.addoption(
        "--manifest-out",
        action="store",
        default=None,
        metavar="DIR",
        help="write one run-manifest JSON per benchmark into DIR",
    )


def _manifest_filename(nodeid: str) -> str:
    return re.sub(r"[^\w.-]+", "_", nodeid) + ".json"


@pytest.fixture(autouse=True)
def bench_manifest(request):
    """Record a per-bench manifest when --manifest-out is given."""
    out_dir = request.config.getoption("--manifest-out")
    if not out_dir:
        yield None
        return
    recorder = ManifestRecorder(
        request.node.name, config={"nodeid": request.node.nodeid}
    )
    with recorder:
        yield recorder
    recorder.manifest.write(
        os.path.join(out_dir, _manifest_filename(request.node.nodeid))
    )


@pytest.fixture
def report():
    """Emit a named report: print it and persist it to output/."""

    def emit(name: str, title: str, body: str) -> None:
        text = f"\n=== {title} ===\n{body}\n"
        print(text)
        os.makedirs(OUTPUT_DIR, exist_ok=True)
        with open(os.path.join(OUTPUT_DIR, f"{name}.txt"), "w") as f:
            f.write(text)

    return emit


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an expensive experiment with a single measured round."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
