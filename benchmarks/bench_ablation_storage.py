"""Ablation: shared result storage and hash-table entry width."""

from repro.experiments import ablations, cachedesign
from repro.experiments.common import format_table


def test_ablation_storage(benchmark, report):
    savings = benchmark(cachedesign.shared_storage_savings)
    widths = ablations.results_per_entry_hit_cost()
    body = format_table(
        [
            ["cached pairs", savings["pairs"]],
            ["unique queries", savings["unique_queries"]],
            ["unique results", savings["unique_results"]],
            ["flash, shared storage", f"{savings['shared_bytes'] / 1024:.0f} KB"],
            ["flash, per-pair copies", f"{savings['unshared_bytes'] / 1024:.0f} KB"],
            ["savings factor", f"{savings['savings_factor']:.2f}x"],
        ],
        ["metric", "value"],
    )
    body += "\nentry-width ablation (footprint vs lookup chain length):"
    for width, data in widths.items():
        body += (
            f"\n  width {width}: {data['footprint_bytes'] / 1024:.0f} KB,"
            f" {data['mean_chain_entries']:.2f} entries/lookup"
        )
    report("ablation_storage", "Ablation: storage design choices", body)
    assert savings["savings_factor"] > 1.1
