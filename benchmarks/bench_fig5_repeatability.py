"""Figure 5: per-user query repeatability within a month."""

import numpy as np

from repro.experiments import characterization
from repro.experiments.common import format_table


def test_fig5_repeatability(benchmark, report):
    f5 = benchmark(characterization.figure5)
    grid, cdf = f5["grid"], f5["cdf"]
    points = [(x, cdf[np.searchsorted(grid, x)]) for x in (0.1, 0.2, 0.3, 0.5, 0.7)]
    body = format_table(
        [[f"{x:.1f}", f"{y:.3f}"] for x, y in points],
        ["new-query prob <=", "fraction of users"],
    )
    body += (
        f"\nmedian new-query probability: {f5['median_new_probability']:.3f}"
        f"\nusers with <=30% new queries: {f5['users_at_most_30pct_new']:.3f}"
        f" (paper: ~0.50)"
        f"\nmean repeat rate: {f5['mean_repeat_rate']:.3f} (paper: 0.565)"
    )
    report("fig5", "Figure 5: new-query probability CDF", body)
    assert 0.5 <= f5["mean_repeat_rate"] <= 0.68
