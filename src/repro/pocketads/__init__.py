"""PocketAds: the mobile-advertisement pocket cloudlet.

The paper's PocketSearch prototype also caches mobile ads (Figure 1 shows
local ads in the auto-suggest box; Table 2 budgets 5 KB per ad banner),
and Section 7 uses the search/ads pair as its example of *related*
cloudlets: an ad-cache hit is worthless when the search query itself
misses, because the radio is waking up anyway — so their contents should
be selected and evicted together.

:class:`AdsCloudlet` keeps a query -> ranked ad banners index whose
content is mined from the same log-derived popularity that drives the
search cache, serves ads only on the search cache's hit path, and
exposes the grouping hooks the registry needs for coordinated eviction.
"""

from repro.pocketads.cloudlet import AdBanner, AdServeOutcome, AdsCloudlet

__all__ = ["AdBanner", "AdServeOutcome", "AdsCloudlet"]
