"""The ads cloudlet implementation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import CacheContent
from repro.pocketsearch.hashtable import hash64
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash

KB = 1024

#: Table 2's ad banner footprint.
AD_BANNER_BYTES = 5 * KB

#: Banners shown per served query (one in the Figure 1 auto-suggest box).
ADS_PER_QUERY = 1


@dataclass(frozen=True)
class AdBanner:
    """One cached advertisement."""

    ad_id: str
    advertiser: str
    banner_bytes: int = AD_BANNER_BYTES
    bid_score: float = 1.0


@dataclass(frozen=True)
class AdServeOutcome:
    """Result of asking the ads cloudlet for a query's banners."""

    query: str
    served: List[AdBanner]
    hit: bool
    latency_s: float
    energy_j: float


class AdsCloudlet:
    """Query -> ad banners cache, coupled to the search cache.

    Args:
        search_cache: the PocketSearch cache this ads cache shadows.
            Ads are only served when the query hits the search cache —
            Section 7's point that an ad hit cannot mask a search miss.
        budget_bytes: flash budget for banners.
    """

    def __init__(
        self,
        search_cache: PocketSearchCache,
        budget_bytes: int = 2 * 1024 * 1024,
        filesystem: Optional[FlashFilesystem] = None,
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        self.search_cache = search_cache
        self.budget_bytes = budget_bytes
        self.filesystem = filesystem or FlashFilesystem(NandFlash())
        self._ads_by_query: Dict[int, List[AdBanner]] = {}
        self._banner_files: Dict[str, str] = {}
        self._bytes_stored = 0
        self.served = 0
        self.suppressed = 0

    # -- content ---------------------------------------------------------------

    def load_from_content(self, content: CacheContent, ads_per_query: int = 1) -> int:
        """Mine ad mappings from the search cache content.

        Popular commercial queries attract advertisers; we attach
        ``ads_per_query`` synthetic banners to each cached query, most
        popular first, until the banner budget is exhausted.  Returns the
        number of banners stored.
        """
        if ads_per_query <= 0:
            raise ValueError("ads_per_query must be positive")
        stored = 0
        for entry in content.entries:
            qhash = hash64(entry.query)
            if qhash in self._ads_by_query:
                continue
            banners = []
            for i in range(ads_per_query):
                banner = AdBanner(
                    ad_id=f"ad:{entry.query}:{i}",
                    advertiser=f"advertiser-{(qhash + i) % 997}",
                    bid_score=max(entry.score, 0.01),
                )
                if self._bytes_stored + banner.banner_bytes > self.budget_bytes:
                    return stored
                self._store_banner(banner)
                banners.append(banner)
                stored += 1
            if banners:
                self._ads_by_query[qhash] = banners
        return stored

    def _store_banner(self, banner: AdBanner) -> None:
        file_name = f"ads:{banner.ad_id}"
        self.filesystem.create(file_name, banner.banner_bytes)
        self._banner_files[banner.ad_id] = file_name
        self._bytes_stored += banner.banner_bytes

    # -- service -----------------------------------------------------------------

    def serve(self, query: str, search_hit: bool) -> AdServeOutcome:
        """Serve banners for a query, gated on the search path.

        When the search cache missed, the radio is waking up regardless,
        so the local ad lookup is suppressed (fresh server ads arrive
        with the server results page).
        """
        if not search_hit:
            self.suppressed += 1
            return AdServeOutcome(query, [], False, 0.0, 0.0)
        banners = self._ads_by_query.get(hash64(query), [])
        banners = sorted(banners, key=lambda b: -b.bid_score)[:ADS_PER_QUERY]
        latency = 0.0
        energy = 0.0
        for banner in banners:
            cost = self.filesystem.read(self._banner_files[banner.ad_id])
            latency += cost.latency_s
            energy += cost.energy_j
        if banners:
            self.served += 1
        return AdServeOutcome(
            query=query,
            served=banners,
            hit=bool(banners),
            latency_s=latency,
            energy_j=energy,
        )

    # -- coordinated eviction hooks ------------------------------------------------

    def evict_query(self, query: str) -> int:
        """Drop a query's banners; returns bytes freed.

        Called by the registry when the related search entry is evicted
        (Section 7's coordinated eviction).
        """
        banners = self._ads_by_query.pop(hash64(query), None)
        if not banners:
            return 0
        freed = 0
        for banner in banners:
            file_name = self._banner_files.pop(banner.ad_id)
            self.filesystem.delete(file_name)
            freed += banner.banner_bytes
        self._bytes_stored -= freed
        return freed

    def group_members(self, query: str):
        """(cloudlet item key, bytes) for registry group linking."""
        banners = self._ads_by_query.get(hash64(query), [])
        return [(banner.ad_id, banner.banner_bytes) for banner in banners]

    # -- stats -----------------------------------------------------------------------

    @property
    def bytes_stored(self) -> int:
        return self._bytes_stored

    @property
    def n_queries_with_ads(self) -> int:
        return len(self._ads_by_query)
