"""Technology scaling trend data (Table 1 of the paper).

The paper projects NVM scaling over 2010-2026 in two-year steps.  Flash
dominates until the 2016/2018 time frame, after which a resistive or
magneto-resistive technology takes over.  Four levers drive per-package
capacity:

* ``scaling_factor`` — areal density relative to the 2010 32nm baseline;
* ``chip_stack`` — number of independently fabricated dies per package;
* ``cell_layers`` — monolithic cell-stacking layers per die;
* ``bits_per_cell`` — logic levels per cell (MLC/TLC, shrinking again as
  feature sizes drop and electron counts fall).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class TrendPoint:
    """One column of Table 1: the state of NVM technology in a given year."""

    year: int
    technology: str  # "flash" or "other-nvm"
    feature_nm: int
    scaling_factor: int
    chip_stack: int
    cell_layers: int
    bits_per_cell: int

    @property
    def capacity_multiplier(self) -> float:
        """Total capacity multiplier vs. the 2010 single-die baseline.

        The multiplier composes all four levers.  ``bits_per_cell`` is
        normalized against the 2010 value of 2 bits/cell so the 2010
        multiplier is exactly ``1.0`` for a single die and stack of 4.
        """
        return (
            self.scaling_factor
            * self.cell_layers
            * (self.bits_per_cell / _BASELINE_BITS_PER_CELL)
        )

    @property
    def package_multiplier(self) -> float:
        """Capacity multiplier including chip stacking, vs. 2010 package."""
        return self.capacity_multiplier * (self.chip_stack / _BASELINE_CHIP_STACK)


_BASELINE_BITS_PER_CELL = 2
_BASELINE_CHIP_STACK = 4

#: Table 1 of the paper, verbatim.
TECHNOLOGY_ROADMAP: List[TrendPoint] = [
    TrendPoint(2010, "flash", 32, 1, 4, 1, 2),
    TrendPoint(2012, "flash", 22, 2, 4, 1, 3),
    TrendPoint(2014, "flash", 16, 4, 6, 1, 2),
    TrendPoint(2016, "flash", 11, 8, 6, 2, 2),
    TrendPoint(2018, "other-nvm", 11, 8, 8, 2, 2),
    TrendPoint(2020, "other-nvm", 8, 16, 8, 4, 1),
    TrendPoint(2022, "other-nvm", 5, 32, 12, 4, 1),
    TrendPoint(2024, "other-nvm", 5, 32, 12, 8, 1),
    TrendPoint(2026, "other-nvm", 5, 32, 16, 8, 1),
]

_BY_YEAR: Dict[int, TrendPoint] = {p.year: p for p in TECHNOLOGY_ROADMAP}


def roadmap_years() -> List[int]:
    """Return the projection years of Table 1, ascending."""
    return [p.year for p in TECHNOLOGY_ROADMAP]


def trend_for_year(year: int) -> TrendPoint:
    """Return the roadmap point in force for ``year``.

    Years between roadmap columns resolve to the most recent column at or
    before ``year`` (technology transitions take effect on roadmap years).

    Raises:
        ValueError: if ``year`` precedes the first roadmap year (2010).
    """
    if year < TECHNOLOGY_ROADMAP[0].year:
        raise ValueError(
            f"no roadmap data before {TECHNOLOGY_ROADMAP[0].year}; got {year}"
        )
    if year in _BY_YEAR:
        return _BY_YEAR[year]
    candidates = [p for p in TECHNOLOGY_ROADMAP if p.year <= year]
    return candidates[-1]
