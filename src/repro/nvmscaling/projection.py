"""Smartphone NVM capacity projections (Figure 2 of the paper).

Figure 2 starts from the NVM found in a 2010 high-end smartphone and applies
different combinations of the Table 1 levers to project total NVM capacity
in future devices.  The paper's takeaways, which these projections
reproduce:

* high-end phones may reach ~1 TB of NVM as early as 2018 (all levers);
* low-end phones trail high-end by a fixed 64:1 ratio (512 MB vs 32 GB in
  2010), reaching ~16 GB in 2018 and ~256 GB eventually.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from repro.nvmscaling.trends import TECHNOLOGY_ROADMAP, TrendPoint, trend_for_year

GB = 1024**3
TB = 1024**4

#: NVM storage of a 2010 high-end smartphone (the paper's starting point).
HIGH_END_2010_BYTES = 32 * GB
#: Low-end smartphones in 2010 shipped 512 MB — a 64:1 ratio to high end.
LOW_END_RATIO = 64


class ScalingScenario(Enum):
    """Which capacity levers a projection scenario applies.

    Figure 2 plots several evolution curves, from conservative (process
    scaling only) to aggressive (scaling + chip stacking + cell layering +
    bits per cell).
    """

    SCALING_ONLY = "scaling"
    SCALING_STACKING = "scaling+stacking"
    SCALING_STACKING_LAYERS = "scaling+stacking+layers"
    ALL_TECHNIQUES = "all"

    def multiplier(self, point: TrendPoint, baseline: TrendPoint) -> float:
        """Capacity multiplier of ``point`` vs ``baseline`` under this scenario."""
        m = point.scaling_factor / baseline.scaling_factor
        if self in (
            ScalingScenario.SCALING_STACKING,
            ScalingScenario.SCALING_STACKING_LAYERS,
            ScalingScenario.ALL_TECHNIQUES,
        ):
            m *= point.chip_stack / baseline.chip_stack
        if self in (
            ScalingScenario.SCALING_STACKING_LAYERS,
            ScalingScenario.ALL_TECHNIQUES,
        ):
            m *= point.cell_layers / baseline.cell_layers
        if self is ScalingScenario.ALL_TECHNIQUES:
            m *= point.bits_per_cell / baseline.bits_per_cell
        return m


@dataclass(frozen=True)
class CapacityProjection:
    """Projected NVM capacity of a device class in a given year."""

    year: int
    scenario: ScalingScenario
    high_end_bytes: float

    @property
    def low_end_bytes(self) -> float:
        """Low-end capacity under the fixed 64:1 high/low ratio."""
        return self.high_end_bytes / LOW_END_RATIO

    @property
    def high_end_gb(self) -> float:
        return self.high_end_bytes / GB

    @property
    def low_end_gb(self) -> float:
        return self.low_end_bytes / GB


def project_capacity(
    year: int, scenario: ScalingScenario = ScalingScenario.ALL_TECHNIQUES
) -> CapacityProjection:
    """Project high-end smartphone NVM capacity for ``year``.

    Args:
        year: target year, >= 2010.
        scenario: which combination of capacity levers to apply.

    Returns:
        A :class:`CapacityProjection` anchored at 32 GB in 2010.
    """
    baseline = TECHNOLOGY_ROADMAP[0]
    point = trend_for_year(year)
    multiplier = scenario.multiplier(point, baseline)
    return CapacityProjection(
        year=year,
        scenario=scenario,
        high_end_bytes=HIGH_END_2010_BYTES * multiplier,
    )


def project_capacity_series(
    scenario: ScalingScenario = ScalingScenario.ALL_TECHNIQUES,
) -> List[CapacityProjection]:
    """Project capacity for every roadmap year (one Figure 2 curve)."""
    return [project_capacity(p.year, scenario) for p in TECHNOLOGY_ROADMAP]


def figure2_series() -> Dict[str, List[CapacityProjection]]:
    """All Figure 2 curves, keyed by scenario value."""
    return {
        scenario.value: project_capacity_series(scenario)
        for scenario in ScalingScenario
    }
