"""NVM technology scaling model (Section 2 of the paper).

This subpackage encodes the paper's Table 1 scaling-trend projections,
computes the smartphone NVM capacity evolution scenarios of Figure 2, and
derives the per-cloudlet item-capacity numbers of Table 2.
"""

from repro.nvmscaling.trends import (
    TECHNOLOGY_ROADMAP,
    TrendPoint,
    roadmap_years,
    trend_for_year,
)
from repro.nvmscaling.projection import (
    CapacityProjection,
    ScalingScenario,
    project_capacity,
    project_capacity_series,
)
from repro.nvmscaling.capacity import (
    CLOUDLET_ITEM_SIZES,
    CloudletItemSpec,
    items_storable,
    table2_rows,
)

__all__ = [
    "TECHNOLOGY_ROADMAP",
    "TrendPoint",
    "roadmap_years",
    "trend_for_year",
    "CapacityProjection",
    "ScalingScenario",
    "project_capacity",
    "project_capacity_series",
    "CLOUDLET_ITEM_SIZES",
    "CloudletItemSpec",
    "items_storable",
    "table2_rows",
]
