"""Per-cloudlet item-capacity arithmetic (Table 2 of the paper).

Table 2 asks: if a low-end smartphone dedicates 10% of its projected 256 GB
NVM (25.6 GB) to caching services, how many items can each pocket cloudlet
hold?  The answer depends only on the single-item footprint of the service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

KB = 1024
MB = 1024**2
GB = 1024**3

#: Fraction of device NVM the paper dedicates to pocket cloudlets.
CACHE_FRACTION = 0.10
#: Low-end device NVM the paper assumes for Table 2 (256 GB).
LOW_END_EVENTUAL_BYTES = 256 * GB
#: The resulting cloudlet budget: 25.6 GB.
TABLE2_BUDGET_BYTES = int(LOW_END_EVENTUAL_BYTES * CACHE_FRACTION)


@dataclass(frozen=True)
class CloudletItemSpec:
    """A cloudlet service and the footprint of one cached item."""

    name: str
    item_bytes: int
    item_description: str


#: Table 2's rows: single-item sizes per cloudlet type.
CLOUDLET_ITEM_SIZES: Dict[str, CloudletItemSpec] = {
    "web_search": CloudletItemSpec("web_search", 100 * KB, "search result page"),
    "mobile_ads": CloudletItemSpec("mobile_ads", 5 * KB, "ad banner"),
    "yellow_business": CloudletItemSpec(
        "yellow_business", 5 * KB, "map tile with business info"
    ),
    "web_content": CloudletItemSpec(
        "web_content", int(1.5 * MB), "full web page (www.cnn.com)"
    ),
    "mapping": CloudletItemSpec("mapping", 5 * KB, "128x128 pixels map tile"),
}


def items_storable(item_bytes: int, budget_bytes: int = TABLE2_BUDGET_BYTES) -> int:
    """How many fixed-size items fit in a storage budget.

    Args:
        item_bytes: footprint of one item; must be positive.
        budget_bytes: available storage (defaults to Table 2's 25.6 GB).

    Raises:
        ValueError: if ``item_bytes`` is not positive.
    """
    if item_bytes <= 0:
        raise ValueError(f"item_bytes must be positive, got {item_bytes}")
    if budget_bytes < 0:
        raise ValueError(f"budget_bytes must be non-negative, got {budget_bytes}")
    return budget_bytes // item_bytes


def table2_rows(
    budget_bytes: int = TABLE2_BUDGET_BYTES,
) -> List[Tuple[str, int, int]]:
    """Regenerate Table 2: (cloudlet, single-item bytes, number of items)."""
    return [
        (spec.name, spec.item_bytes, items_storable(spec.item_bytes, budget_bytes))
        for spec in CLOUDLET_ITEM_SIZES.values()
    ]
