"""PocketDevice: a whole phone's worth of pocket cloudlets.

The paper's end vision (Sections 3 and 7) is not one cache but a device
hosting *many* cloudlets — search, ads, web content, maps, yellow pages —
sharing a storage partition under OS arbitration.  :class:`PocketDevice`
assembles that device:

* sizes the NVM from the Section 2 projection for a given year and tier;
* dedicates 10% of it to the cloudlet partition;
* splits the partition across the five services (defaults follow the
  relative appetites Table 2 implies);
* instantiates every cloudlet and registers it with the
  :class:`~repro.core.registry.CloudletRegistry` for budget enforcement
  and isolation.

This is the highest-level public API::

    from repro.device import PocketDevice

    device = PocketDevice.build(year=2018, tier="low")
    device.search.serve_query("site0", "www.site0.com")
    device.web.browse("www.site0.com", t_seconds=120.0)
    device.maps.serve_viewport(Region.viewport(1000, 1000))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.registry import CloudletRegistry
from repro.logs.generator import SearchLog
from repro.nvmscaling.projection import ScalingScenario, project_capacity
from repro.pocketads import AdsCloudlet
from repro.pocketmaps.cloudlet import MapCloudlet
from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import (
    CacheContent,
    PAPER_OPERATING_POINT,
    build_cache_content,
)
from repro.pocketsearch.database import ResultDatabase
from repro.pocketsearch.engine import PocketSearchEngine
from repro.pocketweb import PocketWebCloudlet
from repro.pocketyellow.cloudlet import YellowPagesCloudlet
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import FlashGeometry, NandFlash

MB = 1024**2
GB = 1024**3

#: Fraction of device NVM dedicated to the cloudlet partition (Section 2).
CLOUDLET_PARTITION_FRACTION = 0.10

#: Default budget split across the five services.  Web content and maps
#: dominate (their items are 60-300x larger than search results and
#: banners), mirroring the appetites of Table 2.
DEFAULT_BUDGET_SHARES: Dict[str, float] = {
    "search": 0.02,
    "ads": 0.01,
    "web": 0.42,
    "maps": 0.40,
    "yellow": 0.15,
}


@dataclass(frozen=True)
class DeviceSpec:
    """The resolved storage plan of a built device."""

    year: int
    tier: str
    nvm_bytes: int
    partition_bytes: int
    budgets: Dict[str, int]


class PocketDevice:
    """A simulated phone hosting all five pocket cloudlets."""

    def __init__(
        self,
        spec: DeviceSpec,
        registry: CloudletRegistry,
        search: PocketSearchEngine,
        ads: AdsCloudlet,
        web: PocketWebCloudlet,
        maps: MapCloudlet,
        yellow: YellowPagesCloudlet,
    ) -> None:
        self.spec = spec
        self.registry = registry
        self.search = search
        self.ads = ads
        self.web = web
        self.maps = maps
        self.yellow = yellow

    # -- construction ---------------------------------------------------------

    @classmethod
    def plan(
        cls,
        year: int = 2018,
        tier: str = "low",
        budget_shares: Optional[Dict[str, float]] = None,
    ) -> DeviceSpec:
        """Size the device and partition budgets without building it.

        Args:
            year: device generation, >= 2010 (drives the NVM projection).
            tier: "low" or "high" end.
            budget_shares: per-service fractions of the cloudlet
                partition; must sum to <= 1.

        Raises:
            ValueError: on an unknown tier or bad shares.
        """
        if tier not in ("low", "high"):
            raise ValueError(f"tier must be 'low' or 'high', got {tier!r}")
        shares = dict(budget_shares or DEFAULT_BUDGET_SHARES)
        missing = set(DEFAULT_BUDGET_SHARES) - set(shares)
        if missing:
            raise ValueError(f"budget_shares missing services: {sorted(missing)}")
        if any(v < 0 for v in shares.values()) or sum(shares.values()) > 1.000001:
            raise ValueError("budget shares must be non-negative and sum to <= 1")
        projection = project_capacity(year, ScalingScenario.ALL_TECHNIQUES)
        nvm = int(
            projection.low_end_bytes if tier == "low" else projection.high_end_bytes
        )
        partition = int(nvm * CLOUDLET_PARTITION_FRACTION)
        budgets = {
            name: max(int(partition * share), 1 * MB)
            for name, share in shares.items()
        }
        return DeviceSpec(
            year=year,
            tier=tier,
            nvm_bytes=nvm,
            partition_bytes=partition,
            budgets=budgets,
        )

    @classmethod
    def build(
        cls,
        year: int = 2018,
        tier: str = "low",
        search_content: Optional[CacheContent] = None,
        log: Optional[SearchLog] = None,
        budget_shares: Optional[Dict[str, float]] = None,
    ) -> "PocketDevice":
        """Assemble the device.

        Args:
            year, tier, budget_shares: see :meth:`plan`.
            search_content: pre-mined community content for PocketSearch
                (and the ads index).  When omitted and ``log`` is given,
                content is mined from the log's month 0; otherwise the
                search cache starts personalization-only.
            log: optional search log to mine content from.
        """
        spec = cls.plan(year=year, tier=tier, budget_shares=budget_shares)
        if search_content is None and log is not None:
            search_content = build_cache_content(log.month(0), PAPER_OPERATING_POINT)

        # One physical flash part backs every cloudlet; each gets its own
        # filesystem namespace slice via distinct file-name prefixes, and
        # the registry enforces the byte budgets.
        flash = NandFlash(FlashGeometry(total_blocks=16_384))
        search_cache = PocketSearchCache(
            database=ResultDatabase(FlashFilesystem(flash), name_prefix="ps")
        )
        if search_content is not None:
            search_cache.load_community(search_content)
        search = PocketSearchEngine(search_cache)

        ads = AdsCloudlet(search_cache, budget_bytes=spec.budgets["ads"])
        if search_content is not None:
            ads.load_from_content(search_content)
        web = PocketWebCloudlet(budget_bytes=spec.budgets["web"])
        maps = MapCloudlet(budget_bytes=spec.budgets["maps"])
        yellow = YellowPagesCloudlet(budget_bytes=spec.budgets["yellow"])

        registry = CloudletRegistry(
            total_budget_bytes=spec.partition_bytes,
            index_budget_bytes=256 * MB,
        )
        from repro.core.cloudlet import Cloudlet

        class _Slot(Cloudlet):
            """Registry-facing budget slot for a concrete cloudlet."""

            def __init__(self, name, budget, bytes_stored_fn):
                super().__init__(name, budget)
                self._bytes_stored_fn = bytes_stored_fn

            def lookup_local(self, key):
                return None

            def store_local(self, key, value, nbytes):
                pass

            def evict(self, nbytes):
                return 0

            def local_cost(self, key):
                return (0.0, 0.0)

            def remote_cost(self, key):
                return (0.0, 0.0)

            @property
            def bytes_in_use(self):
                return self._bytes_stored_fn()

        registry.register(
            _Slot("search", spec.budgets["search"], lambda: search_cache.flash_bytes),
            index_bytes=search_cache.dram_bytes or 1,
        )
        registry.register(
            _Slot("ads", spec.budgets["ads"], lambda: ads.bytes_stored), index_bytes=1
        )
        registry.register(
            _Slot("web", spec.budgets["web"], lambda: web.store.bytes_stored),
            index_bytes=1,
        )
        registry.register(
            _Slot("maps", spec.budgets["maps"], lambda: maps.bytes_stored),
            index_bytes=1,
        )
        registry.register(
            _Slot("yellow", spec.budgets["yellow"], lambda: yellow.bytes_stored),
            index_bytes=1,
        )
        return cls(spec, registry, search, ads, web, maps, yellow)

    # -- reporting ---------------------------------------------------------------

    def storage_report(self) -> Dict[str, dict]:
        """Per-service budget and usage snapshot."""
        usage = {
            "search": self.search.cache.flash_bytes,
            "ads": self.ads.bytes_stored,
            "web": self.web.store.bytes_stored,
            "maps": self.maps.bytes_stored,
            "yellow": self.yellow.bytes_stored,
        }
        return {
            name: {
                "budget_bytes": self.spec.budgets[name],
                "used_bytes": used,
                "used_frac": used / self.spec.budgets[name],
            }
            for name, used in usage.items()
        }
