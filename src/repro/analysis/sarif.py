"""SARIF 2.1.0 export for ``repro lint --format sarif``.

Emits one run with the full rule registry as ``tool.driver.rules`` and
one result per finding.  Grandfathered (baselined) findings are
included with a ``suppressions`` entry of kind ``external`` so GitHub
code scanning shows them as suppressed rather than resurfacing them;
new findings carry no suppressions and gate the upload.

``partialFingerprints`` reuses the baseline fingerprint (rule + path +
line *text*), so alert identity on the code-scanning side survives
pure line renumbering exactly like the committed baseline does.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Type

from repro.analysis.engine import Rule
from repro.analysis.findings import Finding, Severity

__all__ = ["SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/pocket-cloudlets/repro"


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _rule_descriptor(rule: Type[Rule]) -> Dict[str, Any]:
    doc = (rule.__doc__ or "").strip().splitlines()
    short = doc[0].strip() if doc else rule.name
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": short},
        "defaultConfiguration": {
            "level": _level(rule.severity),
        },
    }


def _result(finding: Finding, rule_index: Dict[str, int],
            suppressed: bool) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                },
            }
        ],
        "partialFingerprints": {
            "reproLintFingerprint/v1": finding.fingerprint(),
        },
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if suppressed:
        result["suppressions"] = [
            {
                "kind": "external",
                "justification": "grandfathered in LINT_baseline.json",
            }
        ]
    return result


def to_sarif(
    findings: Sequence[Finding],
    baselined: Sequence[Finding] = (),
    rules: Optional[Sequence[Type[Rule]]] = None,
    tool_version: str = "0",
) -> Dict[str, Any]:
    """Build the SARIF 2.1.0 document as a plain dict."""
    if rules is None:
        from repro.analysis.flow.rules import FLOW_RULES
        from repro.analysis.rules import ALL_RULES

        rules = list(ALL_RULES) + list(FLOW_RULES)
    descriptors = [_rule_descriptor(rule) for rule in rules]
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        results.append(_result(finding, rule_index, suppressed=False))
    for finding in baselined:
        results.append(_result(finding, rule_index, suppressed=True))
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "version": tool_version,
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
