"""Committed-baseline support: grandfather old findings, block new ones.

The baseline file (``LINT_baseline.json`` at the repo root) lists
findings that existed when a rule was introduced and were judged
*deliberate* — each entry carries a human-written ``reason``.  Findings
matching a baseline entry are reported as "baselined" and do not fail
the run; anything new does.

Matching is by :meth:`~repro.analysis.findings.Finding.fingerprint`
(rule + path + offending line *text*, not line number) with occurrence
counting: a baseline entry with ``count: 2`` tolerates two identical
violations in that file, and the third fails.  Stale entries (fixed
code whose baseline line remains) are surfaced so the file shrinks
monotonically instead of rotting.
"""

from __future__ import annotations

import collections
import json
import os
from typing import Any, Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding

__all__ = [
    "DEFAULT_BASELINE",
    "Baseline",
    "partition",
]

#: Conventional location, relative to the repo root.
DEFAULT_BASELINE = "LINT_baseline.json"

SCHEMA_VERSION = 1


class Baseline:
    """In-memory view of the committed baseline file."""

    def __init__(self, entries: Sequence[Dict[str, Any]] = ()) -> None:
        #: fingerprint -> allowed occurrence count
        self.counts: Dict[str, int] = collections.Counter()
        #: fingerprint -> the raw entry (for stale reporting)
        self.entries: Dict[str, Dict[str, Any]] = {}
        for entry in entries:
            fp = entry["fingerprint"]
            self.counts[fp] += int(entry.get("count", 1))
            self.entries.setdefault(fp, dict(entry))

    def __len__(self) -> int:
        return sum(self.counts.values())

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls()
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        if not isinstance(doc, dict) or "entries" not in doc:
            raise ValueError(
                f"{path}: not a lint baseline (expected an object with "
                "'entries')"
            )
        return cls(doc["entries"])

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], reason: str = "baselined at introduction"
    ) -> "Baseline":
        grouped: Dict[Tuple[str, str, str, str], int] = collections.Counter()
        for f in findings:
            grouped[(f.fingerprint(), f.rule, f.path, f.snippet)] += 1
        entries = [
            {
                "fingerprint": fp,
                "rule": rule,
                "path": path,
                "snippet": snippet,
                "count": count,
                "reason": reason,
            }
            for (fp, rule, path, snippet), count in sorted(grouped.items())
        ]
        return cls(entries)

    def write(self, path: str) -> str:
        doc = {
            "schema_version": SCHEMA_VERSION,
            "entries": sorted(
                self.to_entries(), key=lambda e: (e["path"], e["rule"], e["fingerprint"])
            ),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def to_entries(self) -> List[Dict[str, Any]]:
        out = []
        for fp, count in self.counts.items():
            entry = dict(self.entries.get(fp, {"fingerprint": fp}))
            entry["count"] = count
            out.append(entry)
        return out


def partition(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding], List[Dict[str, Any]]]:
    """Split findings into ``(new, baselined)`` plus stale entries.

    Occurrence counting consumes baseline budget per fingerprint; stale
    entries are baseline lines whose budget was never (fully) used —
    the violation has been fixed and the entry should be deleted.
    """
    budget = dict(baseline.counts)
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        fp = finding.fingerprint()
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = [
        {**baseline.entries.get(fp, {"fingerprint": fp}), "unused": left}
        for fp, left in sorted(budget.items())
        if left > 0
    ]
    return new, grandfathered, stale
