"""REP002: randomness must flow from explicit seeds, never global streams.

PR 2's bit-identical sharded replay works because every random draw
derives from ``np.random.SeedSequence(seed, spawn_key=...)`` or an
explicitly seeded ``Generator``/``Random`` that is *passed in*.  One
call into the module-level ``random`` or legacy ``numpy.random.*``
stream couples unrelated components through hidden global state: the
draw order then depends on scheduling, and serial vs parallel replay
silently diverge.

Flagged:

* any module-level :mod:`random` function (``random.random()``,
  ``random.randint()``, ``random.seed()``, ...);
* ``random.Random()`` / ``random.SystemRandom()`` without a seed;
* legacy ``numpy.random`` module functions (``np.random.rand``,
  ``np.random.seed``, ``np.random.choice``, ...);
* ``np.random.default_rng()`` / ``np.random.RandomState()`` with *no*
  seed argument.

Allowed: ``default_rng(seed)``, ``SeedSequence``, ``Generator`` /
``Random(seed)`` instances passed as parameters.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Rule
from repro.analysis.findings import Severity

__all__ = ["UnseededRngRule"]

#: Module-level functions of stdlib ``random`` that draw from (or mutate)
#: the hidden global Mersenne Twister.
STDLIB_GLOBAL_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
}

#: Legacy ``numpy.random`` module-level API (the pre-Generator global
#: RandomState).  ``default_rng``/``RandomState`` are handled separately
#: (they are fine *with* a seed).
NUMPY_LEGACY_FNS = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto",
    "permutation", "poisson", "power", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "set_state", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald",
    "weibull", "zipf",
}

#: Constructors that are fine seeded, flagged unseeded.
SEEDABLE_CTORS = {
    "random.Random",
    "random.SystemRandom",  # never deterministic, seed or not
    "numpy.random.default_rng",
    "numpy.random.RandomState",
}


def _is_none_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _has_seed_argument(node: ast.Call) -> bool:
    """True iff the call passes a *real* seed.

    ``default_rng()`` is unseeded, but so are ``default_rng(None)`` and
    ``RandomState(seed=None)`` — numpy documents ``None`` as "pull
    fresh OS entropy", which is exactly the nondeterminism this rule
    exists to block, so an explicit ``None`` must not count as seeded.
    """
    for arg in node.args:
        if not _is_none_constant(arg):
            return True
    for kw in node.keywords:
        if not _is_none_constant(kw.value):
            return True
    return False


class UnseededRngRule(Rule):
    id = "REP002"
    name = "seeded-rng-only"
    severity = Severity.ERROR

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        if resolved is None:
            return
        parts = resolved.split(".")
        if (
            len(parts) == 2
            and parts[0] == "random"
            and parts[1] in STDLIB_GLOBAL_FNS
        ):
            self.report(
                node,
                f"`{resolved}()` draws from the hidden global stream — "
                "accept an explicitly seeded `random.Random(seed)` / "
                "numpy `Generator` parameter instead",
            )
            return
        if (
            len(parts) == 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] in NUMPY_LEGACY_FNS
        ):
            self.report(
                node,
                f"legacy `{resolved}()` uses numpy's global RandomState — "
                "derive a `Generator` from `SeedSequence(seed, ...)` and "
                "pass it down",
            )
            return
        if resolved in SEEDABLE_CTORS:
            if resolved == "random.SystemRandom":
                self.report(
                    node,
                    "`random.SystemRandom` is OS-entropy backed and can "
                    "never replay deterministically",
                )
            elif not _has_seed_argument(node):
                self.report(
                    node,
                    f"unseeded `{resolved}()` — thread the run seed in "
                    "(e.g. `default_rng(seed)`), otherwise replays are "
                    "unreproducible",
                )
