"""Rule registry for ``repro lint``.

Import order fixes report order for equal source positions; ids are
stable and never reused.  Adding a rule: subclass
:class:`repro.analysis.engine.Rule` in a sibling module, append it
here, document it in the README rule table, and give it positive +
negative fixtures under ``tests/analysis/fixtures/``.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analysis.engine import Rule
from repro.analysis.rules.asyncsafety import AsyncSafetyRule
from repro.analysis.rules.buffers import BufferBoundRule
from repro.analysis.rules.defaults import MutableDefaultRule
from repro.analysis.rules.excepts import ExceptionSwallowRule
from repro.analysis.rules.layering import LayeringRule
from repro.analysis.rules.rng import UnseededRngRule
from repro.analysis.rules.setorder import SetOrderRule
from repro.analysis.rules.tasks import OrphanTaskRule
from repro.analysis.rules.wallclock import WallClockRule

__all__ = ["ALL_RULES", "RULES_BY_ID", "AsyncSafetyRule", "BufferBoundRule",
           "ExceptionSwallowRule", "LayeringRule", "MutableDefaultRule",
           "OrphanTaskRule", "SetOrderRule", "UnseededRngRule",
           "WallClockRule"]

ALL_RULES: List[Type[Rule]] = [
    WallClockRule,        # REP001
    UnseededRngRule,      # REP002
    SetOrderRule,         # REP003
    AsyncSafetyRule,      # REP004
    OrphanTaskRule,       # REP005
    MutableDefaultRule,   # REP006
    ExceptionSwallowRule, # REP007
    LayeringRule,         # REP008
    BufferBoundRule,      # REP009
]

RULES_BY_ID: Dict[str, Type[Rule]] = {rule.id: rule for rule in ALL_RULES}


# REP010-REP012 (the whole-program flow rules) register themselves
# into RULES_BY_ID when repro.analysis.flow.rules is imported — they
# cannot be imported from here because flow's summaries reuse this
# package's source tables (rng, wallclock), which would cycle.
