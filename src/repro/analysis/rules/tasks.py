"""REP005: ``asyncio.create_task`` results must be retained.

CPython keeps only a *weak* reference to tasks: a fire-and-forget
``asyncio.create_task(...)`` expression can be garbage-collected
mid-flight, silently killing the coroutine — and any exception it
raises is never observed.  The serve layer's convention is to hold
tasks on the owning object (``session.worker``, ``self._refresh_task``)
so close/drain can cancel and await them.

Flagged: an expression *statement* whose value is ``create_task`` /
``ensure_future`` (on ``asyncio`` or any loop/taskgroup object) — i.e.
the returned task is neither assigned, stored, awaited, nor passed on.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Rule
from repro.analysis.findings import Severity

__all__ = ["OrphanTaskRule"]

SPAWNERS = {"create_task", "ensure_future"}


class OrphanTaskRule(Rule):
    id = "REP005"
    name = "retain-created-tasks"
    severity = Severity.ERROR

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        func = call.func
        name = None
        if isinstance(func, ast.Attribute) and func.attr in SPAWNERS:
            name = func.attr
        elif isinstance(func, ast.Name) and func.id in SPAWNERS:
            name = func.id
        if name is not None:
            self.report(
                node,
                f"`{name}(...)` result discarded — asyncio holds only a "
                "weak ref, so the task can be garbage-collected mid-flight "
                "and its exceptions are lost; assign it (e.g. "
                "`self._task = ...`) and cancel/await it on close",
            )
