"""REP008: enforce the package layering DAG.

The repo's architecture flows strictly upward — substrate models at
the bottom, orchestration at the top:

===== =========================================================
level packages
===== =========================================================
0     ``obs`` (observability: imports nothing else in ``repro``)
1     ``logs``, ``storage``, ``radio``, ``nvmscaling``
2     ``core``, ``sim``, ``baselines``, ``device``,
      ``pocketsearch``/``pocketads``/``pocketmaps``/``pocketweb``/
      ``pocketyellow``
3     ``analysis``
4     ``serve``, ``edge``, ``experiments``
5     ``cli``, ``__init__``, ``__main__``
===== =========================================================

A module may import its own level or below; importing *upward* (the
canonical accident: ``sim/`` reaching into ``serve/``) inverts the
dependency direction, creates import cycles, and drags asyncio into
the pure model layer that the multiprocessing shard workers pickle.
Within-level imports are allowed (``sim`` and ``pocketsearch`` are
mutually recursive by design: the replay harness drives cloudlet
engines, engines read the sim clock).

Unknown subpackages are *flagged* — a new package must be added to the
table here (with a conscious level choice), not silently exempted.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.context import FileContext
from repro.analysis.engine import Rule
from repro.analysis.findings import Severity

__all__ = ["LAYERS", "LayeringRule"]

LAYERS = {
    "obs": 0,
    "logs": 1,
    "storage": 1,
    "radio": 1,
    "nvmscaling": 1,
    "core": 2,
    "sim": 2,
    "baselines": 2,
    "device": 2,
    "pocketsearch": 2,
    "pocketads": 2,
    "pocketmaps": 2,
    "pocketweb": 2,
    "pocketyellow": 2,
    "analysis": 3,
    # serve, edge, and experiments are one level by design: the edge
    # tier plugs into the server's miss path (and borrows its batcher),
    # while experiments drive serve_replay/loadtest sweeps.
    "experiments": 4,
    "serve": 4,
    "edge": 4,
    "cli": 5,
    "__init__": 5,
    "__main__": 5,
}


class LayeringRule(Rule):
    id = "REP008"
    name = "import-layering"
    severity = Severity.ERROR

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return ctx.subpackage is not None

    def _target_package(self, module: str) -> Optional[str]:
        if module == "repro":
            # ``from repro import x`` goes through the top-level facade.
            return "__init__"
        if module.startswith("repro."):
            return module.split(".")[1]
        return None

    def _check(self, node: ast.AST, module: str) -> None:
        target = self._target_package(module)
        if target is None or target == self.ctx.subpackage:
            return
        src_level = LAYERS.get(self.ctx.subpackage)
        tgt_level = LAYERS.get(target)
        if src_level is None or tgt_level is None:
            missing = target if tgt_level is None else self.ctx.subpackage
            self.report(
                node,
                f"package `repro.{missing}` is not in the layering table — "
                "add it to repro/analysis/rules/layering.py with an "
                "explicit level",
            )
            return
        if tgt_level > src_level:
            self.report(
                node,
                f"layering violation: `repro.{self.ctx.subpackage}` "
                f"(level {src_level}) imports `repro.{target}` (level "
                f"{tgt_level}) — dependencies must flow downward; move "
                "the shared code below both, or invert with a callback",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:  # relative import: intra-package by construction
            return
        if node.module:
            self._check(node, node.module)
