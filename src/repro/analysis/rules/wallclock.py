"""REP001: no wall-clock reads in the simulation/serving model code.

Every replay and serve result must be a pure function of (log, seed,
config).  A single ``time.time()`` in ``sim/`` silently turns the
1e-9 differential-equivalence gates (serial==parallel replay,
serve==replay accounting) into flaky tests.  Model code reads time
from :class:`repro.sim.clock.SimClock` or ``loop.time()`` — the only
modules allowed to touch the host clock are the clock abstractions
themselves.

``time.perf_counter`` is deliberately *not* banned: it measures how
long the host took (span timings, shard wall times in run manifests),
never what simulated time it is, so it cannot leak into results.
"""

from __future__ import annotations

import ast

from repro.analysis.context import FileContext
from repro.analysis.engine import Rule
from repro.analysis.findings import Severity

__all__ = ["WallClockRule"]

#: Packages whose results must be wall-clock free.
SCOPED_PACKAGES = {"sim", "serve", "logs", "storage"}

#: Clock-abstraction modules: the one place host time may be read.
WHITELISTED_FILES = {("sim", "clock.py"), ("serve", "vclock.py")}

#: Canonical dotted names whose *call* reads the wall clock.
BANNED_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.localtime",
    "time.gmtime",
    "time.strftime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockRule(Rule):
    id = "REP001"
    name = "no-wall-clock"
    severity = Severity.ERROR

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        if not ctx.in_packages(SCOPED_PACKAGES):
            return False
        return (ctx.subpackage, ctx.filename) not in WHITELISTED_FILES

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        if resolved in BANNED_CALLS:
            self.report(
                node,
                f"wall-clock read `{resolved}()` in `{self.ctx.subpackage}/` "
                "— model time must come from SimClock / loop.time() so "
                "results stay a pure function of (log, seed, config)",
            )
