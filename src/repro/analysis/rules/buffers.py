"""REP009: appends to unbounded instance buffers on hot paths.

The serving stack's observability invariant is that *always-on* state
is strictly bounded: rings are ``deque(maxlen=...)``, histograms use
reservoir sampling, accumulators reset per bucket.  A plain
``self.buf = []`` (or a ``deque()`` without ``maxlen``) that a hot-path
method keeps ``.append``-ing to is a slow memory leak that only shows
up after hours of uptime — exactly the failure mode the flight
recorder exists to debug, and exactly the one it must never cause.

A method is "hot" when its name starts with ``on_`` (the telemetry /
flight-recorder callback convention) or is one of the per-request verbs
(``submit``, ``fetch``, ``observe``, ``record``, ...).  Constructors,
``finalize``/``snapshot``/``dump`` paths and test helpers run O(1)
times per process and may append freely.

Scoped to the packages with always-on per-request state: ``serve``,
``obs`` and ``edge``.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from repro.analysis.context import FileContext
from repro.analysis.engine import Rule
from repro.analysis.findings import Severity

__all__ = ["BufferBoundRule"]

#: Packages whose classes hold always-on per-request state.
SCOPED_PACKAGES: Set[str] = {"serve", "obs", "edge"}

#: Per-request verbs besides the ``on_*`` callback convention.  ``add``
#: is deliberately absent: reservoir/merge helpers named ``*add*`` bound
#: their growth by construction.
HOT_METHOD_NAMES: Set[str] = {
    "submit",
    "fetch",
    "observe",
    "record",
    "record_delta",
    "admit",
    "event",
    "serve",
    "drain",
}

#: Canonical dotted names of unbounded-sequence constructors.
_DEQUE_NAMES = {"collections.deque", "deque"}


class BufferBoundRule(Rule):
    """Flag ``self.<buf>.append`` in hot methods when ``<buf>`` was
    created unbounded (``[]``, ``list()`` or ``deque()`` sans maxlen)."""

    id = "REP009"
    name = "unbounded-buffer-append"
    severity = Severity.ERROR

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return ctx.in_packages(SCOPED_PACKAGES)

    # -- helpers ------------------------------------------------------------

    def _unbounded_ctor(self, value: ast.AST) -> Optional[str]:
        """``"list"``/``"deque"`` when ``value`` builds an unbounded
        sequence, else ``None`` (anything unrecognized is *not* a match)."""
        if isinstance(value, ast.List):
            return "list"
        if not isinstance(value, ast.Call):
            return None
        target = self.ctx.imports.resolve(value.func)
        if target == "list" and not value.args and not value.keywords:
            return "list"
        if target in _DEQUE_NAMES:
            # deque(iterable, maxlen) — bounded via keyword or the
            # second positional argument.
            if len(value.args) >= 2:
                return None
            if any(kw.arg == "maxlen" for kw in value.keywords):
                return None
            return "deque"
        return None

    @staticmethod
    def _self_attr(node: ast.AST) -> Optional[str]:
        """Attribute name when ``node`` is exactly ``self.<attr>``."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    @staticmethod
    def _is_hot(method: ast.AST) -> bool:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        return method.name.startswith("on_") or method.name in HOT_METHOD_NAMES

    # -- the check ----------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = [
            item for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Pass 1: every ``self.x = <ctor>`` anywhere in the class.  A
        # bounded rebind anywhere wins — the attribute provably has a
        # bounded life somewhere, so flagging it would be noise.
        unbounded: dict = {}
        bounded: Set[str] = set()
        for method in methods:
            for sub in ast.walk(method):
                targets = []
                if isinstance(sub, ast.Assign):
                    targets, value = sub.targets, sub.value
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    targets, value = [sub.target], sub.value
                else:
                    continue
                for target in targets:
                    attr = self._self_attr(target)
                    if attr is None:
                        continue
                    kind = self._unbounded_ctor(value)
                    if kind is not None:
                        unbounded.setdefault(attr, kind)
                    elif isinstance(value, (ast.Call, ast.List)):
                        bounded.add(attr)
        suspects = {
            attr: kind for attr, kind in unbounded.items()
            if attr not in bounded
        }
        if not suspects:
            return
        # Pass 2: appends to a suspect buffer inside a hot method.
        for method in methods:
            if not self._is_hot(method):
                continue
            for sub in ast.walk(method):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in ("append", "appendleft"):
                    continue
                attr = self._self_attr(func.value)
                if attr is None or attr not in suspects:
                    continue
                self.report(
                    sub,
                    f"hot-path method {method.name!r} appends to unbounded "
                    f"{suspects[attr]} buffer 'self.{attr}'; always-on state "
                    f"must be bounded (use deque(maxlen=...) or reset per "
                    f"window)",
                )
