"""REP007: no exception swallowing on the accounting paths.

``except:`` (which also catches ``KeyboardInterrupt`` and, fatally for
asyncio, ``CancelledError``) is banned everywhere.  In the serve
package the bar is higher: a broad ``except Exception`` that does not
re-raise can swallow an :class:`~repro.serve.requests.Overloaded` shed
or a worker failure, so requests vanish without being counted and the
conservation check (submitted == completed + shed) silently rots.
Catch the specific exception, or re-raise after recording.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Rule, walk_in_order
from repro.analysis.findings import Severity

__all__ = ["ExceptionSwallowRule"]

BROAD_NAMES = {"Exception", "BaseException"}

#: Packages where even a broad non-re-raising handler is an error.
STRICT_SCOPE = {"serve"}


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in walk_in_order(handler))


def _broad_names(type_node: ast.AST):
    nodes = (
        type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    )
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in BROAD_NAMES:
            yield node.id


class ExceptionSwallowRule(Rule):
    id = "REP007"
    name = "no-exception-swallowing"
    severity = Severity.ERROR

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare `except:` also catches KeyboardInterrupt and "
                "asyncio.CancelledError — name the exception type",
            )
            return
        if not self.ctx.in_packages(STRICT_SCOPE):
            return
        broad = list(_broad_names(node.type))
        if broad and not _reraises(node):
            self.report(
                node,
                f"broad `except {broad[0]}` without re-raise in the serve "
                "path can swallow Overloaded sheds/worker failures and "
                "corrupt request accounting — catch the specific type or "
                "`raise` after recording",
            )
