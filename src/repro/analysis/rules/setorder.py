"""REP003: no set iteration feeding order-sensitive accumulation.

Float addition is not associative: ``sum`` over a ``set`` (whose
iteration order depends on hash seeding and insertion history) can give
different last-bit results run to run — exactly the kind of drift the
repo's 1e-9 differential-equivalence gates (serial vs parallel replay,
serve vs replay) exist to catch.  Accumulating into a list from a set
loop has the same hazard one step removed: the list *looks* ordered but
its order is arbitrary.

The fix is one word: ``sorted(...)`` the set before folding, as
``repro.sim.shard`` does when merging per-user metrics in user-id
order.

This is a heuristic (sets reached through attributes or call results
are invisible), so its severity is *warning*: reported always, fatal
only under ``--strict``.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.analysis.engine import Rule, walk_in_order
from repro.analysis.findings import Severity

__all__ = ["SetOrderRule"]

#: ``x.union(y)``-style methods whose result is a set.
SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}

#: list-building mutators that freeze an ordering.
ORDERED_APPENDERS = {"append", "extend", "insert"}


class SetOrderRule(Rule):
    id = "REP003"
    name = "set-order-accumulation"
    severity = Severity.WARNING

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        # Pre-pass: names ever bound to a set expression anywhere in the
        # file.  Scope-blind on purpose — cheap, and rebinding a name
        # from set to list between uses is its own readability bug.
        self.set_names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.set_names.add(target.id)

    # -- set-typed expression heuristic -------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in getattr(self, "set_names", ())
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in SET_METHODS
                and self._is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _comprehension_over_set(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            return any(self._is_set_expr(gen.iter) for gen in node.generators)
        return False

    # -- visitors -----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        if resolved not in ("sum", "math.fsum") or not node.args:
            return
        arg = node.args[0]
        if self._is_set_expr(arg) or self._comprehension_over_set(arg):
            self.report(
                node,
                f"`{resolved}()` over a set folds floats in arbitrary hash "
                "order — wrap the set in `sorted(...)` to keep the 1e-9 "
                "equivalence gates deterministic",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_loop(node)

    def _check_loop(self, node) -> None:
        if not self._is_set_expr(node.iter):
            return
        for child in walk_in_order(node):
            if child is node:
                continue
            if isinstance(child, ast.AugAssign) and isinstance(
                child.op, (ast.Add, ast.Sub, ast.Mult)
            ):
                self._report_loop(node, "accumulates with augmented assignment")
                return
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in ORDERED_APPENDERS
            ):
                self._report_loop(node, f"builds an ordered list via `.{child.func.attr}()`")
                return

    def _report_loop(self, node, how: str) -> None:
        self.report(
            node,
            f"loop over a set {how} — set order is arbitrary; iterate "
            "`sorted(...)` so the accumulation order (and any float sum) "
            "is reproducible",
        )
