"""REP006: no mutable default arguments.

A ``def f(acc=[])`` default is created once at function definition and
shared by every call — state leaks between invocations.  In this
codebase that is doubly poisonous: a shared default accumulator in
replay code couples users/shards through hidden state, breaking the
serial==parallel equivalence guarantee the differential suite gates.

Flagged default expressions: ``[]``/``{}``/``{...}`` literals,
comprehensions, and bare ``list()``/``dict()``/``set()``/
``collections.defaultdict(...)``/``collections.OrderedDict(...)``/
``bytearray()`` constructor calls.  Use ``None`` plus an in-body
``x = x if x is not None else []``.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Rule
from repro.analysis.findings import Severity

__all__ = ["MutableDefaultRule"]

MUTABLE_CTORS = {
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.deque", "collections.Counter",
}


class MutableDefaultRule(Rule):
    id = "REP006"
    name = "no-mutable-defaults"
    severity = Severity.ERROR

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check(node)

    def _check(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                self.report(
                    default,
                    "mutable default argument is created once and shared "
                    "by every call — default to None and build the "
                    "container in the body",
                )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            resolved = self.ctx.imports.resolve(node.func)
            return resolved in MUTABLE_CTORS
        return False
