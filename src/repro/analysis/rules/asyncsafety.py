"""REP004: lock discipline and no blocking calls in async code.

The serve path is single-threaded asyncio: correctness of admission
control and the background refresher rests on (a) locks only ever being
held across an ``await`` when acquired with ``async with`` (so
cancellation releases them), and (b) nothing inside an ``async def``
blocking the loop — one stray ``time.sleep`` freezes *every* device's
queue and, under :class:`~repro.serve.vclock.VirtualTimeLoop`,
deadlocks the deterministic clock outright.

Three patterns are flagged inside ``async def``:

* an ``await`` while a lock is held via a manual ``.acquire()`` (sync
  or awaited) instead of ``async with`` — cancellation at that await
  leaks the lock;
* a *sync* ``with <...lock...>:`` block containing an ``await`` —
  holding a threading lock across a suspension point stalls every
  other task that touches it;
* calls into a known-blocking API (``time.sleep``, ``subprocess.*``,
  ``socket``/``urllib`` I/O) in ``serve/`` — use ``asyncio.sleep`` /
  executors.

Nested function definitions are analyzed independently (a sync helper
defined inside an async function is not "inside" it for lock flow).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.analysis.context import FileContext, canonical_chain
from repro.analysis.engine import Rule
from repro.analysis.findings import Severity

__all__ = ["AsyncSafetyRule"]

#: Dotted call targets that block the event loop.
BLOCKING_CALLS = {
    "time.sleep",
    "os.system",
    "os.wait",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
}

#: Only the serving package gets the blocking-call check; lock
#: discipline applies everywhere asyncio is used.
BLOCKING_SCOPE = {"serve"}


def _chain_str(node: ast.AST) -> Optional[str]:
    """``self.session.lock`` -> that dotted string, ``self.locks[key]``
    -> the canonical ``self.locks[·]`` (any key collapses to the same
    container slot, so acquire/release through different key
    expressions still pair up), else ``None``."""
    return canonical_chain(node)


def _looks_like_lock(name: Optional[str]) -> bool:
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1].lower()
    return "lock" in tail or "mutex" in tail or "sem" in tail


def _walk_same_function(fn: ast.AST) -> Iterator[ast.AST]:
    """Source-order descendants of ``fn``, not entering nested defs."""
    stack: List[ast.AST] = list(reversed(list(ast.iter_child_nodes(fn))))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


class AsyncSafetyRule(Rule):
    id = "REP004"
    name = "async-lock-safety"
    severity = Severity.ERROR

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self.check_blocking = ctx.in_packages(BLOCKING_SCOPE)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_lock_flow(node)
        if self.check_blocking:
            self._check_blocking(node)

    # -- manual acquire/release across await --------------------------------

    def _check_lock_flow(self, fn: ast.AsyncFunctionDef) -> None:
        held: Dict[str, ast.AST] = {}
        acquire_awaits = set()
        for node in _walk_same_function(fn):
            if isinstance(node, ast.Await):
                inner = node.value
                if (
                    isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "acquire"
                ):
                    # ``await lock.acquire()`` — the acquisition itself.
                    acquire_awaits.add(id(inner))
                    base = _chain_str(inner.func.value)
                    if base is not None:
                        held[base] = node
                elif held:
                    locks = ", ".join(f"`{b}`" for b in sorted(held))
                    self.report(
                        node,
                        f"`await` while holding {locks} acquired without "
                        "`async with` — cancellation here leaks the lock; "
                        "use `async with lock:`",
                    )
                    held.clear()  # one finding per hold, not per await
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                base = _chain_str(node.func.value)
                if node.func.attr == "acquire" and id(node) not in acquire_awaits:
                    if base is not None:
                        held[base] = node
                elif node.func.attr == "release" and base in held:
                    del held[base]

    def visit_With(self, node: ast.With) -> None:
        # A *sync* with-block over a lock containing an await: the lock
        # stays held while the coroutine is suspended.
        lockish = [
            _chain_str(item.context_expr)
            for item in node.items
            if _looks_like_lock(_chain_str(item.context_expr))
        ]
        if not lockish:
            return
        for child in _walk_same_function(node):
            if isinstance(child, ast.Await):
                self.report(
                    child,
                    f"`await` inside sync `with {lockish[0]}:` — the lock "
                    "is held across the suspension point; use "
                    "`async with` (asyncio.Lock) instead",
                )
                return

    # -- blocking calls in serve/ -------------------------------------------

    def _check_blocking(self, fn: ast.AsyncFunctionDef) -> None:
        for node in _walk_same_function(fn):
            if not isinstance(node, ast.Call):
                continue
            resolved = self.ctx.imports.resolve(node.func)
            if resolved in BLOCKING_CALLS:
                self.report(
                    node,
                    f"blocking `{resolved}()` inside `async def "
                    f"{fn.name}` stalls the event loop (and deadlocks "
                    "VirtualTimeLoop) — use `await asyncio.sleep` or an "
                    "executor",
                )
