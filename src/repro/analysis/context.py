"""Per-file analysis context: logical package, imports, suppressions.

Rules never touch the filesystem or import the code under analysis —
everything they need (parsed tree, source lines, resolved import
aliases, the file's position in the ``repro`` package layout, inline
``# repro: noqa`` directives) lives on one :class:`FileContext`.

Import resolution is intentionally *syntactic*: ``import numpy as np``
makes ``np.random.rand`` resolve to ``numpy.random.rand`` without ever
importing numpy.  That keeps the analyzer runnable on files whose
dependencies are absent and free of import side effects.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["FileContext", "ImportMap", "canonical_chain", "parse_noqa"]

#: Placeholder for a subscript hop in a canonical chain: ``self.locks[key]``
#: and ``self.locks[other]`` both canonicalize to ``self.locks[·]`` — the
#: *container* is the shared object whose locking/mutation discipline the
#: rules track, whatever the key expression is.
SUBSCRIPT_HOP = "[·]"


def canonical_chain(node: ast.AST) -> Optional[str]:
    """Canonical dotted form of a Name/Attribute/Subscript chain.

    ``self.session.lock`` -> ``"self.session.lock"``;
    ``self.locks[key]`` -> ``"self.locks[·]"`` (any subscript collapses
    to the same placeholder, so two accesses through different keys
    still canonicalize to the same container).  Returns ``None`` when
    the chain is rooted in anything other than a plain name (a call
    result, a literal, ...).
    """
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            parts.append(SUBSCRIPT_HOP)
            node = node.value
        else:
            break
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    # Join with "." except subscript hops, which glue onto the previous
    # component: self.locks[·] not self.locks.[·].
    chain = ""
    for part in reversed(parts):
        if part == SUBSCRIPT_HOP:
            chain += SUBSCRIPT_HOP
        elif chain:
            chain += "." + part
        else:
            chain = part
    return chain

#: ``# repro: noqa``, ``# repro: noqa[REP001,REP002]`` or the ruff-shaped
#: ``# repro: noqa: REP001,REP002``.  A bare directive suppresses every
#: rule on that line.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\s*(?:\[(?P<brack>[A-Z0-9,\s]+)\]|:\s*(?P<colon>[A-Z0-9,\s]+)))?",
)

#: Sentinel rule set meaning "suppress everything on this line".
ALL_RULES: frozenset = frozenset({"*"})


def parse_noqa(lines: List[str]) -> Dict[int, frozenset]:
    """Map 1-based line number -> suppressed rule ids (or :data:`ALL_RULES`)."""
    out: Dict[int, frozenset] = {}
    for lineno, text in enumerate(lines, start=1):
        if "repro" not in text or "noqa" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        spec = match.group("brack") or match.group("colon")
        if spec is None:
            out[lineno] = ALL_RULES
        else:
            rules = frozenset(
                r.strip() for r in spec.split(",") if r.strip()
            )
            out[lineno] = rules or ALL_RULES
    return out


class ImportMap:
    """Syntactic alias table for resolving dotted call targets.

    Built from every ``import``/``from ... import`` in the file (at any
    nesting level — decorator-gated or function-local imports count).
    :meth:`resolve` turns an attribute chain back into the canonical
    dotted name, e.g. with ``from datetime import datetime as dt``,
    ``dt.now`` resolves to ``datetime.datetime.now``.
    """

    def __init__(self, tree: ast.AST) -> None:
        #: local alias -> canonical dotted prefix
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # ``import a.b`` binds ``a``; ``import a.b as c`` binds c=a.b.
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        ``None`` means the chain is rooted in something that is not a
        plain name (a call result, subscript, ...) — rules treat that
        as "unknown", never as a match.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = parts[0]
        resolved_root = self.aliases.get(root, root)
        return ".".join([resolved_root] + parts[1:])


class FileContext:
    """Everything the rules may know about one file under analysis.

    Attributes:
        path: display path (repo-relative POSIX when possible).
        source: raw file text.
        lines: source split into lines (no trailing newlines).
        tree: parsed :class:`ast.Module`.
        imports: the file's :class:`ImportMap`.
        noqa: line -> suppressed rule ids (see :func:`parse_noqa`).
        module_parts: path components from the nearest ``repro``
            directory down to the file, e.g. ``("sim", "replay.py")``;
            empty when the file is outside any ``repro`` tree.  Fixture
            trees under ``tests/.../repro/`` resolve exactly like the
            real package, so path-scoped rules are testable.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.imports = ImportMap(tree)
        self.noqa = parse_noqa(self.lines)
        self.module_parts = self._locate(path)

    @staticmethod
    def _locate(path: str) -> Tuple[str, ...]:
        parts = path.replace("\\", "/").split("/")
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == "repro":
                return tuple(parts[i + 1:])
        return ()

    @property
    def subpackage(self) -> Optional[str]:
        """First-level package inside ``repro`` (``"sim"``, ``"serve"``,
        ...), the module stem for top-level files (``"cli"``), or
        ``None`` outside the repro tree."""
        if not self.module_parts:
            return None
        if len(self.module_parts) == 1:
            name = self.module_parts[0]
            return name[:-3] if name.endswith(".py") else name
        return self.module_parts[0]

    @property
    def filename(self) -> str:
        return self.module_parts[-1] if self.module_parts else self.path

    def in_packages(self, names: Set[str]) -> bool:
        sub = self.subpackage
        return sub is not None and sub in names

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def is_suppressed(self, rule_id: str, lineno: int) -> bool:
        rules = self.noqa.get(lineno)
        if rules is None:
            return False
        return rules is ALL_RULES or "*" in rules or rule_id in rules
