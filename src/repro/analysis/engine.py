"""The rule engine: one AST pass per file, many rules riding along.

Rules are flake8-plugin-shaped: subclass :class:`Rule`, declare ``id``,
``name`` and ``severity``, and implement ``visit_<NodeType>`` methods.
The :class:`Analyzer` parses each file once, walks the tree in source
order, and dispatches every node to each applicable rule's matching
visitor.  Rules that need flow context (e.g. "an ``await`` while a lock
is held") are free to sub-walk the node they were handed.

Suppression happens at collection time: a finding on a line carrying
``# repro: noqa[RULE]`` is counted but not reported (see
:mod:`repro.analysis.context`).  Baseline filtering is a separate,
later stage (:mod:`repro.analysis.baseline`) so "suppressed inline" and
"grandfathered" stay distinguishable in the stats.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from repro.analysis.context import FileContext
from repro.analysis.findings import Finding, Severity

__all__ = ["Analyzer", "FileReport", "Rule", "iter_python_files", "walk_in_order"]


class Rule:
    """Base class for one lint rule, instantiated fresh per file.

    Class attributes:
        id: stable identifier, ``REP`` + 3 digits.
        name: short kebab-case name used in docs and ``--select``.
        severity: default :class:`Severity` for this rule's findings.

    Subclasses implement any number of ``visit_<NodeType>`` methods and
    may override :meth:`applies_to` to scope themselves to packages,
    and :meth:`finish` for whole-file checks after the walk.
    """

    id: str = "REP000"
    name: str = "abstract-rule"
    severity: Severity = Severity.ERROR

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return True

    def report(
        self,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                rule=self.id,
                severity=severity or self.severity,
                path=self.ctx.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                snippet=self.ctx.line_text(line),
            )
        )

    def finish(self) -> None:
        """Called once after the file walk; override for file-level checks."""


def walk_in_order(tree: ast.AST) -> Iterator[ast.AST]:
    """Depth-first, source-order traversal (``ast.walk`` is BFS)."""
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


@dataclass
class FileReport:
    """Outcome of analyzing one file."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    error: Optional[str] = None  # syntax/read failure, reported as REP000


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    seen = set()
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            candidates = [path]
        else:
            candidates = []
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d != "__pycache__" and not d.startswith(".")
                )
                candidates.extend(
                    os.path.join(root, f) for f in sorted(files)
                    if f.endswith(".py")
                )
        for cand in candidates:
            real = os.path.realpath(cand)
            if real not in seen:
                seen.add(real)
                out.append(cand)
    return iter(out)


class Analyzer:
    """Run a rule set over files and collect findings.

    Args:
        rules: rule classes to run; defaults to the full registry in
            :mod:`repro.analysis.rules`.
        select: optional rule ids/names to keep (others dropped).
        ignore: optional rule ids/names to drop.

    Raises:
        ValueError: if ``select``/``ignore`` mention unknown rules —
            a typo in CI config must fail loudly, not silently gate
            nothing.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Type[Rule]]] = None,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        if rules is None:
            from repro.analysis.rules import ALL_RULES

            rules = ALL_RULES
        self.rules: List[Type[Rule]] = list(rules)
        known = {r.id for r in self.rules} | {r.name for r in self.rules}
        for spec, label in ((select, "select"), (ignore, "ignore")):
            unknown = set(spec or ()) - known
            if unknown:
                raise ValueError(
                    f"unknown rule(s) in --{label}: {sorted(unknown)}; "
                    f"known: {sorted(r.id for r in self.rules)}"
                )
        if select is not None:
            wanted = set(select)
            self.rules = [
                r for r in self.rules if r.id in wanted or r.name in wanted
            ]
        if ignore is not None:
            dropped = set(ignore)
            self.rules = [
                r for r in self.rules
                if r.id not in dropped and r.name not in dropped
            ]

    # -- per-file -----------------------------------------------------------

    def analyze_source(self, path: str, source: str) -> FileReport:
        """Analyze in-memory source (the unit tests' entry point)."""
        report = FileReport(path=path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            report.error = f"syntax error: {exc.msg} (line {exc.lineno})"
            report.findings.append(
                Finding(
                    rule="REP000",
                    severity=Severity.ERROR,
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            return report
        ctx = FileContext(path, source, tree)
        active = [
            rule_cls(ctx) for rule_cls in self.rules
            if rule_cls.applies_to(ctx)
        ]
        if not active:
            return report
        # Dispatch table: node type name -> [bound visitor methods].
        dispatch: Dict[str, List] = {}
        for rule in active:
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    dispatch.setdefault(attr[6:], []).append(
                        getattr(rule, attr)
                    )
        for node in walk_in_order(tree):
            for visitor in dispatch.get(type(node).__name__, ()):
                visitor(node)
        for rule in active:
            rule.finish()
            for finding in rule.findings:
                if ctx.is_suppressed(finding.rule, finding.line):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
        report.findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return report

    def analyze_file(self, path: str, display_path: Optional[str] = None) -> FileReport:
        display = display_path or _display_path(path)
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except (OSError, UnicodeDecodeError) as exc:
            report = FileReport(path=display, error=str(exc))
            report.findings.append(
                Finding(
                    rule="REP000",
                    severity=Severity.ERROR,
                    path=display,
                    line=1,
                    col=0,
                    message=f"cannot read file: {exc}",
                )
            )
            return report
        return self.analyze_source(display, source)

    # -- trees --------------------------------------------------------------

    def run(self, paths: Sequence[str]) -> List[FileReport]:
        """Analyze every ``.py`` file under ``paths``, in sorted order."""
        return [self.analyze_file(p) for p in iter_python_files(paths)]


def _display_path(path: str) -> str:
    """Repo-relative POSIX path when under the cwd, else as given."""
    rel = os.path.relpath(path)
    if not rel.startswith(".."):
        path = rel
    return path.replace(os.sep, "/")
