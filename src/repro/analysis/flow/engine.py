"""The flow engine: summaries -> program -> fixpoints -> findings.

One :meth:`FlowEngine.run` is one whole-program pass over a file set.
With a warm cache it re-parses nothing and re-evaluates rules only for
files whose own digest *or* any digest in their transitive call-graph
dependency closure changed — ``stats["reanalyzed"]`` is the honest
count CI asserts on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.cache import FlowCache, digest_text
from repro.analysis.flow.callgraph import Program, build_program
from repro.analysis.flow.rules import (
    FLOW_RULES,
    FlowAnalyses,
    compute_analyses,
)
from repro.analysis.flow.summaries import FileSummary, summarize_source

__all__ = ["FlowEngine", "FlowReport", "FlowResult"]


@dataclass
class FlowReport:
    """Flow findings for one file (mirrors engine.FileReport)."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)


@dataclass
class FlowResult:
    reports: Dict[str, FlowReport]
    program: Program
    stats: Dict[str, object]

    def dependents_of(self, paths: Iterable[str]) -> Set[str]:
        """Files whose findings depend (transitively) on any of
        ``paths`` — the reverse call-graph dependent set ``--changed``
        must re-lint alongside the edited files themselves."""
        target_modules = {
            self.program.summaries[p].module
            for p in paths if p in self.program.summaries
        }
        out: Set[str] = set()
        closures: Dict[str, Set[str]] = self.stats["_module_closures"]
        for path, modules in closures.items():
            if modules & target_modules:
                out.add(path)
        return out


class FlowEngine:
    """Run the whole-program layer over a file set.

    Args:
        select/ignore: rule ids/names, pre-validated by the CLI.
        cache: a loaded :class:`FlowCache`, or ``None`` to disable
            caching entirely (every file re-analyzes).
    """

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        cache: Optional[FlowCache] = None,
    ) -> None:
        rules = list(FLOW_RULES)
        if select is not None:
            wanted = set(select)
            rules = [
                r for r in rules if r.id in wanted or r.name in wanted
            ]
        if ignore is not None:
            dropped = set(ignore)
            rules = [
                r for r in rules
                if r.id not in dropped and r.name not in dropped
            ]
        self.rules = rules
        self.cache = cache

    # -- pipeline -----------------------------------------------------------

    def run(self, files: Sequence[str]) -> FlowResult:
        started = time.perf_counter()
        rule_ids = sorted(r.id for r in self.rules)
        summaries: Dict[str, FileSummary] = {}
        sources_read: Dict[str, str] = {}
        summaries_reused = summaries_computed = 0

        for path in sorted(set(files)):
            try:
                with open(path, encoding="utf-8") as fh:
                    text = fh.read()
            except (OSError, UnicodeDecodeError):
                continue  # unreadable files are REP000's problem
            digest = digest_text(text)
            cached = (
                self.cache.summary_for(path, digest)
                if self.cache is not None else None
            )
            if cached is not None:
                summaries[path] = cached
                summaries_reused += 1
            else:
                summaries[path] = summarize_source(path, text, digest)
                sources_read[path] = text
                summaries_computed += 1

        program = build_program(summaries.values())
        module_closures = self._module_closures(program)
        analyses = compute_analyses(program)

        reports: Dict[str, FlowReport] = {}
        reanalyzed: List[str] = []
        findings_reused = 0
        line_cache: Dict[str, List[str]] = {}

        def snippet_for(path: str):
            def snippet(lineno: int) -> str:
                lines = line_cache.get(path)
                if lines is None:
                    text = sources_read.get(path)
                    if text is None:
                        try:
                            with open(path, encoding="utf-8") as fh:
                                text = fh.read()
                        except OSError:
                            text = ""
                    lines = text.splitlines()
                    line_cache[path] = lines
                if 1 <= lineno <= len(lines):
                    return lines[lineno - 1].strip()
                return ""
            return snippet

        for path in sorted(summaries):
            summary = summaries[path]
            module_deps = self._dep_digests(
                program, module_closures[path]
            )
            if (
                self.cache is not None
                and self.cache.findings_valid(
                    path, summary.digest, module_deps, rule_ids
                )
            ):
                cached_f = self.cache.findings_for(path)
                if cached_f is not None:
                    reports[path] = FlowReport(
                        path=path,
                        findings=cached_f["findings"],
                        suppressed=cached_f["suppressed"],
                    )
                    findings_reused += 1
                    continue
            report = self._evaluate(
                program, analyses, summary, snippet_for(path)
            )
            reports[path] = report
            reanalyzed.append(path)
            if self.cache is not None:
                self.cache.store(
                    summary, module_deps, rule_ids,
                    report.findings, report.suppressed,
                )

        if self.cache is not None:
            self.cache.prune(summaries.keys())
            self.cache.save()

        stats: Dict[str, object] = {
            "files": len(summaries),
            "rules": rule_ids,
            "summaries_reused": summaries_reused,
            "summaries_computed": summaries_computed,
            "findings_reused": findings_reused,
            "reanalyzed": len(reanalyzed),
            "reanalyzed_files": reanalyzed,
            "graph_nodes": len(program.graph.nodes()),
            "graph_edges": sum(
                len(v) for v in program.graph.edges.values()
            ),
            "tainted_functions": len(analyses.taint),
            "wall_s": round(time.perf_counter() - started, 4),
            "_module_closures": module_closures,
        }
        return FlowResult(reports=reports, program=program, stats=stats)

    # -- helpers ------------------------------------------------------------

    def _evaluate(
        self,
        program: Program,
        analyses: FlowAnalyses,
        summary: FileSummary,
        snippet,
    ) -> FlowReport:
        report = FlowReport(path=summary.path)
        for rule_cls in self.rules:
            rule = rule_cls(program, analyses)
            for finding in rule.findings_for_file(summary, snippet):
                if summary.is_suppressed(finding.rule, finding.line):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
        report.findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return report

    @staticmethod
    def _module_closures(program: Program) -> Dict[str, Set[str]]:
        """Per file, the transitive set of referenced foreign modules."""
        direct: Dict[str, Set[str]] = {
            path: set(summary.referenced_modules)
            for path, summary in program.summaries.items()
        }
        closure = {path: set(mods) for path, mods in direct.items()}
        changed = True
        while changed:
            changed = False
            for path in closure:
                additions: Set[str] = set()
                for mod in closure[path]:
                    backing = program.symbols.modules.get(mod)
                    if backing is not None and backing in closure:
                        additions |= closure[backing]
                additions.discard(program.summaries[path].module)
                if not additions <= closure[path]:
                    closure[path] |= additions
                    changed = True
        return closure

    @staticmethod
    def _dep_digests(
        program: Program, modules: Set[str]
    ) -> Dict[str, Optional[str]]:
        out: Dict[str, Optional[str]] = {}
        for mod in modules:
            backing = program.symbols.modules.get(mod)
            if backing is None:
                out[mod] = None
            else:
                out[mod] = program.summaries[backing].digest
        return out
