"""Whole-program flow layer for ``repro lint`` (``--flow``).

The per-file AST rules (REP001-REP009) see one file at a time; this
package sees the project.  It is built in four stages, each a module:

``summaries``
    One parse per file -> a JSON-serializable :class:`FileSummary`:
    the file's functions and classes, every call site resolved as far
    as file-local information allows (through the shared
    :class:`~repro.analysis.context.ImportMap`), direct nondeterminism
    sources, and the ordered read/write/await event stream of every
    ``async def``.

``callgraph``
    Links summaries into a project :class:`SymbolTable` and
    :class:`CallGraph` — module functions, methods resolved through
    class attributes and base classes, forward + reverse edges.

``taint``
    Worklist fixpoints over the graph: transitive nondeterminism
    (with deterministic shortest call chains for the REP010 message),
    coroutine factories (REP012), and per-class transitive
    ``self.*``-write sets (REP011's interprocedural half).

``cache``
    Content-fingerprinted incremental store: per-file summaries and
    findings keyed by the file digest plus the digests of every
    transitive call-graph dependency, invalidated transitively.

``rules`` holds the three flow rules (REP010-REP012) and ``engine``
the :class:`FlowEngine` orchestrating a run.  Findings come out as
plain :class:`~repro.analysis.findings.Finding` objects so the noqa /
baseline / SARIF machinery downstream does not know flow findings are
special.
"""

from __future__ import annotations

from repro.analysis.flow.cache import FlowCache
from repro.analysis.flow.callgraph import CallGraph, SymbolTable, build_program
from repro.analysis.flow.engine import FlowEngine, FlowReport
from repro.analysis.flow.rules import FLOW_RULES, FLOW_RULES_BY_ID
from repro.analysis.flow.summaries import FileSummary, summarize_source

__all__ = [
    "CallGraph",
    "FLOW_RULES",
    "FLOW_RULES_BY_ID",
    "FileSummary",
    "FlowCache",
    "FlowEngine",
    "FlowReport",
    "SymbolTable",
    "build_program",
    "summarize_source",
]
