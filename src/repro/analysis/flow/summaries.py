"""Per-file flow summaries: everything the whole-program layer needs
from one file, extracted in one parse and serializable to JSON.

A summary is a pure function of the file's text — no global knowledge
leaks in.  Call targets are therefore recorded as *references* (a
dotted candidate via the ImportMap, a ``self.method``, a
``self.attr.method``) and resolved later against the project symbol
table; that split is what makes summaries cacheable per file digest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.context import ImportMap, canonical_chain, parse_noqa
from repro.analysis.rules.rng import (
    NUMPY_LEGACY_FNS,
    SEEDABLE_CTORS,
    STDLIB_GLOBAL_FNS,
    _has_seed_argument,
)
from repro.analysis.rules.wallclock import BANNED_CALLS as WALLCLOCK_CALLS

__all__ = [
    "CallRef",
    "CallUse",
    "ClassInfo",
    "Event",
    "FileSummary",
    "FunctionSummary",
    "Source",
    "module_name_for",
    "summarize_source",
]

#: Files whose whole body is a clock/randomness abstraction: nothing in
#: them counts as a nondeterminism *source* (they are the sanctioned
#: shims REP001 whitelists).
SOURCE_EXEMPT_FILES = {
    ("repro", "sim", "clock.py"),
    ("repro", "serve", "vclock.py"),
}

#: Mutating container/collection methods: a call ``self.x.append(...)``
#: is a *write* to ``self.x``.
MUTATOR_METHODS = {
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "rotate",
    "setdefault", "sort", "update",
}

#: Call wrappers that retain/schedule a coroutine: a coroutine passed
#: straight into one of these is not "escaping unawaited".
SPAWN_WRAPPERS = {
    "create_task", "ensure_future", "gather", "wait", "wait_for",
    "as_completed", "run", "run_until_complete", "shield", "Task",
}

#: ``os.environ`` style ambient-environment reads.
ENVIRON_READS = {"os.environ", "os.getenv", "os.environb"}


def module_name_for(path: str) -> str:
    """Dotted module name of ``path``.

    Files under a ``repro`` directory (the real package, or the
    fixture trees that mirror it) become ``repro.<...>``; anything
    else falls back to its stem, so loose single-file fixtures still
    get distinct module names.
    """
    parts = path.replace("\\", "/").split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            mod = parts[i:-1] + ([] if stem == "__init__" else [stem])
            return ".".join(mod)
    return stem


def rng_call_is_unseeded(resolved: str, call: ast.Call) -> bool:
    """Shared with REP002: does this resolved call draw hidden entropy?"""
    parts = resolved.split(".")
    if len(parts) == 2 and parts[0] == "random" \
            and parts[1] in STDLIB_GLOBAL_FNS:
        return True
    if len(parts) == 3 and parts[0] == "numpy" and parts[1] == "random" \
            and parts[2] in NUMPY_LEGACY_FNS:
        return True
    if resolved in SEEDABLE_CTORS:
        if resolved == "random.SystemRandom":
            return True
        return not _has_seed_argument(call)
    return False


# ---------------------------------------------------------------------------
# serializable record types
# ---------------------------------------------------------------------------


@dataclass
class CallRef:
    """One call site, resolved as far as file-local knowledge allows.

    ``kind``:
        ``dotted``   — canonical dotted candidate (``target``), e.g.
                       ``repro.core.util.helper`` or
                       ``repro.sim.clock.SimClock.now`` for typed locals;
        ``self``     — ``self.<method>()`` on the enclosing class;
        ``selfattr`` — ``self.<attr>.<method>()`` through a class
                       attribute whose type the symbol table may know.
    """

    kind: str
    line: int
    col: int = 0
    target: Optional[str] = None   # dotted candidate (kind == dotted)
    attr: Optional[str] = None     # kind == selfattr
    method: Optional[str] = None   # kind in (self, selfattr)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "line": self.line,
                               "col": self.col}
        for key in ("target", "attr", "method"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "CallRef":
        return cls(**doc)


@dataclass
class Source:
    """A direct nondeterminism source inside one function."""

    kind: str       # wallclock | rng | environ | setiter
    detail: str     # e.g. "time.time()" — goes verbatim into messages
    line: int

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "detail": self.detail, "line": self.line}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Source":
        return cls(**doc)


@dataclass
class Event:
    """One entry of an async function's ordered access stream.

    ``op`` is ``read``/``write``/``await``; ``chain`` the canonical
    shared-state chain (``self.pending``, ``self.locks[·]``, a
    ``nonlocal`` name) or ``""`` for awaits; ``locks`` the stack of
    ``async with``-lock span ids covering the event.
    """

    op: str
    pos: int
    line: int
    chain: str = ""
    locks: Tuple[int, ...] = ()
    ref: Optional[CallRef] = None   # awaited call, for op == "await"
    #: ids of enclosing *terminating* branches (a branch ending in
    #: return/raise): an event inside one cannot precede events after
    #: the branch on any execution path.
    regions: Tuple[int, ...] = ()
    #: write half of an AugAssign — a self-contained read-modify-write
    #: whose read is fresh (same statement), never a stale-state write.
    rmw: bool = False

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": self.op, "pos": self.pos,
                               "line": self.line}
        if self.chain:
            out["chain"] = self.chain
        if self.locks:
            out["locks"] = list(self.locks)
        if self.ref is not None:
            out["ref"] = self.ref.to_dict()
        if self.regions:
            out["regions"] = list(self.regions)
        if self.rmw:
            out["rmw"] = True
        return out

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Event":
        ref = doc.get("ref")
        return cls(
            op=doc["op"], pos=doc["pos"], line=doc["line"],
            chain=doc.get("chain", ""),
            locks=tuple(doc.get("locks", ())),
            ref=CallRef.from_dict(ref) if ref else None,
            regions=tuple(doc.get("regions", ())),
            rmw=bool(doc.get("rmw", False)),
        )


@dataclass
class CallUse:
    """How one call site's *result* is consumed (REP012's raw material).

    ``usage``: ``awaited`` | ``spawned`` | ``passed`` | ``returned`` |
    ``stored`` | ``yielded`` | ``discarded`` | ``dead``.
    """

    ref: CallRef
    usage: str

    def to_dict(self) -> Dict[str, Any]:
        return {"ref": self.ref.to_dict(), "usage": self.usage}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "CallUse":
        return cls(ref=CallRef.from_dict(doc["ref"]), usage=doc["usage"])


@dataclass
class FunctionSummary:
    qualname: str                     # module.[Class.]name
    module: str
    cls: Optional[str]                # owning class qualname, or None
    name: str
    line: int
    is_async: bool
    calls: List[CallRef] = field(default_factory=list)
    sources: List[Source] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)       # async only
    call_uses: List[CallUse] = field(default_factory=list)
    writes_self_attrs: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname, "module": self.module,
            "cls": self.cls, "name": self.name, "line": self.line,
            "is_async": self.is_async,
            "calls": [c.to_dict() for c in self.calls],
            "sources": [s.to_dict() for s in self.sources],
            "events": [e.to_dict() for e in self.events],
            "call_uses": [u.to_dict() for u in self.call_uses],
            "writes_self_attrs": list(self.writes_self_attrs),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=doc["qualname"], module=doc["module"],
            cls=doc["cls"], name=doc["name"], line=doc["line"],
            is_async=doc["is_async"],
            calls=[CallRef.from_dict(c) for c in doc["calls"]],
            sources=[Source.from_dict(s) for s in doc["sources"]],
            events=[Event.from_dict(e) for e in doc["events"]],
            call_uses=[CallUse.from_dict(u) for u in doc["call_uses"]],
            writes_self_attrs=list(doc["writes_self_attrs"]),
        )


@dataclass
class ClassInfo:
    qualname: str
    module: str
    bases: List[str] = field(default_factory=list)      # dotted candidates
    attr_types: Dict[str, str] = field(default_factory=dict)
    methods: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname, "module": self.module,
            "bases": list(self.bases), "attr_types": dict(self.attr_types),
            "methods": list(self.methods),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ClassInfo":
        return cls(
            qualname=doc["qualname"], module=doc["module"],
            bases=list(doc["bases"]), attr_types=dict(doc["attr_types"]),
            methods=list(doc["methods"]),
        )


@dataclass
class FileSummary:
    path: str
    module: str
    digest: str
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: referenced foreign modules (dotted prefixes of call candidates) —
    #: the raw material for dependency tracking.
    referenced_modules: List[str] = field(default_factory=list)
    #: line -> suppressed rule list (["*"] for blanket noqa).
    noqa: Dict[str, List[str]] = field(default_factory=dict)
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path, "module": self.module, "digest": self.digest,
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "classes": {q: c.to_dict() for q, c in self.classes.items()},
            "referenced_modules": list(self.referenced_modules),
            "noqa": {k: list(v) for k, v in self.noqa.items()},
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FileSummary":
        return cls(
            path=doc["path"], module=doc["module"], digest=doc["digest"],
            functions={
                q: FunctionSummary.from_dict(f)
                for q, f in doc["functions"].items()
            },
            classes={
                q: ClassInfo.from_dict(c) for q, c in doc["classes"].items()
            },
            referenced_modules=list(doc["referenced_modules"]),
            noqa={k: list(v) for k, v in doc["noqa"].items()},
            error=doc.get("error"),
        )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.noqa.get(str(line))
        if rules is None:
            return False
        return "*" in rules or rule_id in rules


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


def _is_source_exempt(path: str) -> bool:
    parts = tuple(path.replace("\\", "/").split("/"))
    for exempt in SOURCE_EXEMPT_FILES:
        if parts[-len(exempt):] == exempt:
            return True
    return False


def _walk_same_function(fn: ast.AST):
    """Source-order descendants of ``fn``, not entering nested defs."""
    stack = list(reversed(list(ast.iter_child_nodes(fn))))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _terminates(stmts: List[ast.stmt]) -> bool:
    """Whether a statement list definitely leaves the function (the
    last statement returns or raises on every path).  Conservative:
    loops and try blocks are assumed to fall through."""
    if not stmts:
        return False
    last = stmts[-1]
    if isinstance(last, (ast.Return, ast.Raise)):
        return True
    if isinstance(last, ast.If):
        return _terminates(last.body) and _terminates(last.orelse)
    if isinstance(last, (ast.With, ast.AsyncWith)):
        return _terminates(last.body)
    return False


def _looks_like_lock(chain: Optional[str]) -> bool:
    if not chain:
        return False
    tail = chain.rsplit(".", 1)[-1].lower()
    return "lock" in tail or "mutex" in tail or "sem" in tail


class _FunctionExtractor:
    """Extract one :class:`FunctionSummary` from a def node."""

    def __init__(
        self,
        fn: ast.AST,
        qualname: str,
        module: str,
        cls: Optional[str],
        imports: ImportMap,
        source_exempt: bool,
        set_names: Set[str],
    ) -> None:
        self.fn = fn
        self.imports = imports
        self.source_exempt = source_exempt
        self.set_names = set_names
        self.is_async = isinstance(fn, ast.AsyncFunctionDef)
        self.summary = FunctionSummary(
            qualname=qualname, module=module, cls=cls,
            name=fn.name, line=fn.lineno, is_async=self.is_async,
        )
        #: local name -> dotted class candidate (``x = SimClock(...)``).
        self.local_types: Dict[str, str] = {}
        self._collect_local_types()

    # -- call reference resolution (file-local half) ------------------------

    def _collect_local_types(self) -> None:
        for node in _walk_same_function(self.fn):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Call):
                dotted = self.imports.resolve(value.func)
                if dotted is not None:
                    self.local_types[target.id] = dotted

    def call_ref(self, call: ast.Call) -> Optional[CallRef]:
        func = call.func
        line, col = call.lineno, call.col_offset
        if isinstance(func, ast.Attribute):
            base = func.value
            # self.m(...)
            if isinstance(base, ast.Name) and base.id == "self":
                return CallRef("self", line, col, method=func.attr)
            # self.attr.m(...)
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                return CallRef("selfattr", line, col,
                               attr=base.attr, method=func.attr)
            # x.m(...) with x a ctor-typed local
            if isinstance(base, ast.Name) and base.id in self.local_types:
                dotted = f"{self.local_types[base.id]}.{func.attr}"
                return CallRef("dotted", line, col, target=dotted)
        dotted = self.imports.resolve(func)
        if dotted is not None:
            return CallRef("dotted", line, col, target=dotted)
        return None

    # -- direct sources -----------------------------------------------------

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
        return False

    def _scan_sources(self) -> None:
        if self.source_exempt:
            return
        for node in _walk_same_function(self.fn):
            if isinstance(node, ast.Call):
                resolved = self.imports.resolve(node.func)
                if resolved in WALLCLOCK_CALLS:
                    self.summary.sources.append(
                        Source("wallclock", f"{resolved}()", node.lineno)
                    )
                elif resolved == "os.getenv":
                    self.summary.sources.append(
                        Source("environ", "os.getenv()", node.lineno)
                    )
                elif resolved is not None and rng_call_is_unseeded(
                    resolved, node
                ):
                    self.summary.sources.append(
                        Source("rng", f"{resolved}()", node.lineno)
                    )
                elif isinstance(node.func, ast.Name) and node.func.id in (
                    "list", "tuple"
                ) and node.args and self._is_set_expr(node.args[0]):
                    self.summary.sources.append(
                        Source(
                            "setiter",
                            f"{node.func.id}() over a set", node.lineno,
                        )
                    )
            elif isinstance(node, ast.Attribute):
                resolved = self.imports.resolve(node)
                if resolved in ENVIRON_READS and isinstance(
                    node.ctx, ast.Load
                ):
                    self.summary.sources.append(
                        Source("environ", resolved, node.lineno)
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter) and self._accumulates(node):
                    self.summary.sources.append(
                        Source(
                            "setiter", "order-sensitive loop over a set",
                            node.lineno,
                        )
                    )

    def _accumulates(self, loop: ast.AST) -> bool:
        for child in _walk_same_function(loop):
            if isinstance(child, ast.AugAssign) and isinstance(
                child.op, (ast.Add, ast.Sub, ast.Mult)
            ):
                return True
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in ("append", "extend", "insert")
            ):
                return True
        return False

    # -- shared-state event stream (REP011) ---------------------------------

    def _shared_chain(self, node: ast.AST,
                      nonlocals: Set[str]) -> Optional[str]:
        chain = canonical_chain(node)
        if chain is None:
            return None
        root = chain.split(".", 1)[0].split("[", 1)[0]
        if root == "self" and "." in chain:
            return chain
        if root in nonlocals and chain == root:
            return chain
        return None

    def _scan_events(self) -> None:
        """Linearize the async function body into the event stream."""
        nonlocals: Set[str] = set()
        for node in _walk_same_function(self.fn):
            if isinstance(node, ast.Nonlocal):
                nonlocals.update(node.names)
        events = self.summary.events
        pos_counter = [0]
        region_counter = [0]

        def nxt() -> int:
            pos_counter[0] += 1
            return pos_counter[0]

        def emit_access(node: ast.AST, op: str, locks: Tuple[int, ...],
                        regions: Tuple[int, ...], rmw: bool = False) -> None:
            if isinstance(node, (ast.Tuple, ast.List)):
                for elt in node.elts:
                    emit_access(elt, op, locks, regions)
                return
            if isinstance(node, ast.Starred):
                emit_access(node.value, op, locks, regions)
                return
            chain = self._shared_chain(node, nonlocals)
            if chain is None:
                return
            events.append(Event(op, nxt(), node.lineno, chain, locks,
                                regions=regions, rmw=rmw))

        def walk_branch(stmts: List[ast.stmt], locks: Tuple[int, ...],
                        regions: Tuple[int, ...]) -> None:
            """An ``if`` arm: a branch that *terminates* (return/raise)
            gets its own region id — control never flows from inside it
            to statements after the enclosing ``if``, so its events
            must not pair with later writes."""
            if _terminates(stmts):
                region_counter[0] += 1
                regions = regions + (region_counter[0],)
            for stmt in stmts:
                walk(stmt, locks, regions)

        def walk(node: ast.AST, locks: Tuple[int, ...],
                 regions: Tuple[int, ...]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                return
            if isinstance(node, ast.If):
                walk(node.test, locks, regions)
                walk_branch(node.body, locks, regions)
                walk_branch(node.orelse, locks, regions)
                return
            if isinstance(node, ast.AsyncWith):
                new_locks = locks
                for item in node.items:
                    chain = canonical_chain(item.context_expr)
                    if chain is None and isinstance(
                        item.context_expr, ast.Call
                    ):
                        chain = canonical_chain(item.context_expr.func)
                    if _looks_like_lock(chain):
                        new_locks = new_locks + (node.lineno,)
                    walk(item.context_expr, locks, regions)
                for stmt in node.body:
                    walk(stmt, new_locks, regions)
                return
            if isinstance(node, ast.Await):
                # Children (the awaited expression: reads inside the
                # call arguments) happen before suspension.
                for child in ast.iter_child_nodes(node):
                    walk(child, locks, regions)
                ref = None
                if isinstance(node.value, ast.Call):
                    ref = self.call_ref(node.value)
                events.append(
                    Event("await", nxt(), node.lineno, "", locks, ref,
                          regions=regions)
                )
                return
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                if node.value is not None:
                    walk(node.value, locks, regions)
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                is_rmw = isinstance(node, ast.AugAssign)
                if is_rmw:
                    emit_access(node.target, "read", locks, regions)
                for target in targets:
                    # A subscript/attribute store mutates the base
                    # container: self.d[k] = v writes self.d[·].
                    emit_access(target, "write", locks, regions,
                                rmw=is_rmw)
                return
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    emit_access(target, "write", locks, regions)
                return
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    # The *base object* is what is read (or, for a
                    # mutator method, written): self.cache.get(k) reads
                    # self.cache; self.pending.append(x) writes it.
                    op = (
                        "write" if func.attr in MUTATOR_METHODS else "read"
                    )
                    emit_access(func.value, op, locks, regions)
                else:
                    walk(func, locks, regions)
                for child in list(node.args) + [
                    kw.value for kw in node.keywords
                ]:
                    walk(child, locks, regions)
                return
            if isinstance(node, (ast.Attribute, ast.Subscript, ast.Name)):
                if isinstance(getattr(node, "ctx", None), ast.Load):
                    emit_access(node, "read", locks, regions)
                    return
            for child in ast.iter_child_nodes(node):
                walk(child, locks, regions)

        for stmt in self.fn.body:
            walk(stmt, (), ())

    # -- coroutine escape classification (REP012) ---------------------------

    def _scan_call_uses(self) -> None:
        fn = self.fn
        parents: Dict[int, ast.AST] = {}
        calls: List[ast.Call] = []
        for node in _walk_same_function(fn):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
            if isinstance(node, ast.Call):
                calls.append(node)
        # Names assigned from calls, then checked for any later use.
        used_names: Set[str] = set()
        for node in _walk_same_function(fn):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                used_names.add(node.id)
        for call in calls:
            ref = self.call_ref(call)
            if ref is None:
                continue
            parent = parents.get(id(call), fn)
            usage = "passed"  # conservative default: result consumed
            if isinstance(parent, ast.Await):
                usage = "awaited"
            elif isinstance(parent, ast.Call):
                func = parent.func
                attr = (
                    func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else ""
                )
                usage = "spawned" if attr in SPAWN_WRAPPERS else "passed"
            elif isinstance(parent, ast.Expr):
                usage = "discarded"
            elif isinstance(parent, ast.Return):
                usage = "returned"
            elif isinstance(parent, (ast.Yield, ast.YieldFrom)):
                usage = "yielded"
            elif isinstance(parent, ast.Assign):
                names = [
                    t.id for t in parent.targets if isinstance(t, ast.Name)
                ]
                if names and not any(n in used_names for n in names):
                    usage = "dead"
                else:
                    usage = "stored"
            elif isinstance(parent, (ast.AnnAssign, ast.AugAssign)):
                usage = "stored"
            self.summary.call_uses.append(CallUse(ref, usage))

    # -- self.* writes (interprocedural REP011 raw material) ----------------

    def _scan_self_writes(self) -> None:
        writes: Set[str] = set()
        for node in _walk_same_function(self.fn):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr in MUTATOR_METHODS:
                targets = [node.func.value]
            for target in targets:
                chain = canonical_chain(target)
                if chain and chain.startswith("self.") :
                    attr = chain[5:].split(".", 1)[0].split("[", 1)[0]
                    if attr:
                        writes.add(attr)
        self.summary.writes_self_attrs = sorted(writes)

    # -- driver -------------------------------------------------------------

    def extract(self) -> FunctionSummary:
        for node in _walk_same_function(self.fn):
            if isinstance(node, ast.Call):
                ref = self.call_ref(node)
                if ref is not None:
                    self.summary.calls.append(ref)
        self._scan_sources()
        self._scan_call_uses()
        self._scan_self_writes()
        if self.is_async:
            self._scan_events()
        return self.summary


def _file_set_names(tree: ast.AST) -> Set[str]:
    """Names ever bound to an obvious set expression (file-wide)."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            value = node.value
            is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("set", "frozenset")
            )
            if is_set:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
    return out


def summarize_source(path: str, source: str, digest: str) -> FileSummary:
    """Parse ``source`` and extract its :class:`FileSummary`."""
    module = module_name_for(path)
    summary = FileSummary(path=path, module=module, digest=digest)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        summary.error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return summary
    imports = ImportMap(tree)
    noqa = parse_noqa(source.splitlines())
    summary.noqa = {
        str(line): sorted(rules) for line, rules in noqa.items()
    }
    source_exempt = _is_source_exempt(path)
    set_names = _file_set_names(tree)

    def visit_body(body, prefix: str, cls: Optional[ClassInfo]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{node.name}"
                extractor = _FunctionExtractor(
                    node, qual, module,
                    cls.qualname if cls else None,
                    imports, source_exempt, set_names,
                )
                summary.functions[qual] = extractor.extract()
                if cls is not None:
                    cls.methods.append(node.name)
                    _scan_attr_types(node, cls, imports)
                # Nested defs get their own (nested) qualnames.
                visit_body(node.body, qual, None)
            elif isinstance(node, ast.ClassDef):
                qual = f"{prefix}.{node.name}"
                info = ClassInfo(qualname=qual, module=module)
                for base in node.bases:
                    dotted = imports.resolve(base)
                    if dotted is not None:
                        info.bases.append(dotted)
                summary.classes[qual] = info
                visit_body(node.body, qual, info)

    visit_body(tree.body, module, None)
    summary.referenced_modules = sorted(_referenced_modules(summary))
    return summary


def _scan_attr_types(method: ast.AST, cls: ClassInfo,
                     imports: ImportMap) -> None:
    """Record ``self.x = Ctor(...)`` / ``self.x: T`` attribute types."""
    for node in _walk_same_function(method):
        target = None
        type_node = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(node.value, ast.Call):
                type_node = node.value.func
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            type_node = node.annotation
        if (
            target is not None and type_node is not None
            and isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            dotted = imports.resolve(type_node)
            if dotted is not None:
                cls.attr_types.setdefault(target.attr, dotted)


def _referenced_modules(summary: FileSummary) -> Set[str]:
    """Foreign-module prefixes this file's resolution may depend on.

    For a dotted candidate ``a.b.c.d`` both ``a.b.c`` (module function)
    and ``a.b`` (class method: ``a.b.C.d``) are plausible defining
    modules; record both so the incremental cache can notice when a
    previously-absent module appears.
    """
    out: Set[str] = set()
    for fn in summary.functions.values():
        refs = [c for c in fn.calls] + [u.ref for u in fn.call_uses]
        for ref in refs:
            if ref.kind != "dotted" or not ref.target:
                continue
            parts = ref.target.split(".")
            for cut in (1, 2):
                if len(parts) > cut:
                    out.add(".".join(parts[:-cut]))
    for cls in summary.classes.values():
        for dotted in list(cls.bases) + list(cls.attr_types.values()):
            parts = dotted.split(".")
            if len(parts) > 1:
                out.add(".".join(parts[:-1]))
    out.discard(summary.module)
    return out
