"""Project symbol table and call graph over per-file summaries.

Resolution is best-effort and *syntactic*, like everything in
``repro.analysis``: a call resolves to a node iff the summaries define
a matching function — module functions through the ImportMap's dotted
candidates, methods through the receiver's class (``self.m()``),
declared attribute types (``self.engine.lookup()``) or ctor-typed
locals, walking base classes when the class itself does not define the
method.  Unresolved calls simply contribute no edge; the flow rules
never guess.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.flow.summaries import (
    CallRef,
    ClassInfo,
    FileSummary,
    FunctionSummary,
)

__all__ = ["CallGraph", "Program", "SymbolTable", "build_program"]


class SymbolTable:
    """Qualified-name lookup over every summarized file."""

    def __init__(self, summaries: Iterable[FileSummary]) -> None:
        #: function qualname -> summary
        self.functions: Dict[str, FunctionSummary] = {}
        #: class qualname -> info
        self.classes: Dict[str, ClassInfo] = {}
        #: module -> file path
        self.modules: Dict[str, str] = {}
        #: class local name ("C") -> [qualnames] for base resolution
        self._class_by_name: Dict[str, List[str]] = {}
        for summary in sorted(summaries, key=lambda s: s.path):
            self.modules.setdefault(summary.module, summary.path)
            for qual, fn in summary.functions.items():
                self.functions.setdefault(qual, fn)
            for qual, cls in summary.classes.items():
                self.classes.setdefault(qual, cls)
                self._class_by_name.setdefault(
                    qual.rsplit(".", 1)[-1], []
                ).append(qual)

    # -- class hierarchy ----------------------------------------------------

    def resolve_class(self, dotted: str) -> Optional[ClassInfo]:
        """A dotted candidate -> known class, trying the name as given
        then (for ``from m import C`` re-exports) by trailing name."""
        if dotted in self.classes:
            return self.classes[dotted]
        tail = dotted.rsplit(".", 1)[-1]
        candidates = sorted(self._class_by_name.get(tail, ()))
        for qual in candidates:
            # Accept only if the module prefix is a prefix match or the
            # candidate is unambiguous.
            if len(candidates) == 1 or qual.endswith("." + dotted):
                return self.classes[qual]
        return None

    def method_on(self, cls: ClassInfo,
                  method: str) -> Optional[FunctionSummary]:
        """Find ``method`` on ``cls`` or its (resolvable) bases, DFS."""
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            cur = stack.pop(0)
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            fn = self.functions.get(f"{cur.qualname}.{method}")
            if fn is not None:
                return fn
            for base in cur.bases:
                resolved = self.resolve_class(base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    # -- call resolution ----------------------------------------------------

    def resolve_call(
        self, caller: FunctionSummary, ref: CallRef
    ) -> Optional[FunctionSummary]:
        if ref.kind == "self":
            if caller.cls is None:
                return None
            cls = self.classes.get(caller.cls)
            if cls is None:
                return None
            return self.method_on(cls, ref.method or "")
        if ref.kind == "selfattr":
            if caller.cls is None:
                return None
            cls = self.classes.get(caller.cls)
            if cls is None:
                return None
            dotted = cls.attr_types.get(ref.attr or "")
            if dotted is None:
                return None
            target_cls = self.resolve_class(dotted)
            if target_cls is None:
                return None
            return self.method_on(target_cls, ref.method or "")
        if ref.kind == "dotted" and ref.target:
            for candidate in (
                ref.target,
                # Unimported names resolve within the caller's own
                # module: ``helper()`` in repro.core.util is
                # ``repro.core.util.helper``.
                f"{caller.module}.{ref.target}",
            ):
                fn = self.functions.get(candidate)
                if fn is not None:
                    return fn
                # ``Class.method`` through an imported (or local)
                # class: split the candidate into (class, method).
                if "." in candidate:
                    head, method = candidate.rsplit(".", 1)
                    cls = self.resolve_class(head)
                    if cls is not None:
                        resolved = self.method_on(cls, method)
                        if resolved is not None:
                            return resolved
        return None


@dataclass
class CallGraph:
    """Forward and reverse edges between resolved function qualnames."""

    #: caller -> sorted callee set
    edges: Dict[str, List[str]] = field(default_factory=dict)
    #: callee -> sorted caller set
    redges: Dict[str, List[str]] = field(default_factory=dict)
    #: (caller, callee) -> first call-site line
    sites: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def add(self, caller: str, callee: str, line: int) -> None:
        self.edges.setdefault(caller, [])
        if callee not in self.edges[caller]:
            self.edges[caller].append(callee)
        self.redges.setdefault(callee, [])
        if caller not in self.redges[callee]:
            self.redges[callee].append(caller)
        key = (caller, callee)
        if key not in self.sites or line < self.sites[key]:
            self.sites[key] = line

    def finalize(self) -> None:
        for mapping in (self.edges, self.redges):
            for key in mapping:
                mapping[key] = sorted(mapping[key])

    def callees(self, qual: str) -> List[str]:
        return self.edges.get(qual, [])

    def callers(self, qual: str) -> List[str]:
        return self.redges.get(qual, [])

    def nodes(self) -> List[str]:
        return sorted(set(self.edges) | set(self.redges))


@dataclass
class Program:
    """Everything the flow rules see: table + graph + file summaries."""

    symbols: SymbolTable
    graph: CallGraph
    summaries: Dict[str, FileSummary]  # path -> summary

    def module_of_function(self, qual: str) -> Optional[str]:
        fn = self.symbols.functions.get(qual)
        return fn.module if fn is not None else None

    def file_of_function(self, qual: str) -> Optional[str]:
        fn = self.symbols.functions.get(qual)
        if fn is None:
            return None
        return self.symbols.modules.get(fn.module)


def build_program(summaries: Iterable[FileSummary]) -> Program:
    """Link summaries into a :class:`Program` (symbols + call graph)."""
    by_path = {s.path: s for s in summaries}
    table = SymbolTable(by_path.values())
    graph = CallGraph()
    for path in sorted(by_path):
        summary = by_path[path]
        for qual in sorted(summary.functions):
            fn = summary.functions[qual]
            for ref in fn.calls:
                callee = table.resolve_call(fn, ref)
                if callee is not None and callee.qualname != fn.qualname:
                    graph.add(fn.qualname, callee.qualname, ref.line)
    graph.finalize()
    return Program(symbols=table, graph=graph, summaries=by_path)
