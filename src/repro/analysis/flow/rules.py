"""The whole-program flow rules: REP010, REP011, REP012.

Unlike the per-file AST rules these evaluate against a linked
:class:`~repro.analysis.flow.callgraph.Program` plus the fixpoints in
:mod:`~repro.analysis.flow.taint` — but they emit the same
:class:`~repro.analysis.findings.Finding` objects, attributed to the
file that must change, so noqa/baseline/SARIF treat them uniformly.
Findings for one file depend only on that file's summary plus the
global analyses, which is what lets the incremental cache reuse them
per file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.callgraph import Program
from repro.analysis.flow.summaries import Event, FileSummary, FunctionSummary
from repro.analysis.flow.taint import (
    TaintInfo,
    coroutine_factories,
    module_package,
    propagate_taint,
    transitive_self_writes,
)

__all__ = [
    "FLOW_RULES",
    "FLOW_RULES_BY_ID",
    "FlowAnalyses",
    "FlowRule",
    "InterleavingRaceRule",
    "TransitiveNondeterminismRule",
    "UnawaitedCoroutineRule",
    "compute_analyses",
]

#: Packages whose entry points must stay deterministic (REP010 scope).
ENTRY_PACKAGES = {"sim", "serve", "logs", "edge"}


@dataclass
class FlowAnalyses:
    """The precomputed global fixpoints the rules share."""

    taint: Dict[str, TaintInfo]
    factories: Set[str]
    self_writes: Dict[str, Set[str]]


def compute_analyses(program: Program) -> FlowAnalyses:
    return FlowAnalyses(
        taint=propagate_taint(program),
        factories=coroutine_factories(program),
        self_writes=transitive_self_writes(program),
    )


def _norm_chain(chain: str) -> str:
    """Chain identity for read/write matching: subscript hops collapse
    onto the container (``self.d[·]`` and ``self.d`` are one state)."""
    return chain.replace("[·]", "")


def _looks_like_lock(chain: str) -> bool:
    tail = _norm_chain(chain).rsplit(".", 1)[-1].lower()
    return "lock" in tail or "mutex" in tail or "sem" in tail


class FlowRule:
    """One whole-program rule; stateless between files."""

    id: str = "REP0XX"
    name: str = "abstract-flow-rule"
    severity: Severity = Severity.ERROR

    def __init__(self, program: Program, analyses: FlowAnalyses) -> None:
        self.program = program
        self.analyses = analyses

    def findings_for_file(
        self,
        summary: FileSummary,
        snippet: Callable[[int], str],
    ) -> List[Finding]:
        raise NotImplementedError

    def _finding(
        self,
        summary: FileSummary,
        line: int,
        col: int,
        message: str,
        snippet: Callable[[int], str],
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            path=summary.path,
            line=line,
            col=col,
            message=message,
            snippet=snippet(line),
        )


class TransitiveNondeterminismRule(FlowRule):
    """REP010: a deterministic-scope function calls, through any number
    of hops, something that reads the wall clock / unseeded RNG /
    ``os.environ`` / set iteration order.

    Reported at the *boundary* call site — the call in ``sim``/``serve``/
    ``logs``/``edge`` whose callee lives outside those packages and is
    transitively tainted.  Direct in-scope sources are REP001/REP002/
    REP003's turf, except ambient-environment reads which no per-file
    rule owns: those are reported here with a one-hop chain.
    """

    id = "REP010"
    name = "transitive-nondeterminism"
    severity = Severity.ERROR

    def findings_for_file(self, summary, snippet):
        findings: List[Finding] = []
        taint = self.analyses.taint
        for qual in sorted(summary.functions):
            fn = summary.functions[qual]
            pkg = module_package(fn.module)
            if pkg not in ENTRY_PACKAGES:
                continue
            # Direct ambient-environment reads (no other rule owns them).
            for source in fn.sources:
                if source.kind == "environ":
                    findings.append(self._finding(
                        summary, source.line, 0,
                        f"`{source.detail}` read in `{pkg}/` — results "
                        "must be a pure function of (log, seed, config); "
                        "pass configuration in explicitly",
                        snippet,
                    ))
            reported: Set[str] = set()
            for ref in fn.calls:
                callee = self.program.symbols.resolve_call(fn, ref)
                if callee is None or callee.qualname in reported:
                    continue
                callee_pkg = module_package(callee.module)
                if callee_pkg in ENTRY_PACKAGES:
                    continue  # flagged at its own boundary call site
                info = taint.get(callee.qualname)
                if info is None:
                    continue
                reported.add(callee.qualname)
                chain = " -> ".join((qual,) + info.chain)
                detail = info.source.detail
                severity = (
                    Severity.WARNING if info.kind == "setiter"
                    else Severity.ERROR
                )
                findings.append(self._finding(
                    summary, ref.line, ref.col,
                    f"call into `{callee.qualname}()` is transitively "
                    f"nondeterministic via {chain} -> {detail} — thread "
                    "a SimClock / seeded Generator / explicit config "
                    "through instead",
                    snippet, severity,
                ))
        return findings


class InterleavingRaceRule(FlowRule):
    """REP011: asyncio interleaving race — shared state (``self.*`` or
    ``nonlocal``) read before an ``await`` and written after it in the
    same function, or written by a callee reachable across the await,
    without one ``async with`` lock span covering both accesses.

    Between the stale read and the late write every other task gets to
    run; under :class:`~repro.serve.vclock.VirtualTimeLoop` the
    interleaving is deterministic but still *a different order than the
    serial one* — exactly what the equivalence gates cannot tolerate.
    """

    id = "REP011"
    name = "await-interleaving-race"
    severity = Severity.ERROR

    def findings_for_file(self, summary, snippet):
        findings: List[Finding] = []
        for qual in sorted(summary.functions):
            fn = summary.functions[qual]
            if not fn.is_async or not fn.events:
                continue
            findings.extend(self._check_function(summary, fn, snippet))
        return findings

    def _check_function(
        self, summary: FileSummary, fn: FunctionSummary,
        snippet: Callable[[int], str],
    ) -> List[Finding]:
        reads: Dict[str, List[Event]] = {}
        writes: Dict[str, List[Event]] = {}
        awaits: List[Event] = []
        display: Dict[str, str] = {}
        for event in fn.events:
            if event.op == "await":
                awaits.append(event)
                continue
            key = _norm_chain(event.chain)
            if _looks_like_lock(key):
                continue
            display.setdefault(key, event.chain)
            (reads if event.op == "read" else writes).setdefault(
                key, []
            ).append(event)
        if not awaits:
            return []
        # Interprocedural: an await of self.m() that transitively
        # writes self.X acts as a write event on self.X at the await.
        for event in awaits:
            ref = event.ref
            if ref is None or ref.kind != "self" or fn.cls is None:
                continue
            callee = self.program.symbols.resolve_call(fn, ref)
            if callee is None:
                continue
            for attr in sorted(
                self.analyses.self_writes.get(callee.qualname, ())
            ):
                key = f"self.{attr}"
                if _looks_like_lock(key):
                    continue
                display.setdefault(key, key)
                writes.setdefault(key, []).append(Event(
                    "write", event.pos, event.line, key, event.locks,
                    regions=event.regions,
                ))
        out: List[Finding] = []
        for key in sorted(set(reads) & set(writes)):
            hit = self._race(reads[key], writes[key], awaits)
            if hit is None:
                continue
            read, awaited, write = hit
            via = (
                "" if write.line != awaited.line
                else " (via the awaited callee)"
            )
            out.append(self._finding(
                summary, write.line, 0,
                f"`{display[key]}` is read (line {read.line}) before "
                f"`await` (line {awaited.line}) and written"
                f"{via} after it — another task can interleave at the "
                "await and this write clobbers state computed from a "
                "stale read; cover both accesses with one "
                "`async with lock:` span or re-read after the await",
                snippet,
            ))
        return out

    @staticmethod
    def _race(
        reads: List[Event], writes: List[Event], awaits: List[Event]
    ) -> Optional[Tuple[Event, Event, Event]]:
        for write in writes:
            if write.rmw:
                # AugAssign rereads its operand in the same statement —
                # the stored value derives from fresh state, not the
                # pre-await read.
                continue
            wregions = set(write.regions)
            for awaited in awaits:
                if awaited.pos > write.pos:
                    continue
                if not set(awaited.regions) <= wregions:
                    # The await sits inside a branch that returns or
                    # raises: no execution path passes through it and
                    # then reaches this write.
                    continue
                for read in reads:
                    if read.pos >= awaited.pos:
                        continue
                    if not set(read.regions) <= wregions:
                        continue  # read only happens on an exited path
                    if set(read.locks) & set(write.locks):
                        continue  # one lock span covers both
                    if any(
                        read.pos < w.pos < awaited.pos
                        and set(w.regions) <= set(awaited.regions)
                        for w in writes
                    ):
                        # The function already wrote the chain between
                        # the read and the await: the check-then-act
                        # window closed before suspension, and the late
                        # write continues an owned protocol (register /
                        # deregister), not a stale-read store.
                        continue
                    return read, awaited, write
        return None


class UnawaitedCoroutineRule(FlowRule):
    """REP012: a coroutine call whose result escapes unawaited — the
    result of calling an ``async def`` (or, interprocedurally, a
    function that *returns* a bare coroutine) is discarded as a bare
    expression statement or parked in a never-read local.

    The coroutine never runs; exceptions inside it are silently lost.
    Await it, hand it to ``asyncio.gather``/``wait``, or retain it via
    ``create_task`` (REP005 then checks the task is kept).
    """

    id = "REP012"
    name = "escaping-unawaited-coroutine"
    severity = Severity.ERROR

    def findings_for_file(self, summary, snippet):
        findings: List[Finding] = []
        factories = self.analyses.factories
        for qual in sorted(summary.functions):
            fn = summary.functions[qual]
            for use in fn.call_uses:
                if use.usage not in ("discarded", "dead"):
                    continue
                callee = self.program.symbols.resolve_call(fn, use.ref)
                if callee is None:
                    continue
                if not (callee.is_async or callee.qualname in factories):
                    continue
                how = (
                    "discarded as a bare statement"
                    if use.usage == "discarded"
                    else "assigned to a local that is never used"
                )
                kind = (
                    "coroutine" if callee.is_async
                    else "bare coroutine (returned unawaited by the callee)"
                )
                findings.append(self._finding(
                    summary, use.ref.line, use.ref.col,
                    f"{kind} from `{callee.qualname}()` is {how} — it "
                    "never runs and its exceptions are lost; `await` it, "
                    "gather it, or retain it via `create_task`",
                    snippet,
                ))
        return findings


FLOW_RULES = [
    TransitiveNondeterminismRule,   # REP010
    InterleavingRaceRule,           # REP011
    UnawaitedCoroutineRule,         # REP012
]

FLOW_RULES_BY_ID = {rule.id: rule for rule in FLOW_RULES}


def _register() -> None:
    """Fold REP010-REP012 into the shared display registry so stats
    tables, SARIF metadata and ``--select`` validation see one uniform
    id space (imported here, not from the rules package, to avoid an
    import cycle through the summaries' source tables)."""
    from repro.analysis.rules import RULES_BY_ID

    for rule in FLOW_RULES:
        RULES_BY_ID.setdefault(rule.id, rule)


_register()
