"""Interprocedural fixpoints over the call graph.

Three worklist analyses, all deterministic by construction (sorted
worklists, shortest-then-lexicographic chain tie-breaks):

* :func:`propagate_taint` — which functions transitively reach a
  nondeterminism source, and by what call chain (REP010's message).
* :func:`coroutine_factories` — sync functions whose return value is a
  bare coroutine (``return fetch()`` with ``fetch`` async), so callers
  discarding their result leak an unawaited coroutine (REP012).
* :func:`transitive_self_writes` — per method, the ``self.*`` attrs
  written by the method or anything it reaches through same-class
  ``self.m()`` calls (REP011's callee-across-the-await half).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import Program
from repro.analysis.flow.summaries import Source

__all__ = [
    "TaintInfo",
    "coroutine_factories",
    "propagate_taint",
    "transitive_self_writes",
]


@dataclass
class TaintInfo:
    """Why a function is transitively nondeterministic.

    ``chain`` lists function qualnames from this function down to the
    one containing the source; ``source`` is the source itself.
    """

    chain: Tuple[str, ...]
    source: Source

    @property
    def kind(self) -> str:
        return self.source.kind

    def describe(self) -> str:
        hops = " -> ".join(self.chain)
        return f"{hops} -> {self.source.detail}"


def _best_source(sources: List[Source]) -> Source:
    """Deterministic representative source: hard kinds first, then
    source order."""
    hard = [s for s in sources if s.kind != "setiter"]
    pool = hard or sources
    return min(pool, key=lambda s: (s.line, s.kind, s.detail))


def propagate_taint(program: Program) -> Dict[str, TaintInfo]:
    """Dijkstra-style propagation from direct sources up the reverse
    call graph; the recorded chain is the shortest (then
    lexicographically smallest) path to *a* source.

    Functions whose only sources are ``setiter`` stay distinguishable:
    the :class:`TaintInfo` carries the source kind, and the rule maps
    it to a warning rather than an error.
    """
    best: Dict[str, TaintInfo] = {}
    heap: List[Tuple[int, Tuple[str, ...], str]] = []
    for qual in sorted(program.symbols.functions):
        fn = program.symbols.functions[qual]
        if fn.sources:
            source = _best_source(fn.sources)
            info = TaintInfo(chain=(qual,), source=source)
            best[qual] = info
            heapq.heappush(heap, (1, (qual,), qual))
    while heap:
        length, chain, qual = heapq.heappop(heap)
        current = best.get(qual)
        if current is None or current.chain != chain:
            continue  # superseded by a better path
        for caller in program.graph.callers(qual):
            cand_chain = (caller,) + chain
            existing = best.get(caller)
            if existing is not None and (
                (len(existing.chain), existing.chain)
                <= (len(cand_chain), cand_chain)
            ):
                continue
            best[caller] = TaintInfo(
                chain=cand_chain, source=best[qual].source
            )
            heapq.heappush(heap, (len(cand_chain), cand_chain, caller))
    return best


def coroutine_factories(program: Program) -> Set[str]:
    """Functions returning a bare (unawaited) coroutine, to fixpoint.

    Seed: any function with a ``returned`` call-use resolving to an
    ``async def``.  Iterate: returning a call to a known factory also
    makes a factory.  Yielded coroutines count too (generators of
    coroutines handed to a gather are fine — the *call sites* decide).
    """
    factories: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for qual in sorted(program.symbols.functions):
            if qual in factories:
                continue
            fn = program.symbols.functions[qual]
            for use in fn.call_uses:
                if use.usage not in ("returned", "yielded"):
                    continue
                callee = program.symbols.resolve_call(fn, use.ref)
                if callee is None:
                    continue
                if callee.is_async or callee.qualname in factories:
                    factories.add(qual)
                    changed = True
                    break
    return factories


def transitive_self_writes(program: Program) -> Dict[str, Set[str]]:
    """Method qualname -> ``self.*`` attrs written transitively.

    Only ``self.m()`` edges within the same class (and its resolvable
    bases) propagate — a write through another object's method is that
    object's business, not this receiver's.
    """
    writes: Dict[str, Set[str]] = {}
    methods = [
        (qual, fn) for qual, fn in sorted(
            program.symbols.functions.items()
        ) if fn.cls is not None
    ]
    for qual, fn in methods:
        writes[qual] = set(fn.writes_self_attrs)
    changed = True
    while changed:
        changed = False
        for qual, fn in methods:
            for ref in fn.calls:
                if ref.kind != "self":
                    continue
                callee = program.symbols.resolve_call(fn, ref)
                if callee is None or callee.cls is None:
                    continue
                extra = writes.get(callee.qualname, set())
                if not extra <= writes[qual]:
                    writes[qual] |= extra
                    changed = True
    return writes


def reachable_self_writes(
    program: Program,
    writes: Dict[str, Set[str]],
    qual: str,
) -> Set[str]:
    """Attrs a specific awaited method may write (itself or via
    same-class callees) — convenience wrapper with a safe default."""
    return writes.get(qual, set())


def module_package(module: str) -> Optional[str]:
    """``repro.sim.replay`` -> ``sim``; top-level ``repro.cli`` ->
    ``cli``; non-repro modules -> ``None``."""
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return "__init__"
    return parts[1]
