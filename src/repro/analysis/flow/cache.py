"""Content-fingerprinted incremental cache for the flow layer.

Two things are cached per file, under one JSON document:

* the :class:`~repro.analysis.flow.summaries.FileSummary` — valid
  whenever the file's own digest matches (summaries are a pure
  function of the file text);
* the file's flow *findings* — valid only when, additionally, the
  digest of every transitive call-graph dependency matches what it was
  when the findings were computed (taint and factory facts flow across
  files, so a change anywhere in the dependency closure invalidates
  transitively), and the active flow-rule set is identical.

Dependencies are tracked at *module* granularity, including modules
that were absent at computation time (recorded with a ``null`` digest):
if ``repro.core.util`` did not exist and now does, every file that
referenced it re-analyzes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.summaries import FileSummary

__all__ = ["DEFAULT_CACHE_PATH", "FlowCache", "digest_text"]

DEFAULT_CACHE_PATH = ".repro_flow_cache.json"

SCHEMA_VERSION = 1


def digest_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


def _finding_to_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "rule": finding.rule,
        "severity": finding.severity.value,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "snippet": finding.snippet,
    }


def _finding_from_dict(doc: Dict[str, Any]) -> Finding:
    return Finding(
        rule=doc["rule"],
        severity=Severity(doc["severity"]),
        path=doc["path"],
        line=doc["line"],
        col=doc["col"],
        message=doc["message"],
        snippet=doc.get("snippet", ""),
    )


class FlowCache:
    """On-disk store, loaded once per run and rewritten atomically."""

    def __init__(self, path: Optional[str] = DEFAULT_CACHE_PATH) -> None:
        self.path = path
        #: file path -> cache entry (raw dicts; see module docstring)
        self.entries: Dict[str, Dict[str, Any]] = {}
        self.loaded = False
        if path is not None and os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as fh:
                    doc = json.load(fh)
                if (
                    isinstance(doc, dict)
                    and doc.get("schema_version") == SCHEMA_VERSION
                    and isinstance(doc.get("files"), dict)
                ):
                    self.entries = doc["files"]
                    self.loaded = True
            except (OSError, ValueError):
                self.entries = {}  # corrupt cache == cold cache

    # -- summaries ----------------------------------------------------------

    def summary_for(self, path: str, digest: str) -> Optional[FileSummary]:
        entry = self.entries.get(path)
        if entry is None or entry.get("digest") != digest:
            return None
        try:
            return FileSummary.from_dict(entry["summary"])
        except (KeyError, TypeError):
            return None

    # -- findings -----------------------------------------------------------

    def findings_valid(
        self,
        path: str,
        digest: str,
        module_deps: Dict[str, Optional[str]],
        rule_ids: List[str],
    ) -> bool:
        entry = self.entries.get(path)
        if entry is None or entry.get("digest") != digest:
            return False
        if entry.get("rules") != rule_ids:
            return False
        return entry.get("module_deps") == {
            mod: dep for mod, dep in sorted(module_deps.items())
        }

    def findings_for(self, path: str) -> Optional[Dict[str, List[Finding]]]:
        entry = self.entries.get(path)
        if entry is None or "findings" not in entry:
            return None
        try:
            return {
                "findings": [
                    _finding_from_dict(d) for d in entry["findings"]
                ],
                "suppressed": [
                    _finding_from_dict(d)
                    for d in entry.get("suppressed", ())
                ],
            }
        except (KeyError, ValueError, TypeError):
            return None

    # -- writing ------------------------------------------------------------

    def store(
        self,
        summary: FileSummary,
        module_deps: Dict[str, Optional[str]],
        rule_ids: List[str],
        findings: List[Finding],
        suppressed: List[Finding],
    ) -> None:
        self.entries[summary.path] = {
            "digest": summary.digest,
            "summary": summary.to_dict(),
            "module_deps": {
                mod: dep for mod, dep in sorted(module_deps.items())
            },
            "rules": rule_ids,
            "findings": [_finding_to_dict(f) for f in findings],
            "suppressed": [_finding_to_dict(f) for f in suppressed],
        }

    def prune(self, live_paths) -> None:
        """Drop entries for files no longer under analysis."""
        live = set(live_paths)
        for path in list(self.entries):
            if path not in live:
                del self.entries[path]

    def save(self) -> None:
        if self.path is None:
            return
        doc = {
            "schema_version": SCHEMA_VERSION,
            "files": {k: self.entries[k] for k in sorted(self.entries)},
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=".repro_flow_cache.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
