"""``repro lint``: run the determinism/async-safety analyzer from the CLI.

Usage::

    python -m repro lint                         # src/ benchmarks/ tests/differential/
    python -m repro lint src/repro/serve         # one subtree
    python -m repro lint --flow                  # + whole-program rules REP010-REP012
    python -m repro lint --changed               # git-diff scope + call-graph dependents
    python -m repro lint --format json           # machine-readable report
    python -m repro lint --format sarif          # SARIF 2.1.0 (GitHub code scanning)
    python -m repro lint --stats                 # findings per rule / package
    python -m repro lint --write-baseline        # grandfather current findings
    python -m repro lint --manifest-out lint.json  # lint-health run manifest

Exit-code semantics match ``repro bench-gate``: 0 clean, 1 findings
(new errors; warnings too under ``--strict``), 2 usage/input error.

The flow layer keeps an incremental cache (``--flow-cache``, default
``.repro_flow_cache.json``): a warm rerun on an unchanged tree
re-analyzes zero files, and touching one file re-analyzes exactly that
file plus its reverse call-graph dependents — ``--stats``/``--format
json`` expose the honest counts CI asserts on.
"""

from __future__ import annotations

import argparse
import collections
import json
import os
import subprocess
import sys
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline, partition
from repro.analysis.engine import Analyzer, FileReport, iter_python_files
from repro.analysis.findings import Finding, Severity

__all__ = ["lint_main"]

#: What CI gates when no explicit paths are given.
DEFAULT_PATHS = ("src", "benchmarks", "tests/differential")


def _format_table(rows: List[List[str]], headers: List[str]) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), line("-" * w for w in widths)]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def _package_of(path: str) -> str:
    parts = path.replace("\\", "/").split("/")
    if "repro" in parts:
        idx = parts.index("repro")
        if idx + 1 < len(parts) - 1:
            return f"repro.{parts[idx + 1]}"
        return "repro"
    return parts[0] if parts else path


def _stats(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    suppressed_total: int,
    files: int,
) -> Dict[str, Any]:
    per_rule: Dict[str, int] = collections.Counter()
    per_package: Dict[str, int] = collections.Counter()
    errors = warnings = 0
    for finding in new:
        per_rule[finding.rule] += 1
        per_package[_package_of(finding.path)] += 1
        if finding.severity is Severity.ERROR:
            errors += 1
        else:
            warnings += 1
    return {
        "files": files,
        "findings": len(new),
        "errors": errors,
        "warnings": warnings,
        "baselined": len(baselined),
        "suppressed": suppressed_total,
        "per_rule": dict(sorted(per_rule.items())),
        "per_package": dict(sorted(per_package.items())),
    }


def _print_stats(stats: Dict[str, Any]) -> None:
    from repro.analysis.rules import RULES_BY_ID

    print(f"\n=== lint stats: {stats['files']} files ===")
    rule_rows = [
        [rule, RULES_BY_ID[rule].name if rule in RULES_BY_ID else "-",
         str(count)]
        for rule, count in stats["per_rule"].items()
    ]
    if rule_rows:
        print(_format_table(rule_rows, ["rule", "name", "findings"]))
    pkg_rows = [[pkg, str(n)] for pkg, n in stats["per_package"].items()]
    if pkg_rows:
        print()
        print(_format_table(pkg_rows, ["package", "findings"]))
    if not rule_rows:
        print("no findings")
    flow = stats.get("flow")
    if flow:
        print(
            f"\nflow: {flow['files']} files, "
            f"{flow['reanalyzed']} re-analyzed "
            f"({flow['summaries_reused']} summaries reused), "
            f"{flow['graph_nodes']} call-graph nodes / "
            f"{flow['graph_edges']} edges, "
            f"{flow['tainted_functions']} tainted fn(s), "
            f"{flow['wall_s']:.3f}s"
        )


def _manifest_metrics(stats: Dict[str, Any]) -> Dict[str, Any]:
    metrics: Dict[str, Any] = {
        f"lint.{key}": stats[key]
        for key in ("files", "findings", "errors", "warnings",
                    "baselined", "suppressed")
    }
    for rule, count in stats["per_rule"].items():
        metrics[f"lint.rule.{rule}"] = count
    for pkg, count in stats["per_package"].items():
        metrics[f"lint.package.{pkg}"] = count
    flow = stats.get("flow")
    if flow:
        for key in ("files", "reanalyzed", "summaries_reused",
                    "summaries_computed", "graph_nodes", "graph_edges",
                    "wall_s"):
            metrics[f"lint.flow.{key}"] = flow[key]
    return metrics


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST + whole-program determinism & async-safety "
        "analyzer (project rules REP001-REP012).",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files/directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default text; sarif is SARIF 2.1.0 for "
        "GitHub code scanning)",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="run the whole-program flow rules (REP010-REP012): "
        "call-graph taint, await-interleaving races, escaping "
        "unawaited coroutines",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only files changed per git (vs --changed-base, "
        "default HEAD) plus their reverse call-graph dependents",
    )
    parser.add_argument(
        "--changed-base", metavar="REF", default="HEAD",
        help="git ref to diff against for --changed (default HEAD: "
        "staged + unstaged + untracked)",
    )
    parser.add_argument(
        "--flow-cache", metavar="PATH", default=None,
        help="incremental flow-cache file (default "
        ".repro_flow_cache.json)",
    )
    parser.add_argument(
        "--no-flow-cache", action="store_true",
        help="disable the incremental cache: every file re-analyzes",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=DEFAULT_BASELINE,
        help=f"committed baseline file (default {DEFAULT_BASELINE}; "
        "missing file = empty baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file: every finding counts",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current unsuppressed findings to --baseline and exit 0 "
        "(edit the file to add a `reason` per entry)",
    )
    parser.add_argument(
        "--select", action="append", metavar="RULES",
        help="comma-separated rule ids/names to run (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="RULES",
        help="comma-separated rule ids/names to skip (repeatable)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings also fail the run (default: only errors do)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print a findings-per-rule / per-package summary",
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="write a lint-health run manifest (counts per rule/package)",
    )
    return parser


def _split_specs(specs: Optional[List[str]]) -> Optional[List[str]]:
    if specs is None:
        return None
    out: List[str] = []
    for spec in specs:
        out.extend(s.strip() for s in spec.split(",") if s.strip())
    return out


def _git_changed_files(base: str) -> Optional[Set[str]]:
    """Real paths of files changed vs ``base`` plus untracked files,
    or ``None`` when git is unavailable / not a repository."""
    changed: Set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=True,
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        changed.update(
            os.path.realpath(line.strip())
            for line in proc.stdout.splitlines() if line.strip()
        )
    return changed


def _public_flow_stats(flow_stats: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in flow_stats.items() if not k.startswith("_")}


def _tool_version() -> str:
    """The installed distribution version, without importing the
    ``repro`` facade (layer 5 — off-limits from the analysis layer)."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        return "0"


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    select = _split_specs(args.select)
    ignore = _split_specs(args.ignore)

    # One uniform id space for --select/--ignore validation: the AST
    # rules plus (importing registers them) the flow rules.
    from repro.analysis.flow.rules import FLOW_RULES
    from repro.analysis.rules import ALL_RULES

    flow_names = {r.id for r in FLOW_RULES} | {r.name for r in FLOW_RULES}
    known = flow_names | {r.id for r in ALL_RULES} | {
        r.name for r in ALL_RULES
    }
    for spec, label in ((select, "select"), (ignore, "ignore")):
        unknown = set(spec or ()) - known
        if unknown:
            print(
                f"repro lint: unknown rule(s) in --{label}: "
                f"{sorted(unknown)}; known: "
                f"{sorted(r.id for r in ALL_RULES) + sorted(r.id for r in FLOW_RULES)}",
                file=sys.stderr,
            )
            return 2
    ast_select = (
        None if select is None
        else [s for s in select if s not in flow_names]
    )
    ast_ignore = (
        None if ignore is None
        else [s for s in ignore if s not in flow_names]
    )
    analyzer = Analyzer(select=ast_select, ignore=ast_ignore)
    if select is not None and not analyzer.rules and not (
        set(select) & flow_names
    ):
        print("repro lint: --select matched no rules", file=sys.stderr)
        return 2

    paths = args.paths or list(DEFAULT_PATHS)
    universe = list(iter_python_files(paths))
    if not universe:
        print(f"repro lint: no python files under {paths}", file=sys.stderr)
        return 2

    run_flow = args.flow or args.changed
    flow_result = None
    flow_stats: Optional[Dict[str, Any]] = None
    if run_flow:
        from repro.analysis.engine import _display_path
        from repro.analysis.flow.cache import (
            DEFAULT_CACHE_PATH,
            FlowCache,
        )
        from repro.analysis.flow.engine import FlowEngine

        cache = None
        if not args.no_flow_cache:
            cache = FlowCache(args.flow_cache or DEFAULT_CACHE_PATH)
        flow_engine = FlowEngine(
            select=select, ignore=ignore, cache=cache
        )
        flow_result = flow_engine.run(
            [_display_path(p) for p in universe]
        )
        flow_stats = _public_flow_stats(flow_result.stats)

    # --changed: narrow the reported set to git-changed files plus
    # their reverse call-graph dependents.  The flow pass above still
    # saw the whole universe — whole-program facts need it — but only
    # the selected files' findings are reported.
    selected = list(universe)
    if args.changed:
        changed = _git_changed_files(args.changed_base)
        if changed is None:
            print(
                "repro lint: --changed requires git (repository + "
                "binary); run without --changed",
                file=sys.stderr,
            )
            return 2
        selected = [
            p for p in universe if os.path.realpath(p) in changed
        ]
        if flow_result is not None and selected:
            from repro.analysis.engine import _display_path

            display_selected = {_display_path(p) for p in selected}
            dependents = flow_result.dependents_of(display_selected)
            extra = sorted(
                dependents - display_selected
            )
            by_display = {
                _display_path(p): p for p in universe
            }
            selected.extend(
                by_display[d] for d in extra if d in by_display
            )
        if not selected:
            print(
                "repro lint: no changed python files under "
                f"{paths} (base {args.changed_base})"
            )
            return 0

    reports: List[FileReport] = [
        analyzer.analyze_file(p) for p in iter_python_files(selected)
    ]
    all_findings = [f for r in reports for f in r.findings]
    suppressed_total = sum(len(r.suppressed) for r in reports)

    if args.flow and flow_result is not None:
        reported_paths = {r.path for r in reports}
        for path in sorted(flow_result.reports):
            if path not in reported_paths:
                continue
            flow_report = flow_result.reports[path]
            all_findings.extend(flow_report.findings)
            suppressed_total += len(flow_report.suppressed)
        all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if args.write_baseline:
        baseline = Baseline.from_findings(all_findings)
        path = baseline.write(args.baseline)
        print(
            f"repro lint: wrote {len(baseline)} finding(s) to {path} — "
            "add a `reason` to each entry explaining why it is deliberate"
        )
        return 0

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(args.baseline)
        except (ValueError, json.JSONDecodeError, OSError) as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    new, grandfathered, stale = partition(all_findings, baseline)
    if args.changed:
        # A scoped run sees only a slice of the tree: baseline entries
        # for unselected files look "stale" but are not.
        stale = []

    stats = _stats(new, grandfathered, suppressed_total, files=len(reports))
    if flow_stats is not None:
        stats["flow"] = flow_stats
    failing = stats["errors"] + (stats["warnings"] if args.strict else 0)
    exit_code = 1 if failing else 0

    if args.manifest_out:
        from repro.obs.manifest import ManifestRecorder

        recorder = ManifestRecorder(
            "lint",
            config={
                "paths": list(paths),
                "strict": args.strict,
                "flow": bool(args.flow),
                "changed": bool(args.changed),
                "baseline": None if args.no_baseline else args.baseline,
                "rules": [r.id for r in analyzer.rules] + (
                    sorted(flow_stats["rules"]) if args.flow and flow_stats
                    else []
                ),
            },
        )
        with recorder:
            for key, value in _manifest_metrics(stats).items():
                if isinstance(value, (int, float, str, bool)):
                    recorder.add_metric(key, value)
        recorder.manifest.write(args.manifest_out)

    if args.format == "sarif":
        from repro.analysis.sarif import to_sarif

        active_rules = list(analyzer.rules) + (
            list(FLOW_RULES) if args.flow else []
        )
        doc = to_sarif(
            new, grandfathered, rules=active_rules,
            tool_version=_tool_version(),
        )
        print(json.dumps(doc, indent=2, sort_keys=True))
        if args.manifest_out:
            print(f"wrote lint manifest to {args.manifest_out}",
                  file=sys.stderr)
        return exit_code

    if args.format == "json":
        doc = {
            "version": 1,
            "stats": stats,
            "findings": [f.to_dict() for f in new],
            "baselined": [f.to_dict() for f in grandfathered],
            "stale_baseline": stale,
            "exit_code": exit_code,
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        if args.manifest_out:
            print(f"wrote lint manifest to {args.manifest_out}",
                  file=sys.stderr)
        return exit_code

    for finding in new:
        print(finding.format())
    for entry in stale:
        print(
            f"stale baseline entry ({entry.get('rule', '?')} "
            f"{entry.get('path', '?')}): violation no longer present — "
            f"delete it from {args.baseline}",
        )
    if args.stats:
        _print_stats(stats)
    print(
        f"repro lint: {stats['files']} files, {stats['errors']} error(s), "
        f"{stats['warnings']} warning(s) "
        f"({suppressed_total} suppressed inline, "
        f"{stats['baselined']} baselined, {len(stale)} stale baseline)"
    )
    if args.manifest_out:
        print(f"wrote lint manifest to {args.manifest_out}")
    return exit_code


if __name__ == "__main__":
    sys.exit(lint_main())
