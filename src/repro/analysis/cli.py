"""``repro lint``: run the determinism/async-safety analyzer from the CLI.

Usage::

    python -m repro lint                         # src/ benchmarks/ tests/differential/
    python -m repro lint src/repro/serve         # one subtree
    python -m repro lint --format json           # machine-readable report
    python -m repro lint --stats                 # findings per rule / package
    python -m repro lint --write-baseline        # grandfather current findings
    python -m repro lint --manifest-out lint.json  # lint-health run manifest

Exit-code semantics match ``repro bench-gate``: 0 clean, 1 findings
(new errors; warnings too under ``--strict``), 2 usage/input error.
"""

from __future__ import annotations

import argparse
import collections
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.baseline import DEFAULT_BASELINE, Baseline, partition
from repro.analysis.engine import Analyzer, FileReport
from repro.analysis.findings import Finding, Severity

__all__ = ["lint_main"]

#: What CI gates when no explicit paths are given.
DEFAULT_PATHS = ("src", "benchmarks", "tests/differential")


def _format_table(rows: List[List[str]], headers: List[str]) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    out = [line(headers), line("-" * w for w in widths)]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def _package_of(path: str) -> str:
    parts = path.replace("\\", "/").split("/")
    if "repro" in parts:
        idx = parts.index("repro")
        if idx + 1 < len(parts) - 1:
            return f"repro.{parts[idx + 1]}"
        return "repro"
    return parts[0] if parts else path


def _stats(
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    suppressed_total: int,
    files: int,
) -> Dict[str, Any]:
    per_rule: Dict[str, int] = collections.Counter()
    per_package: Dict[str, int] = collections.Counter()
    errors = warnings = 0
    for finding in new:
        per_rule[finding.rule] += 1
        per_package[_package_of(finding.path)] += 1
        if finding.severity is Severity.ERROR:
            errors += 1
        else:
            warnings += 1
    return {
        "files": files,
        "findings": len(new),
        "errors": errors,
        "warnings": warnings,
        "baselined": len(baselined),
        "suppressed": suppressed_total,
        "per_rule": dict(sorted(per_rule.items())),
        "per_package": dict(sorted(per_package.items())),
    }


def _print_stats(stats: Dict[str, Any]) -> None:
    from repro.analysis.rules import RULES_BY_ID

    print(f"\n=== lint stats: {stats['files']} files ===")
    rule_rows = [
        [rule, RULES_BY_ID[rule].name if rule in RULES_BY_ID else "-",
         str(count)]
        for rule, count in stats["per_rule"].items()
    ]
    if rule_rows:
        print(_format_table(rule_rows, ["rule", "name", "findings"]))
    pkg_rows = [[pkg, str(n)] for pkg, n in stats["per_package"].items()]
    if pkg_rows:
        print()
        print(_format_table(pkg_rows, ["package", "findings"]))
    if not rule_rows:
        print("no findings")


def _manifest_metrics(stats: Dict[str, Any]) -> Dict[str, Any]:
    metrics: Dict[str, Any] = {
        f"lint.{key}": stats[key]
        for key in ("files", "findings", "errors", "warnings",
                    "baselined", "suppressed")
    }
    for rule, count in stats["per_rule"].items():
        metrics[f"lint.rule.{rule}"] = count
    for pkg, count in stats["per_package"].items():
        metrics[f"lint.package.{pkg}"] = count
    return metrics


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & async-safety analyzer "
        "(project-specific rules REP001-REP008).",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files/directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=DEFAULT_BASELINE,
        help=f"committed baseline file (default {DEFAULT_BASELINE}; "
        "missing file = empty baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file: every finding counts",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current unsuppressed findings to --baseline and exit 0 "
        "(edit the file to add a `reason` per entry)",
    )
    parser.add_argument(
        "--select", action="append", metavar="RULES",
        help="comma-separated rule ids/names to run (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="RULES",
        help="comma-separated rule ids/names to skip (repeatable)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings also fail the run (default: only errors do)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print a findings-per-rule / per-package summary",
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="write a lint-health run manifest (counts per rule/package)",
    )
    return parser


def _split_specs(specs: Optional[List[str]]) -> Optional[List[str]]:
    if specs is None:
        return None
    out: List[str] = []
    for spec in specs:
        out.extend(s.strip() for s in spec.split(",") if s.strip())
    return out


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        analyzer = Analyzer(
            select=_split_specs(args.select), ignore=_split_specs(args.ignore)
        )
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    paths = args.paths or list(DEFAULT_PATHS)
    reports: List[FileReport] = analyzer.run(paths)
    if not reports:
        print(f"repro lint: no python files under {paths}", file=sys.stderr)
        return 2
    all_findings = [f for r in reports for f in r.findings]
    suppressed_total = sum(len(r.suppressed) for r in reports)

    if args.write_baseline:
        baseline = Baseline.from_findings(all_findings)
        path = baseline.write(args.baseline)
        print(
            f"repro lint: wrote {len(baseline)} finding(s) to {path} — "
            "add a `reason` to each entry explaining why it is deliberate"
        )
        return 0

    if args.no_baseline:
        baseline = Baseline()
    else:
        try:
            baseline = Baseline.load(args.baseline)
        except (ValueError, json.JSONDecodeError, OSError) as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    new, grandfathered, stale = partition(all_findings, baseline)

    stats = _stats(new, grandfathered, suppressed_total, files=len(reports))
    failing = stats["errors"] + (stats["warnings"] if args.strict else 0)
    exit_code = 1 if failing else 0

    if args.manifest_out:
        from repro.obs.manifest import ManifestRecorder

        recorder = ManifestRecorder(
            "lint",
            config={
                "paths": list(paths),
                "strict": args.strict,
                "baseline": None if args.no_baseline else args.baseline,
                "rules": [r.id for r in analyzer.rules],
            },
        )
        with recorder:
            for key, value in _manifest_metrics(stats).items():
                recorder.add_metric(key, value)
        recorder.manifest.write(args.manifest_out)

    if args.format == "json":
        doc = {
            "version": 1,
            "stats": stats,
            "findings": [f.to_dict() for f in new],
            "baselined": [f.to_dict() for f in grandfathered],
            "stale_baseline": stale,
            "exit_code": exit_code,
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        if args.manifest_out:
            print(f"wrote lint manifest to {args.manifest_out}",
                  file=sys.stderr)
        return exit_code

    for finding in new:
        print(finding.format())
    for entry in stale:
        print(
            f"stale baseline entry ({entry.get('rule', '?')} "
            f"{entry.get('path', '?')}): violation no longer present — "
            f"delete it from {args.baseline}",
        )
    if args.stats:
        _print_stats(stats)
    print(
        f"repro lint: {stats['files']} files, {stats['errors']} error(s), "
        f"{stats['warnings']} warning(s) "
        f"({suppressed_total} suppressed inline, "
        f"{stats['baselined']} baselined, {len(stale)} stale baseline)"
    )
    if args.manifest_out:
        print(f"wrote lint manifest to {args.manifest_out}")
    return exit_code


if __name__ == "__main__":
    sys.exit(lint_main())
