"""repro.analysis: determinism & async-safety static analysis.

An AST-based rule engine purpose-built for this reproduction's
invariants — the properties the differential test suite can only
spot-check are enforced on every file, every commit:

=======  ========================  ==============================================
rule     name                      invariant protected
=======  ========================  ==============================================
REP001   no-wall-clock             virtual time only in sim/serve/logs/storage
REP002   seeded-rng-only           all randomness flows from explicit seeds
REP003   set-order-accumulation    float folds independent of set hash order
REP004   async-lock-safety         no await holding a sync-acquired lock;
                                   no blocking calls in async serve code
REP005   retain-created-tasks      asyncio tasks are owned, not fire-and-forget
REP006   no-mutable-defaults       no hidden shared state across calls/shards
REP007   no-exception-swallowing   shed/overload accounting cannot vanish
REP008   import-layering           dependencies flow down the package DAG
=======  ========================  ==============================================

Suppress a single finding inline with ``# repro: noqa[REP001]`` (or
ruff-shaped ``# repro: noqa: REP001``); grandfather pre-existing
deliberate findings in ``LINT_baseline.json``.  See ``repro lint
--help`` and the README "Static analysis" section.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, partition
from repro.analysis.context import FileContext, ImportMap
from repro.analysis.engine import Analyzer, FileReport, Rule
from repro.analysis.findings import Finding, Severity

__all__ = [
    "Analyzer",
    "Baseline",
    "FileContext",
    "FileReport",
    "Finding",
    "ImportMap",
    "Rule",
    "Severity",
    "partition",
]
