"""Finding and severity types for the ``repro lint`` static analyzer.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`~Finding.fingerprint` deliberately hashes the *content* of the
offending line rather than its number, so a committed baseline survives
unrelated edits that merely renumber lines (the same trick ruff and
pylint baselines use).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Finding", "Severity"]


class Severity(str, enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail the lint run; ``WARNING`` findings are
    reported but only fail under ``--strict``.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: rule identifier (``REP001`` ...).
        severity: :class:`Severity` of the owning rule.
        path: repo-relative POSIX path of the file.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        message: human-readable description with the suggested fix.
        snippet: stripped source text of the offending line (baselines
            match on this, not on the line number).
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    snippet: str = field(default="", compare=False)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching: rule + path + line text.

        Line *numbers* are excluded on purpose — inserting a docstring
        above a pre-existing finding must not churn the baseline.
        Duplicate fingerprints (the same violation text twice in one
        file) are disambiguated by the baseline's occurrence counting,
        not here.
        """
        basis = "\x1f".join((self.rule, self.path, self.snippet))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }

    def format(self) -> str:
        """gcc/ruff-style one-liner: ``path:line:col: RULE message``."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )
