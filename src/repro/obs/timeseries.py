"""Windowed time-series: fixed-width ring-buffered buckets over metrics.

The registry's instruments (:mod:`repro.obs.registry`) answer "what
happened since the process started".  Serving needs the other question —
"what is happening *now*": rolling hit rate over the last minute, p99
over the last 10 seconds, the in-flight high-watermark per second.  This
module provides that as a family of *windowed* instruments backed by one
shared mechanism:

* time is divided into fixed-width buckets (``bucket index =
  floor(t / width)``);
* each instrument keeps the newest ``n_buckets`` buckets in a ring —
  observing into a bucket the ring has rotated past resets that slot;
* queries are evaluated *at* a caller-supplied time ``t`` and cover the
  window ``(t - n_buckets * width, t]``.

Nothing here reads a wall clock: every observation and every query takes
an explicit timestamp, which the serving layer feeds from ``loop.time()``.
Under :class:`~repro.serve.vclock.VirtualTimeLoop` the timestamps are
simulated seconds, so two runs of the same workload produce identical
bucket contents — windowed telemetry is as deterministic as the replay
itself.

Instruments:

* :class:`WindowedCounter` — per-bucket sums; rolling totals and rates.
  ``observe_total`` mirrors an existing monotonic
  :class:`~repro.obs.registry.Counter` by bucketing its deltas.
* :class:`WindowedGauge` — per-bucket last value and high-watermark.
* :class:`WindowedHistogram` — per-bucket
  :class:`~repro.obs.registry.StreamingHistogram`; rolling quantiles are
  nearest-rank over the window's pooled reservoirs.
* :class:`ExemplarRing` — per-bucket top-K slow-request exemplars, each
  carrying its full segment timeline (a
  :meth:`~repro.obs.trace.TraceContext.to_dict` payload).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.registry import StreamingHistogram

__all__ = [
    "ExemplarRing",
    "TimeSeriesRegistry",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
]


class _BucketRing:
    """Ring of ``n`` fixed-width buckets addressed by timestamp.

    Subclass state lives in per-slot payloads created by ``factory``.
    A payload is recycled (re-created) whenever its slot is claimed by a
    newer bucket index, so a ring never holds data older than the
    window.
    """

    __slots__ = ("width_s", "n_buckets", "_index", "_payload", "_factory")

    def __init__(
        self, width_s: float, n_buckets: int, factory: Callable[[], Any]
    ) -> None:
        if width_s <= 0:
            raise ValueError(f"width_s must be positive, got {width_s}")
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be positive, got {n_buckets}")
        self.width_s = width_s
        self.n_buckets = n_buckets
        self._index: List[Optional[int]] = [None] * n_buckets
        self._payload: List[Any] = [None] * n_buckets
        self._factory = factory

    def bucket_index(self, t: float) -> int:
        return int(math.floor(t / self.width_s))

    def payload_at(self, t: float) -> Any:
        """The live payload for time ``t``, resetting a stale slot."""
        idx = self.bucket_index(t)
        slot = idx % self.n_buckets
        if self._index[slot] != idx:
            self._index[slot] = idx
            self._payload[slot] = self._factory()
        return self._payload[slot]

    def live(self, t: float) -> List[Tuple[int, Any]]:
        """``(bucket_index, payload)`` for buckets inside the window at
        ``t``, oldest first.  Buckets never observed are absent."""
        newest = self.bucket_index(t)
        oldest = newest - self.n_buckets + 1
        out: List[Tuple[int, Any]] = []
        for idx in range(oldest, newest + 1):
            slot = idx % self.n_buckets
            if self._index[slot] == idx:
                out.append((idx, self._payload[slot]))
        return out

    def window_bounds(self, t: float) -> Tuple[float, float]:
        """The half-open time span the window at ``t`` covers."""
        newest = self.bucket_index(t)
        return (
            (newest - self.n_buckets + 1) * self.width_s,
            (newest + 1) * self.width_s,
        )


class WindowedCounter:
    """Per-bucket event sums over a ring of fixed-width buckets."""

    def __init__(self, width_s: float = 1.0, n_buckets: int = 60) -> None:
        self._ring = _BucketRing(width_s, n_buckets, lambda: [0.0])
        self._last_total: Optional[float] = None

    @property
    def width_s(self) -> float:
        return self._ring.width_s

    @property
    def n_buckets(self) -> int:
        return self._ring.n_buckets

    def inc(self, t: float, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"increment must be non-negative, got {n}")
        self._ring.payload_at(t)[0] += n

    def observe_total(self, t: float, total: float) -> None:
        """Mirror a monotonic cumulative counter by bucketing its delta
        since the previous call (first call seeds the baseline)."""
        if self._last_total is None:
            self._last_total = total
            return
        delta = total - self._last_total
        self._last_total = total
        if delta < 0:
            raise ValueError("observe_total requires a monotonic total")
        if delta:
            self.inc(t, delta)

    def total(self, t: float) -> float:
        """Events inside the window at ``t``."""
        return sum(p[0] for _, p in self._ring.live(t))

    def rate(self, t: float) -> float:
        """Events per second over the full window span at ``t``."""
        return self.total(t) / (self._ring.width_s * self._ring.n_buckets)

    def per_bucket(self, t: float) -> List[Tuple[float, float]]:
        """``(bucket_start_s, count)`` rows, oldest first."""
        w = self._ring.width_s
        return [(idx * w, p[0]) for idx, p in self._ring.live(t)]

    def snapshot(self, t: float) -> Dict[str, Any]:
        return {
            "type": "windowed_counter",
            "window_s": self._ring.width_s * self._ring.n_buckets,
            "total": self.total(t),
            "rate": self.rate(t),
            "buckets": self.per_bucket(t),
        }


class WindowedGauge:
    """Per-bucket last value and high-watermark."""

    def __init__(self, width_s: float = 1.0, n_buckets: int = 60) -> None:
        # payload = [last, max]
        self._ring = _BucketRing(
            width_s, n_buckets, lambda: [0.0, float("-inf")]
        )

    @property
    def width_s(self) -> float:
        return self._ring.width_s

    @property
    def n_buckets(self) -> int:
        return self._ring.n_buckets

    def observe(self, t: float, value: float) -> None:
        payload = self._ring.payload_at(t)
        payload[0] = float(value)
        if value > payload[1]:
            payload[1] = float(value)

    def last(self, t: float) -> float:
        live = self._ring.live(t)
        return live[-1][1][0] if live else float("nan")

    def high_watermark(self, t: float) -> float:
        """Largest value observed anywhere in the window (nan if none)."""
        live = self._ring.live(t)
        return max(p[1] for _, p in live) if live else float("nan")

    def per_bucket(self, t: float) -> List[Tuple[float, float, float]]:
        """``(bucket_start_s, last, max)`` rows, oldest first."""
        w = self._ring.width_s
        return [(idx * w, p[0], p[1]) for idx, p in self._ring.live(t)]

    def snapshot(self, t: float) -> Dict[str, Any]:
        live = self._ring.live(t)
        return {
            "type": "windowed_gauge",
            "window_s": self._ring.width_s * self._ring.n_buckets,
            "last": self.last(t) if live else None,
            "high_watermark": self.high_watermark(t) if live else None,
            "buckets": self.per_bucket(t),
        }


#: Per-bucket reservoir size: buckets are short, so a small reservoir
#: keeps the ring cheap while window quantiles pool across buckets.
BUCKET_RESERVOIR = 256


class WindowedHistogram:
    """Per-bucket streaming histograms with rolling window quantiles."""

    def __init__(
        self,
        width_s: float = 1.0,
        n_buckets: int = 60,
        reservoir_size: int = BUCKET_RESERVOIR,
    ) -> None:
        self._ring = _BucketRing(
            width_s,
            n_buckets,
            lambda: StreamingHistogram(reservoir_size=reservoir_size),
        )

    @property
    def width_s(self) -> float:
        return self._ring.width_s

    @property
    def n_buckets(self) -> int:
        return self._ring.n_buckets

    def observe(self, t: float, value: float) -> None:
        self._ring.payload_at(t).add(value)

    def count(self, t: float) -> int:
        return sum(h.count for _, h in self._ring.live(t))

    def total(self, t: float) -> float:
        """Sum of all observed values inside the window at ``t``."""
        return sum(h.total for _, h in self._ring.live(t))

    def quantile(self, t: float, q: float) -> float:
        """Rolling percentile over the window at ``t``.

        Exact at the extremes (tracked min/max); nearest-rank over the
        pooled per-bucket reservoirs in between.  ``nan`` when empty.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        live = [h for _, h in self._ring.live(t) if h.count]
        if not live:
            return float("nan")
        if q == 0:
            return min(h.min for h in live)
        if q == 100:
            return max(h.max for h in live)
        pooled = sorted(x for h in live for x in h.samples())
        rank = max(0, math.ceil(q / 100 * len(pooled)) - 1)
        return pooled[rank]

    def mean(self, t: float) -> float:
        live = [h for _, h in self._ring.live(t) if h.count]
        if not live:
            return float("nan")
        return sum(h.total for h in live) / sum(h.count for h in live)

    def per_bucket(self, t: float) -> List[Dict[str, Any]]:
        """One summary dict per live bucket, oldest first."""
        w = self._ring.width_s
        rows = []
        for idx, h in self._ring.live(t):
            rows.append(
                {
                    "t_start": idx * w,
                    "count": h.count,
                    "mean": h.total / h.count if h.count else None,
                    "p50": h.quantile(50) if h.count else None,
                    "p99": h.quantile(99) if h.count else None,
                    "max": h.max if h.count else None,
                }
            )
        return rows

    def snapshot(self, t: float) -> Dict[str, Any]:
        n = self.count(t)
        return {
            "type": "windowed_histogram",
            "window_s": self._ring.width_s * self._ring.n_buckets,
            "count": n,
            "mean": self.mean(t) if n else None,
            "p50": self.quantile(t, 50) if n else None,
            "p99": self.quantile(t, 99) if n else None,
            "max": self.quantile(t, 100) if n else None,
            "buckets": self.per_bucket(t),
        }


class ExemplarRing:
    """Top-K slowest requests per bucket, with full segment timelines.

    Aggregates tell you *that* p99 moved; exemplars tell you *why*: each
    retained entry is the complete phase breakdown of one concrete slow
    request.  Retention is per bucket (so a quiet minute cannot be
    crowded out of the ring by a busy one) and bounded to ``k`` entries
    per bucket, kept in descending latency order.
    """

    def __init__(
        self, width_s: float = 1.0, n_buckets: int = 60, k: int = 5
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._ring = _BucketRing(width_s, n_buckets, list)

    def observe(self, t: float, latency_s: float, payload: Dict[str, Any]) -> None:
        """Offer one completed request; retained iff it is among the
        bucket's ``k`` slowest so far."""
        bucket: List[Tuple[float, Dict[str, Any]]] = self._ring.payload_at(t)
        if len(bucket) == self.k and latency_s <= bucket[-1][0]:
            return
        bucket.append((latency_s, payload))
        bucket.sort(key=lambda pair: -pair[0])
        del bucket[self.k:]

    def top(self, t: float, k: Optional[int] = None) -> List[Dict[str, Any]]:
        """The ``k`` slowest exemplars across the whole window at ``t``."""
        k = self.k if k is None else k
        entries = [
            (latency, payload)
            for _, bucket in self._ring.live(t)
            for latency, payload in bucket
        ]
        entries.sort(key=lambda pair: -pair[0])
        return [
            dict(payload, latency_s=latency) for latency, payload in entries[:k]
        ]

    def snapshot(self, t: float) -> Dict[str, Any]:
        return {
            "type": "exemplars",
            "window_s": self._ring.width_s * self._ring.n_buckets,
            "top": self.top(t),
        }


class TimeSeriesRegistry:
    """Get-or-create registry of named windowed instruments.

    All instruments share one bucket geometry so their per-bucket rows
    line up column-for-column in snapshots and the ``repro top`` view.
    """

    def __init__(self, width_s: float = 1.0, n_buckets: int = 60) -> None:
        if width_s <= 0:
            raise ValueError(f"width_s must be positive, got {width_s}")
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be positive, got {n_buckets}")
        self.width_s = width_s
        self.n_buckets = n_buckets
        self._instruments: Dict[str, Any] = {}

    @property
    def window_s(self) -> float:
        return self.width_s * self.n_buckets

    def counter(self, name: str) -> WindowedCounter:
        return self._get_or_create(
            name,
            WindowedCounter,
            lambda: WindowedCounter(self.width_s, self.n_buckets),
        )

    def gauge(self, name: str) -> WindowedGauge:
        return self._get_or_create(
            name,
            WindowedGauge,
            lambda: WindowedGauge(self.width_s, self.n_buckets),
        )

    def histogram(self, name: str) -> WindowedHistogram:
        return self._get_or_create(
            name,
            WindowedHistogram,
            lambda: WindowedHistogram(self.width_s, self.n_buckets),
        )

    def exemplars(self, name: str, k: int = 5) -> ExemplarRing:
        return self._get_or_create(
            name,
            ExemplarRing,
            lambda: ExemplarRing(self.width_s, self.n_buckets, k=k),
        )

    def _get_or_create(self, name, expected_type, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, expected_type):
            raise TypeError(
                f"series {name!r} already registered as "
                f"{type(instrument).__name__}, not {expected_type.__name__}"
            )
        return instrument

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self, t: float) -> Dict[str, Dict[str, Any]]:
        """All windowed instruments evaluated at time ``t``."""
        return {
            name: self._instruments[name].snapshot(t)
            for name in sorted(self._instruments)
        }
