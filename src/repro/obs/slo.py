"""SLO monitors with multi-window burn-rate alerting.

An SLO here is a *good-events fraction* objective, the form every
serving target in this repo reduces to:

* ``latency``   — a request is good iff it completed within
  ``threshold_s`` (sheds are bad: the user got no answer);
* ``hit_rate``  — a completed request is good iff it hit the cache;
* ``shed_rate`` — any admitted request is good, any shed is bad.

``objective`` is the required good fraction (0.99 = "99% of requests
under the latency threshold"), so the *error budget* is ``1 -
objective``.  The monitor tracks good/bad events in two rolling windows
(a long one for significance, a short one for freshness — the classic
multi-window burn-rate pattern) and computes each window's **burn
rate**::

    burn = (bad / (bad + good)) / budget

Burn 1.0 means the budget is being consumed exactly at the sustainable
rate; burn 10 means ten times too fast.  An alert fires when *both*
windows exceed ``burn_threshold`` — the long window filters blips, the
short window ends the alert promptly once the system recovers.  Alert
*transitions* (inactive -> firing) are recorded as typed
:class:`SLOAlert` events and, when a tracer is recording, emitted into
the span/event stream as ``slo_alert`` events.

Like everything in :mod:`repro.obs.timeseries`, the monitor never reads
a wall clock — timestamps come from the caller — so alert sequences are
deterministic under :class:`~repro.serve.vclock.VirtualTimeLoop`.

Policies are plain data (JSON-loadable) so CI can keep them in a file::

    {
      "burn_threshold": 2.0,
      "long_window_s": 60.0,
      "short_window_s": 5.0,
      "rules": [
        {"name": "p99-latency", "kind": "latency",
         "threshold_s": 2.0, "objective": 0.99},
        {"name": "hit-rate", "kind": "hit_rate", "objective": 0.45},
        {"name": "shed", "kind": "shed_rate", "objective": 0.95}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.timeseries import WindowedCounter

__all__ = ["SLOAlert", "SLOMonitor", "SLOPolicy", "SLORule"]

RULE_KINDS = ("latency", "hit_rate", "shed_rate", "energy", "battery_burn")


@dataclass(frozen=True)
class SLORule:
    """One good-fraction objective.

    Args:
        name: rule identifier (alert and verdict key).
        kind: ``"latency"``, ``"hit_rate"``, ``"shed_rate"``,
            ``"energy"``, or ``"battery_burn"``.
        objective: required good-events fraction in (0, 1).
        threshold_s: latency cutoff; required for ``kind="latency"``.
        threshold_j: per-request joules budget; required for
            ``kind="energy"`` (a request is good iff its attributed
            energy stays within the budget).
        threshold: battery burn cutoff as charge fraction per simulated
            day; required for ``kind="battery_burn"`` (a request is good
            iff its device's projected burn rate stays at or below it).
    """

    name: str
    kind: str
    objective: float
    threshold_s: Optional[float] = None
    threshold_j: Optional[float] = None
    threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise ValueError(
                f"rule kind must be one of {RULE_KINDS}, got {self.kind!r}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )
        if self.kind == "latency" and (
            self.threshold_s is None or self.threshold_s <= 0
        ):
            raise ValueError("latency rules need a positive threshold_s")
        if self.kind == "energy" and (
            self.threshold_j is None or self.threshold_j <= 0
        ):
            raise ValueError("energy rules need a positive threshold_j")
        if self.kind == "battery_burn" and (
            self.threshold is None or self.threshold <= 0
        ):
            raise ValueError("battery_burn rules need a positive threshold")

    @property
    def budget(self) -> float:
        """Allowed bad-events fraction."""
        return 1.0 - self.objective

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
        }
        if self.threshold_s is not None:
            out["threshold_s"] = self.threshold_s
        if self.threshold_j is not None:
            out["threshold_j"] = self.threshold_j
        if self.threshold is not None:
            out["threshold"] = self.threshold
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "SLORule":
        return cls(
            name=raw["name"],
            kind=raw["kind"],
            objective=float(raw["objective"]),
            threshold_s=(
                float(raw["threshold_s"]) if "threshold_s" in raw else None
            ),
            threshold_j=(
                float(raw["threshold_j"]) if "threshold_j" in raw else None
            ),
            threshold=(
                float(raw["threshold"]) if "threshold" in raw else None
            ),
        )


@dataclass(frozen=True)
class SLOPolicy:
    """A set of rules plus the shared alerting windows."""

    rules: Tuple[SLORule, ...]
    long_window_s: float = 60.0
    short_window_s: float = 5.0
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if not self.rules:
            raise ValueError("policy needs at least one rule")
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        if self.short_window_s <= 0 or self.long_window_s <= 0:
            raise ValueError("windows must be positive")
        if self.short_window_s > self.long_window_s:
            raise ValueError("short window must not exceed the long window")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "long_window_s": self.long_window_s,
            "short_window_s": self.short_window_s,
            "burn_threshold": self.burn_threshold,
            "rules": [r.to_dict() for r in self.rules],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "SLOPolicy":
        return cls(
            rules=tuple(SLORule.from_dict(r) for r in raw.get("rules", ())),
            long_window_s=float(raw.get("long_window_s", 60.0)),
            short_window_s=float(raw.get("short_window_s", 5.0)),
            burn_threshold=float(raw.get("burn_threshold", 2.0)),
        )

    @classmethod
    def from_json(cls, path: str) -> "SLOPolicy":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


@dataclass(frozen=True)
class SLOAlert:
    """One burn-rate alert transition (inactive -> firing)."""

    t: float
    rule: str
    kind: str
    burn_long: float
    burn_short: float
    budget: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t": self.t,
            "rule": self.rule,
            "kind": self.kind,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
            "budget": self.budget,
        }


class _RuleState:
    """Rolling and cumulative good/bad tallies for one rule."""

    __slots__ = ("rule", "long_bad", "long_total", "short_bad",
                 "short_total", "bad", "total", "firing", "alerts")

    def __init__(self, rule: SLORule, policy: SLOPolicy, width_s: float) -> None:
        self.rule = rule
        long_n = max(1, round(policy.long_window_s / width_s))
        short_n = max(1, round(policy.short_window_s / width_s))
        self.long_bad = WindowedCounter(width_s, long_n)
        self.long_total = WindowedCounter(width_s, long_n)
        self.short_bad = WindowedCounter(width_s, short_n)
        self.short_total = WindowedCounter(width_s, short_n)
        self.bad = 0
        self.total = 0
        self.firing = False
        self.alerts = 0

    def record(self, t: float, good: bool) -> None:
        self.total += 1
        self.long_total.inc(t)
        self.short_total.inc(t)
        if not good:
            self.bad += 1
            self.long_bad.inc(t)
            self.short_bad.inc(t)

    def burn(self, t: float, short: bool) -> float:
        bad = (self.short_bad if short else self.long_bad).total(t)
        total = (self.short_total if short else self.long_total).total(t)
        if total == 0:
            return 0.0
        return (bad / total) / self.rule.budget

    @property
    def bad_fraction(self) -> float:
        return self.bad / self.total if self.total else 0.0


class SLOMonitor:
    """Classify request events against a policy; alert on budget burn.

    Feed every request through :meth:`record_request`, then call
    :meth:`evaluate` periodically (the serve telemetry does so once per
    bucket).  :meth:`verdict` yields the machine-readable pass/fail
    record that lands in run manifests.
    """

    def __init__(self, policy: SLOPolicy, width_s: float = 1.0) -> None:
        if width_s <= 0:
            raise ValueError(f"width_s must be positive, got {width_s}")
        self.policy = policy
        self.width_s = width_s
        self._states = [
            _RuleState(rule, policy, width_s) for rule in policy.rules
        ]
        self.alerts: List[SLOAlert] = []
        self._t_last: float = 0.0

    # -- event intake --------------------------------------------------------

    def record_request(
        self,
        t: float,
        latency_s: Optional[float] = None,
        hit: Optional[bool] = None,
        shed: bool = False,
        energy_j: Optional[float] = None,
        battery_burn_per_day: Optional[float] = None,
    ) -> None:
        """Classify one request against every rule.

        Args:
            t: loop-clock completion (or shed) time.
            latency_s: end-to-end sojourn; ``None`` for sheds.
            hit: cache hit flag; ``None`` for sheds.
            shed: whether admission control rejected the request.
            energy_j: attributed joules of the request; ``None`` for
                sheds (a rejected request spends no radio energy) or
                when attribution is off.
            battery_burn_per_day: the device's projected charge fraction
                burned per simulated day, as of this request.
        """
        self._t_last = max(self._t_last, t)
        for state in self._states:
            kind = state.rule.kind
            if kind == "shed_rate":
                state.record(t, good=not shed)
            elif kind == "latency":
                if shed:
                    state.record(t, good=False)
                elif latency_s is not None:
                    state.record(t, good=latency_s <= state.rule.threshold_s)
            elif kind == "hit_rate":
                if not shed and hit is not None:
                    state.record(t, good=hit)
            elif kind == "energy":
                if not shed and energy_j is not None:
                    state.record(t, good=energy_j <= state.rule.threshold_j)
            elif kind == "battery_burn":
                if not shed and battery_burn_per_day is not None:
                    state.record(
                        t, good=battery_burn_per_day <= state.rule.threshold
                    )

    # -- alerting ------------------------------------------------------------

    def evaluate(self, t: float) -> List[SLOAlert]:
        """Update burn-rate alert state at ``t``; returns newly fired
        alerts (empty while an alert stays active)."""
        self._t_last = max(self._t_last, t)
        fired: List[SLOAlert] = []
        threshold = self.policy.burn_threshold
        for state in self._states:
            burn_long = state.burn(t, short=False)
            burn_short = state.burn(t, short=True)
            over = burn_long >= threshold and burn_short >= threshold
            if over and not state.firing:
                state.firing = True
                state.alerts += 1
                alert = SLOAlert(
                    t=t,
                    rule=state.rule.name,
                    kind=state.rule.kind,
                    burn_long=burn_long,
                    burn_short=burn_short,
                    budget=state.rule.budget,
                )
                self.alerts.append(alert)
                fired.append(alert)
            elif not over and state.firing:
                state.firing = False
        return fired

    # -- reporting -----------------------------------------------------------

    def status(self, t: float) -> List[Dict[str, Any]]:
        """Per-rule live view (burn rates, firing flag) at ``t``."""
        return [
            {
                "rule": s.rule.name,
                "kind": s.rule.kind,
                "budget": s.rule.budget,
                "burn_long": s.burn(t, short=False),
                "burn_short": s.burn(t, short=True),
                "bad_fraction": s.bad_fraction,
                "firing": s.firing,
                "alerts": s.alerts,
            }
            for s in self._states
        ]

    def verdict(self) -> Dict[str, Any]:
        """Machine-readable end-of-run record for the manifest.

        A rule passes iff its whole-run bad fraction stayed within
        budget *and* it never fired a burn-rate alert; the run verdict
        is the conjunction.
        """
        rules: Dict[str, Any] = {}
        passed = True
        for s in self._states:
            rule_pass = s.bad_fraction <= s.rule.budget and s.alerts == 0
            passed = passed and rule_pass
            rules[s.rule.name] = {
                "kind": s.rule.kind,
                "objective": s.rule.objective,
                "budget": s.rule.budget,
                "total": s.total,
                "bad": s.bad,
                "bad_fraction": s.bad_fraction,
                "alerts": s.alerts,
                "passed": rule_pass,
            }
        return {
            "verdict": "pass" if passed else "fail",
            "passed": passed,
            "alerts_total": len(self.alerts),
            "alerts": [a.to_dict() for a in self.alerts],
            "rules": rules,
            "policy": self.policy.to_dict(),
        }
