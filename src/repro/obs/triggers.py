"""Incident triggers for the flight recorder.

A :class:`TriggerEngine` watches the stream of events the
:class:`~repro.obs.flight.FlightRecorder` captures and decides when the
recent past constitutes an *incident* worth preserving:

* an SLO burn alert fired (``slo-alert``);
* a bucket's shed fraction crossed a spike threshold (``shed-spike``);
* a request's per-hop re-sum error exceeded tolerance
  (``hop-resum-error``) — the telescoping-segments or
  energy-components invariant broke live;
* the energy ledger's conservation error drifted past tolerance
  (``ledger-drift``);
* a manually scheduled loop time was reached (``manual``).

Firing does **not** dump immediately: the engine waits
``baseline_window_s`` of further traffic so the bundle also contains a
*trailing baseline* window to diff the incident against, then calls
:meth:`~repro.obs.flight.FlightRecorder.dump_bundle` exactly once per
incident (``max_bundles`` bounds disk usage).  All decisions are keyed
by loop-clock timestamps, so trigger times — and therefore bundles —
are deterministic under :class:`~repro.serve.vclock.VirtualTimeLoop`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = ["TriggerConfig", "TriggerEngine"]


@dataclass(frozen=True)
class TriggerConfig:
    """What fires, and how much history each bundle carries.

    Attributes:
        slo_alert: dump a bundle when any SLO burn alert fires.
        shed_spike: shed fraction of one telemetry bucket at or above
            which to fire (None disables).
        shed_spike_min_events: minimum events (completed + shed) in the
            bucket before a spike can fire — keeps one early shed in an
            almost-empty bucket from counting as an incident.
        hop_resum_tol_s: per-request segment re-sum error (seconds)
            above which to fire (None disables).
        hop_resum_tol_j: per-request energy re-sum error (joules) above
            which to fire (None disables).
        ledger_drift_j: absolute energy-ledger conservation error above
            which to fire (None disables).
        trigger_at: loop time of a manually scheduled dump (None
            disables) — the deterministic stand-in for "the operator
            pressed the capture button".
        incident_window_s: how far before the trigger the analysis
            window reaches.
        baseline_window_s: trailing post-trigger window captured before
            the dump happens.
        bundle_dir: directory bundles are written under.
        max_bundles: incidents dumped before the engine goes quiet.
    """

    slo_alert: bool = True
    shed_spike: Optional[float] = 0.5
    shed_spike_min_events: int = 16
    hop_resum_tol_s: Optional[float] = 1e-6
    hop_resum_tol_j: Optional[float] = 1e-6
    ledger_drift_j: Optional[float] = None
    trigger_at: Optional[float] = None
    incident_window_s: float = 60.0
    baseline_window_s: float = 30.0
    bundle_dir: str = "flight_bundles"
    max_bundles: int = 1

    def __post_init__(self) -> None:
        if self.incident_window_s <= 0:
            raise ValueError("incident_window_s must be positive")
        if self.baseline_window_s < 0:
            raise ValueError("baseline_window_s must be non-negative")
        if self.max_bundles < 1:
            raise ValueError("max_bundles must be at least 1")
        if self.shed_spike is not None and not 0 < self.shed_spike <= 1:
            raise ValueError("shed_spike must be in (0, 1]")


class TriggerEngine:
    """Fire-and-wait incident detection over flight-recorder events."""

    def __init__(self, config: Optional[TriggerConfig] = None) -> None:
        self.config = config or TriggerConfig()
        #: the armed trigger record waiting out its baseline window
        self.pending: Optional[Dict[str, Any]] = None
        self.dumped: List[str] = []
        self._manual_fired = False

    @property
    def exhausted(self) -> bool:
        """True once ``max_bundles`` incidents have been dumped."""
        return len(self.dumped) >= self.config.max_bundles

    # -- event hooks (called by FlightRecorder) ------------------------------

    def on_response(self, t: float, record: Dict[str, Any], flight) -> None:
        cfg = self.config
        if (
            cfg.hop_resum_tol_s is not None
            and record["hop_err_s"] > cfg.hop_resum_tol_s
        ):
            self._fire(
                t,
                "hop-resum-error",
                flight,
                {"hop_err_s": record["hop_err_s"], "trace_id": record["trace_id"]},
            )
        elif (
            cfg.hop_resum_tol_j is not None
            and record["hop_err_j"] > cfg.hop_resum_tol_j
        ):
            self._fire(
                t,
                "hop-resum-error",
                flight,
                {"hop_err_j": record["hop_err_j"], "trace_id": record["trace_id"]},
            )

    def on_alerts(self, t: float, alerts, flight) -> None:
        if self.config.slo_alert and alerts:
            self._fire(
                t,
                "slo-alert",
                flight,
                {"rules": [alert.rule for alert in alerts]},
            )

    def on_tick(self, t: float, flight, telemetry) -> None:
        cfg = self.config
        if (
            cfg.trigger_at is not None
            and t >= cfg.trigger_at
            and not self._manual_fired
        ):
            self._manual_fired = True
            self._fire(t, "manual", flight, {"trigger_at": cfg.trigger_at})
        if cfg.shed_spike is not None:
            row = flight.last_bucket()
            if row is not None:
                events = row["completed"] + row["shed"]
                if (
                    events >= cfg.shed_spike_min_events
                    and row["shed_fraction"] >= cfg.shed_spike
                ):
                    self._fire(
                        t,
                        "shed-spike",
                        flight,
                        {
                            "shed_fraction": row["shed_fraction"],
                            "events": events,
                            "reasons": row["shed_reasons"],
                        },
                    )
        if cfg.ledger_drift_j is not None:
            ledger = telemetry.energy.ledger
            drift = abs(ledger.conservation_error_j)
            if drift > cfg.ledger_drift_j:
                self._fire(t, "ledger-drift", flight, {"drift_j": drift})
        self._maybe_dump(t, flight)

    def finalize(self, t: float, flight, force: bool = False) -> None:
        """End of run: a pending trigger dumps with whatever baseline it
        accumulated; ``force=True`` dumps a manual bundle regardless."""
        if self.pending is None and force and not self.exhausted:
            self._fire(t, "manual", flight, {"forced": True})
        self._maybe_dump(t, flight, at_end=True)

    # -- internals -----------------------------------------------------------

    def _fire(
        self, t: float, kind: str, flight, detail: Dict[str, Any]
    ) -> None:
        """Arm a trigger (first one wins while a dump is pending)."""
        if self.pending is not None or self.exhausted:
            return
        record = {"kind": "trigger", "t": t, "trigger": kind, "detail": detail}
        flight.record_trigger(record)
        self.pending = record

    def _maybe_dump(self, t: float, flight, at_end: bool = False) -> None:
        pending = self.pending
        if pending is None:
            return
        t0 = pending["t"]
        if not at_end and t < t0 + self.config.baseline_window_s:
            return
        t_end = min(t, t0 + self.config.baseline_window_s)
        windows = {
            "incident": [max(0.0, t0 - self.config.incident_window_s), t0],
            "baseline": [t0, max(t0, t_end)],
        }
        path = flight.dump_bundle(self.config.bundle_dir, pending, windows)
        self.dumped.append(path)
        self.pending = None
