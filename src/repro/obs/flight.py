"""Always-on flight recorder: bounded black-box capture for the serve stack.

The live telemetry plane answers "what is happening"; this module
answers "what *was* happening when it went wrong".  A
:class:`FlightRecorder` rides along with a
:class:`~repro.serve.telemetry.ServeTelemetry` and keeps bounded ring
buffers of the recent past:

* completed request records (segment breakdown, tier, energy, per-request
  hop re-sum error);
* shed events with their typed reasons;
* per-bucket window rows (counts, shed fractions by reason, sojourn and
  queue-wait extremes, energy-ledger deltas);
* per-edge-node slice stats and propagation flushes;
* SLO burn alerts.

Everything is keyed by loop-clock timestamps the serve layer passes in,
so under :class:`~repro.serve.vclock.VirtualTimeLoop` two runs with the
same seed capture byte-identical histories.  Memory is strictly bounded:
every buffer is a ``deque(maxlen=...)`` and the per-bucket accumulator
is O(number of shed reasons).

When a :class:`~repro.obs.triggers.TriggerEngine` decides an incident
happened, :meth:`FlightRecorder.dump_bundle` atomically writes a
versioned *postmortem bundle* — ``events.jsonl`` (time-sorted records)
plus ``manifest.json`` (git SHA, config, seed, trigger, analysis
windows) — into a fresh directory, renamed into place only once fully
written.  ``repro postmortem`` (:mod:`repro.obs.postmortem`) consumes
these bundles.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import threading
from collections import deque
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

from repro.obs.manifest import git_sha

__all__ = [
    "BUNDLE_VERSION",
    "EVENTS_FILENAME",
    "MANIFEST_FILENAME",
    "FlightRecorder",
]

#: Bundle schema version (bumped on any incompatible record change).
BUNDLE_VERSION = 1
EVENTS_FILENAME = "events.jsonl"
MANIFEST_FILENAME = "manifest.json"

#: Default ring capacities.  Requests dominate; at ~300 bytes/record the
#: defaults bound the recorder to a few MB regardless of offered load.
DEFAULT_REQUEST_RING = 8192
DEFAULT_SHED_RING = 8192
DEFAULT_BUCKET_RING = 600
DEFAULT_EDGE_RING = 600
DEFAULT_ALERT_RING = 256
DEFAULT_FLUSH_RING = 1024

#: Sort order for records sharing a timestamp in the dumped bundle.
_KIND_ORDER = {
    "bucket": 0,
    "edge": 1,
    "flush": 2,
    "alert": 3,
    "trigger": 4,
    "request": 5,
    "shed": 6,
}


def _json_safe(value: Any) -> Any:
    """NaN/inf -> None so bundles stay strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class _BucketAccumulator:
    """Per-bucket counters reset on every telemetry tick (O(1) memory)."""

    __slots__ = (
        "completed",
        "hits",
        "shed",
        "shed_reasons",
        "sojourn_sum",
        "sojourn_max",
        "queue_wait_max",
        "hop_err_s_max",
        "hop_err_j_max",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.completed = 0
        self.hits = 0
        self.shed = 0
        self.shed_reasons: Dict[str, int] = {}
        self.sojourn_sum = 0.0
        self.sojourn_max = 0.0
        self.queue_wait_max = 0.0
        self.hop_err_s_max = 0.0
        self.hop_err_j_max = 0.0

    def row(self) -> Dict[str, Any]:
        events = self.completed + self.shed
        return {
            "completed": self.completed,
            "hits": self.hits,
            "shed": self.shed,
            "shed_reasons": dict(self.shed_reasons),
            "shed_fraction": self.shed / events if events else 0.0,
            "sojourn_mean_s": (
                self.sojourn_sum / self.completed if self.completed else None
            ),
            "sojourn_max_s": self.sojourn_max if self.completed else None,
            "queue_wait_max_s": (
                self.queue_wait_max if self.completed else None
            ),
            "hop_err_s_max": self.hop_err_s_max,
            "hop_err_j_max": self.hop_err_j_max,
        }


class FlightRecorder:
    """Bounded black-box capture of the serving stack's recent past.

    Args:
        config: run configuration echoed into bundle manifests (the
            load-test flags, typically).
        seed: workload seed echoed into bundle manifests.
        triggers: optional :class:`~repro.obs.triggers.TriggerEngine`
            (duck-typed) consulted on every response/alert/tick.
        request_ring / shed_ring / bucket_ring / edge_ring / alert_ring /
            flush_ring: per-buffer capacities.

    Thread-safety: the capture hooks and :meth:`dump_bundle` serialize on
    one lock, so rings survive the same thread/task hammering the tracer
    rings do (``tests/obs/test_concurrency.py``).
    """

    def __init__(
        self,
        config: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
        triggers=None,
        request_ring: int = DEFAULT_REQUEST_RING,
        shed_ring: int = DEFAULT_SHED_RING,
        bucket_ring: int = DEFAULT_BUCKET_RING,
        edge_ring: int = DEFAULT_EDGE_RING,
        alert_ring: int = DEFAULT_ALERT_RING,
        flush_ring: int = DEFAULT_FLUSH_RING,
    ) -> None:
        for name, cap in (
            ("request_ring", request_ring),
            ("shed_ring", shed_ring),
            ("bucket_ring", bucket_ring),
            ("edge_ring", edge_ring),
            ("alert_ring", alert_ring),
            ("flush_ring", flush_ring),
        ):
            if cap <= 0:
                raise ValueError(f"{name} must be positive, got {cap}")
        self.config = dict(config) if config else {}
        self.seed = seed
        self.triggers = triggers
        self._lock = threading.Lock()
        self._rings: Dict[str, deque] = {
            "request": deque(maxlen=request_ring),
            "shed": deque(maxlen=shed_ring),
            "bucket": deque(maxlen=bucket_ring),
            "edge": deque(maxlen=edge_ring),
            "alert": deque(maxlen=alert_ring),
            "flush": deque(maxlen=flush_ring),
        }
        #: records ever seen per ring (len(ring) + evicted)
        self.seen: Dict[str, int] = {kind: 0 for kind in self._rings}
        self._seq = 0
        self._bkt = _BucketAccumulator()
        self._last_tick_t: Optional[float] = None
        self._last_ledger = (0.0, 0.0)
        self.bundles: List[str] = []
        self._telemetry = None

    # -- wiring --------------------------------------------------------------

    def attach(self, telemetry) -> "FlightRecorder":
        """Hook into a :class:`~repro.serve.telemetry.ServeTelemetry`:
        the telemetry plane forwards sheds/responses/alerts and the
        per-bucket tick."""
        telemetry.flight = self
        telemetry.on_tick.append(self.on_tick)
        self._telemetry = telemetry
        return self

    def observe_edge(self, edge) -> None:
        """Record the edge tier's propagation flushes (the server wires
        this when it owns both the recorder and an edge tier)."""
        edge.on_flush = self.on_edge_flush

    # -- capture hooks -------------------------------------------------------

    def on_response(self, t: float, response) -> None:
        """Record one completed request (called by the telemetry plane)."""
        segments = response.breakdown()
        sojourn = response.sojourn_s
        # Per-request re-sum checks: the segment telescoping invariant
        # and the energy components-vs-total invariant, live instead of
        # end-of-run only (the trigger engine watches these).
        err_s = abs(sum(segments.values()) - sojourn)
        energy = response.energy
        if energy is not None:
            energy_j = energy.total_j
            err_j = abs(
                ((energy.storage_j + energy.render_j) + energy.base_j)
                + energy.radio_j
                - energy_j
            )
        else:
            energy_j = None
            err_j = 0.0
        record = {
            "kind": "request",
            "t": t,
            "trace_id": response.trace_id,
            "device_id": response.request.device_id,
            "key": response.request.key,
            "hit": response.outcome.hit,
            "shared": response.shared_fetch,
            "tier": response.tier,
            "edge_node": response.edge_node,
            "sojourn_s": sojourn,
            "segments": segments,
            "energy_j": energy_j,
            "hop_err_s": err_s,
            "hop_err_j": err_j,
        }
        with self._lock:
            self._append("request", record)
            bkt = self._bkt
            bkt.completed += 1
            if response.outcome.hit:
                bkt.hits += 1
            bkt.sojourn_sum += sojourn
            if sojourn > bkt.sojourn_max:
                bkt.sojourn_max = sojourn
            queue_wait = segments.get("queue_wait", 0.0)
            if queue_wait > bkt.queue_wait_max:
                bkt.queue_wait_max = queue_wait
            if err_s > bkt.hop_err_s_max:
                bkt.hop_err_s_max = err_s
            if err_j > bkt.hop_err_j_max:
                bkt.hop_err_j_max = err_j
        if self.triggers is not None:
            self.triggers.on_response(t, record, self)

    def on_shed(self, t: float, reply) -> None:
        """Record one typed shed event (called by the telemetry plane)."""
        trace = reply.trace
        edge_node = (
            trace.annotations.get("edge_node") if trace is not None else None
        )
        record = {
            "kind": "shed",
            "t": t,
            "reason": reply.reason,
            "trace_id": reply.trace_id,
            "device_id": reply.request.device_id,
            "key": reply.request.key,
            "edge_node": edge_node,
        }
        with self._lock:
            self._append("shed", record)
            self._bkt.shed += 1
            self._bkt.shed_reasons[reply.reason] = (
                self._bkt.shed_reasons.get(reply.reason, 0) + 1
            )

    def on_alerts(self, t: float, alerts) -> None:
        """Record fired SLO burn alerts (forwarded by the telemetry
        plane's bucket evaluation)."""
        with self._lock:
            for alert in alerts:
                record = dict(alert.to_dict())
                record["kind"] = "alert"
                record.setdefault("t", t)
                self._append("alert", record)
        if self.triggers is not None:
            self.triggers.on_alerts(t, alerts, self)

    def on_tick(self, t: float, telemetry) -> None:
        """Close the bucket that just ended: emit its row (with the
        energy-ledger delta) and a per-edge-node stats snapshot."""
        ledger = telemetry.energy.ledger
        attributed, timeline = ledger.attributed_j, ledger.timeline_j
        with self._lock:
            row = self._bkt.row()
            row["kind"] = "bucket"
            row["t"] = t
            row["t_prev"] = self._last_tick_t
            row["ledger"] = {
                "attributed_j": attributed,
                "timeline_j": timeline,
                "d_attributed_j": attributed - self._last_ledger[0],
                "d_timeline_j": timeline - self._last_ledger[1],
                "error_j": ledger.conservation_error_j,
                "requests": ledger.requests,
            }
            self._append("bucket", row)
            self._bkt.reset()
            self._last_tick_t = t
            self._last_ledger = (attributed, timeline)
            edge_stats_fn = getattr(telemetry, "edge_stats_fn", None)
            if edge_stats_fn is not None:
                stats = edge_stats_fn()
                self._append(
                    "edge",
                    {
                        "kind": "edge",
                        "t": t,
                        "sheds": stats.get("sheds", 0),
                        "community_hits": stats.get("community_hits", 0),
                        "community_misses": stats.get("community_misses", 0),
                        "origin_fetches": stats.get("origin_fetches", 0),
                        "nodes": stats.get("nodes", []),
                    },
                )
        if self.triggers is not None:
            self.triggers.on_tick(t, self, telemetry)

    def on_edge_flush(self, t: float, node_id: int, n_deltas: int) -> None:
        """Record one popularity-propagation flush from an edge node."""
        with self._lock:
            self._append(
                "flush",
                {"kind": "flush", "t": t, "node": node_id, "deltas": n_deltas},
            )

    def finalize(self, t: Optional[float] = None, force: bool = False) -> None:
        """Close out the run: flush the open bucket accumulator as a
        final (partial) row, then let the trigger engine settle — a
        pending trigger dumps with whatever baseline accumulated, and
        ``force=True`` dumps a manual bundle even without a trigger."""
        telemetry = self._telemetry
        if t is None:
            t = telemetry.t_last if telemetry is not None else 0.0
        if telemetry is not None:
            self.on_tick(t, telemetry)
        if self.triggers is not None:
            self.triggers.finalize(t, self, force=force)

    # -- read side -----------------------------------------------------------

    def last_bucket(self) -> Optional[Dict[str, Any]]:
        """The most recently closed per-bucket row (None before any)."""
        with self._lock:
            ring = self._rings["bucket"]
            return ring[-1] if ring else None

    def dropped(self) -> Dict[str, int]:
        """Records evicted per ring since construction."""
        with self._lock:
            return {
                kind: self.seen[kind] - len(ring)
                for kind, ring in sorted(self._rings.items())
            }

    def status(self) -> Dict[str, Any]:
        """One JSON-ready health document (the ``flight`` section of the
        telemetry snapshot and the ``repro top`` flight line)."""
        with self._lock:
            retained = {
                kind: len(ring) for kind, ring in sorted(self._rings.items())
            }
            doc: Dict[str, Any] = {
                "retained": retained,
                "seen": dict(sorted(self.seen.items())),
                "dropped": {
                    kind: self.seen[kind] - retained[kind] for kind in retained
                },
                "bundles": list(self.bundles),
            }
        if self.triggers is not None:
            doc["pending_trigger"] = self.triggers.pending
            doc["triggers_exhausted"] = self.triggers.exhausted
        return doc

    # -- bundle dump ---------------------------------------------------------

    def dump_bundle(
        self,
        out_dir: str,
        trigger: Dict[str, Any],
        windows: Dict[str, List[float]],
    ) -> str:
        """Atomically write one versioned postmortem bundle.

        The bundle directory is built under a ``.tmp`` name and renamed
        into place only once both files are fully written, so a reader
        never sees a partial bundle.  Returns the bundle path.
        """
        with self._lock:
            records: List[Any] = []
            for ring in self._rings.values():
                records.extend(ring)
            dropped = {
                kind: self.seen[kind] - len(ring)
                for kind, ring in sorted(self._rings.items())
            }
            seen = dict(sorted(self.seen.items()))
        records.append(trigger)
        records.sort(
            key=lambda r: (r["t"], _KIND_ORDER.get(r["kind"], 9), r.get("seq", 0))
        )
        name = "flight-{kind}-t{ms}".format(
            kind=str(trigger.get("trigger", "manual")).replace("_", "-"),
            ms=int(round(float(trigger["t"]) * 1000)),
        )
        final = os.path.join(out_dir, name)
        n = 2
        while os.path.exists(final):
            final = os.path.join(out_dir, f"{name}-{n}")
            n += 1
        tmp = final + ".tmp"
        if os.path.exists(tmp):
            shutil.rmtree(tmp)
        os.makedirs(tmp)
        meta = {
            "kind": "meta",
            "t": float(trigger["t"]),
            "bundle_version": BUNDLE_VERSION,
            "n_records": len(records),
            "dropped": dropped,
        }
        with open(os.path.join(tmp, EVENTS_FILENAME), "w") as fh:
            fh.write(_dumps(meta) + "\n")
            for record in records:
                fh.write(_dumps(record) + "\n")
        manifest = {
            "name": "flight_bundle",
            "schema_version": 1,
            "bundle_version": BUNDLE_VERSION,
            "trigger": trigger,
            "windows": windows,
            "git_sha": git_sha(),
            "config": self.config,
            "seed": self.seed,
            "seen": seen,
            "dropped": dropped,
            "n_records": len(records),
            "events": EVENTS_FILENAME,
            # Wall-clock provenance: excluded from byte-identity checks.
            "started_at": datetime.now(timezone.utc).isoformat(),
        }
        with open(os.path.join(tmp, MANIFEST_FILENAME), "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.rename(tmp, final)
        with self._lock:
            self.bundles.append(final)
        return final

    # -- internals -----------------------------------------------------------

    def _append(self, kind: str, record: Dict[str, Any]) -> None:
        """Append under the caller's lock, stamping a sequence number so
        same-timestamp records sort stably in dumped bundles."""
        record["seq"] = self._seq
        self._seq += 1
        self.seen[kind] += 1
        self._rings[kind].append(record)

    def record_trigger(self, record: Dict[str, Any]) -> None:
        """Stamp a trigger record's sequence number (the trigger engine
        hands the same dict to :meth:`dump_bundle` later)."""
        with self._lock:
            record["seq"] = self._seq
            self._seq += 1


def _dumps(record: Dict[str, Any]) -> str:
    return json.dumps(
        {key: _json_safe(value) for key, value in record.items()},
        sort_keys=True,
        allow_nan=False,
        default=_scrub,
    )


def _scrub(value: Any) -> Any:
    """Last-resort serializer for nested non-JSON values."""
    if isinstance(value, float):
        return None
    return str(value)
