"""``repro postmortem``: turn a flight-recorder bundle into a diagnosis.

Reads one bundle dumped by :mod:`repro.obs.flight` (the directory, or
its ``events.jsonl`` directly), reconstructs the incident timeline, and
diffs the *incident* window against the *trailing baseline* window the
trigger engine captured after it:

* per-segment p99 latency deltas over
  :data:`~repro.serve.requests.SEGMENT_NAMES` (queue_wait,
  refresh_blocked, edge_hop, edge_serve, batch_wait, service);
* shed-rate deltas by typed reason, mapped onto the segment whose
  resource exhausted (``device-queue-full``/``server-busy`` shed at the
  queue, ``edge-queue-full`` sheds on the edge hop);
* per-tier and per-edge-node breakdowns, so a single hot cloudlet node
  is distinguishable from tier-wide contention.

The two channels are combined into a normalized *culprit score* per
segment — the latency channel alone misses incidents that shed instead
of queueing (an edge in-flight bound rejects immediately, adding no
latency), and the shed channel alone misses pure slowdowns.  The
machine verdict reuses :func:`repro.obs.benchgate.compare` on the two
windows' headline metrics, so "did the incident regress the watched
metrics beyond tolerance" means exactly what it means in CI.

Exit codes match bench-gate: 0 clean, 1 regression verdict, 2
usage/input error.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.benchgate import compare
from repro.obs.flight import EVENTS_FILENAME, MANIFEST_FILENAME

__all__ = [
    "REASON_SEGMENT",
    "SEGMENT_NAMES",
    "analyze",
    "load_bundle",
    "postmortem_main",
    "render_report",
]

#: Mirror of :data:`repro.serve.requests.SEGMENT_NAMES` — obs must not
#: import serve (layering), and bundle records are the contract anyway.
SEGMENT_NAMES = (
    "queue_wait",
    "refresh_blocked",
    "edge_hop",
    "edge_serve",
    "batch_wait",
    "service",
)

TIER_NAMES = ("device", "edge", "origin")

#: Typed shed reason -> the segment whose resource ran out.
REASON_SEGMENT = {
    "device-queue-full": "queue_wait",
    "server-busy": "queue_wait",
    "edge-queue-full": "edge_hop",
}

DEFAULT_MIN_LATENCY_DELTA_S = 0.005


def load_bundle(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """``(manifest, records)`` from a bundle directory or events file."""
    if os.path.isdir(path):
        events_path = os.path.join(path, EVENTS_FILENAME)
        manifest_path = os.path.join(path, MANIFEST_FILENAME)
    else:
        events_path = path
        manifest_path = os.path.join(os.path.dirname(path), MANIFEST_FILENAME)
    if not os.path.exists(events_path):
        raise FileNotFoundError(f"no {EVENTS_FILENAME} at {events_path}")
    manifest: Dict[str, Any] = {}
    if os.path.exists(manifest_path):
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    records: List[Dict[str, Any]] = []
    with open(events_path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    if records and records[0].get("kind") == "meta":
        meta = records.pop(0)
        version = meta.get("bundle_version")
        if version is not None and version > manifest.get(
            "bundle_version", version
        ):
            raise ValueError(f"unsupported bundle_version {version}")
    return manifest, records


def percentile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (None on empty input)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _in_window(t: float, window: List[float], half_open: bool) -> bool:
    lo, hi = window
    return (lo < t <= hi) if half_open else (lo <= t <= hi)


def _window_stats(
    requests: List[Dict[str, Any]],
    sheds: List[Dict[str, Any]],
    window: List[float],
) -> Dict[str, Any]:
    """Headline + per-segment/tier/node stats for one analysis window."""
    duration = max(window[1] - window[0], 1e-9)
    completed = len(requests)
    shed = len(sheds)
    events = completed + shed
    sojourns = [r["sojourn_s"] for r in requests]
    hits = sum(1 for r in requests if r["hit"])
    segments: Dict[str, Optional[float]] = {}
    for name in SEGMENT_NAMES:
        segments[name] = percentile(
            [r["segments"].get(name, 0.0) for r in requests], 99
        )
    shed_reasons: Dict[str, int] = {}
    for record in sheds:
        reason = record.get("reason", "unknown")
        shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
    tiers: Dict[str, Dict[str, Any]] = {}
    for name in TIER_NAMES:
        rows = [r for r in requests if r.get("tier") == name]
        if rows:
            tiers[name] = {
                "n": len(rows),
                "sojourn_p99_s": percentile(
                    [r["sojourn_s"] for r in rows], 99
                ),
            }
    nodes: Dict[int, Dict[str, Any]] = {}
    for record in requests:
        node = record.get("edge_node")
        if node is not None:
            stats = nodes.setdefault(node, {"n": 0, "shed": 0, "sojourns": []})
            stats["n"] += 1
            stats["sojourns"].append(record["sojourn_s"])
    for record in sheds:
        node = record.get("edge_node")
        if node is not None:
            stats = nodes.setdefault(node, {"n": 0, "shed": 0, "sojourns": []})
            stats["shed"] += 1
    edge_nodes = {
        node: {
            "n": stats["n"],
            "shed": stats["shed"],
            "sojourn_p99_s": percentile(stats["sojourns"], 99),
        }
        for node, stats in sorted(nodes.items())
    }
    return {
        "window": list(window),
        "duration_s": window[1] - window[0],
        "completed": completed,
        "shed": shed,
        "shed_rate": shed / events if events else 0.0,
        "shed_per_s": shed / duration,
        "shed_reasons": shed_reasons,
        "hit_rate": hits / completed if completed else None,
        "sojourn_p50_s": percentile(sojourns, 50),
        "sojourn_p99_s": percentile(sojourns, 99),
        "segments_p99_s": segments,
        "tiers": tiers,
        "edge_nodes": edge_nodes,
    }


def _flat_metrics(stats: Dict[str, Any]) -> Dict[str, float]:
    """The bench-gate view of one window (None/NaN left out)."""
    out: Dict[str, float] = {"shed_rate": stats["shed_rate"]}
    for key in ("hit_rate", "sojourn_p50_s", "sojourn_p99_s"):
        if stats[key] is not None:
            out[key] = stats[key]
    for name, value in stats["segments_p99_s"].items():
        if value is not None:
            out[name + "_p99_s"] = value
    return out


def analyze(
    manifest: Dict[str, Any],
    records: List[Dict[str, Any]],
    max_regression: float = 0.25,
    min_latency_delta_s: float = DEFAULT_MIN_LATENCY_DELTA_S,
) -> Dict[str, Any]:
    """Full postmortem: windows, per-segment attribution, gate verdict."""
    trigger = manifest.get("trigger") or next(
        (r for r in records if r.get("kind") == "trigger"), None
    )
    if trigger is None:
        raise ValueError("bundle has no trigger record")
    windows = manifest.get("windows")
    if not windows:
        t0 = float(trigger["t"])
        windows = {"incident": [max(0.0, t0 - 60.0), t0], "baseline": [t0, t0]}
    incident_w = [float(x) for x in windows["incident"]]
    baseline_w = [float(x) for x in windows["baseline"]]

    requests = [r for r in records if r.get("kind") == "request"]
    sheds = [r for r in records if r.get("kind") == "shed"]
    buckets = [r for r in records if r.get("kind") == "bucket"]

    incident = _window_stats(
        [r for r in requests if _in_window(r["t"], incident_w, False)],
        [r for r in sheds if _in_window(r["t"], incident_w, False)],
        incident_w,
    )
    baseline = _window_stats(
        [r for r in requests if _in_window(r["t"], baseline_w, True)],
        [r for r in sheds if _in_window(r["t"], baseline_w, True)],
        baseline_w,
    )

    # Channel 1: per-segment p99 latency deltas (incident - baseline),
    # floored so float noise in sub-millisecond segments cannot win.
    # Deltas stay signed for the report, but attribution scores on the
    # magnitude: a spike-onset trigger (shed-spike fires at the *first*
    # bad bucket) puts the anomaly in the trailing window, so the
    # culprit is "the segment that moved", in either direction — only
    # the gate verdict below is directional.
    latency_delta: Dict[str, float] = {}
    for name in SEGMENT_NAMES:
        inc = incident["segments_p99_s"][name]
        base = baseline["segments_p99_s"][name]
        delta = (inc - base) if inc is not None and base is not None else 0.0
        latency_delta[name] = delta if abs(delta) >= min_latency_delta_s else 0.0

    # Channel 2: shed-rate deltas by typed reason, mapped onto the
    # segment whose resource exhausted.  Essential for incidents that
    # reject instead of queue (edge in-flight bounds shed immediately).
    shed_delta: Dict[str, float] = {name: 0.0 for name in SEGMENT_NAMES}
    inc_dur = max(incident["duration_s"], 1e-9)
    base_dur = max(baseline["duration_s"], 1e-9)
    reasons = set(incident["shed_reasons"]) | set(baseline["shed_reasons"])
    shed_reason_delta: Dict[str, float] = {}
    for reason in sorted(reasons):
        rate_delta = (
            incident["shed_reasons"].get(reason, 0) / inc_dur
            - baseline["shed_reasons"].get(reason, 0) / base_dur
        )
        shed_reason_delta[reason] = rate_delta
        segment = REASON_SEGMENT.get(reason)
        if segment is not None and rate_delta != 0:
            shed_delta[segment] += abs(rate_delta)

    lat_max = max(abs(v) for v in latency_delta.values())
    shed_max = max(shed_delta.values())
    scores: Dict[str, float] = {}
    for name in SEGMENT_NAMES:
        score = 0.0
        if lat_max > 0:
            score += abs(latency_delta[name]) / lat_max
        if shed_max > 0:
            score += shed_delta[name] / shed_max
        scores[name] = score
    culprit: Optional[Dict[str, Any]] = None
    best = max(scores.values())
    if best > 0:
        segment = next(n for n in SEGMENT_NAMES if scores[n] == best)
        culprit = {
            "segment": segment,
            "score": best,
            "latency_delta_s": latency_delta[segment],
            "shed_delta_per_s": shed_delta[segment],
            "reasons": {
                reason: delta
                for reason, delta in shed_reason_delta.items()
                if REASON_SEGMENT.get(reason) == segment and delta != 0
            },
        }

    rows, regressions = compare(
        {"postmortem": _flat_metrics(baseline)},
        {"postmortem": _flat_metrics(incident)},
        max_regression=max_regression,
    )
    span = [incident_w[0], baseline_w[1]]
    timeline = [
        {
            "t": b["t"],
            "completed": b["completed"],
            "shed": b["shed"],
            "shed_fraction": b["shed_fraction"],
            "sojourn_max_s": b["sojourn_max_s"],
            "queue_wait_max_s": b["queue_wait_max_s"],
        }
        for b in buckets
        if span[0] <= b["t"] <= span[1]
    ]
    return {
        "trigger": trigger,
        "windows": {"incident": incident_w, "baseline": baseline_w},
        "incident": incident,
        "baseline": baseline,
        "segments": {
            name: {
                "incident_p99_s": incident["segments_p99_s"][name],
                "baseline_p99_s": baseline["segments_p99_s"][name],
                "latency_delta_s": latency_delta[name],
                "shed_delta_per_s": shed_delta[name],
                "score": scores[name],
            }
            for name in SEGMENT_NAMES
        },
        "shed_reason_delta": shed_reason_delta,
        "culprit": culprit,
        "timeline": timeline,
        "gate": {
            "max_regression": max_regression,
            "rows": rows,
            "regressions": regressions,
        },
        "verdict": "regression" if regressions else "clean",
    }


def _fmt(value: Optional[float], spec: str = "8.4f") -> str:
    if value is None:
        return "       -"
    return format(value, spec)


def render_report(
    analysis: Dict[str, Any], manifest: Dict[str, Any], bundle: str
) -> str:
    """The human-facing postmortem report."""
    trigger = analysis["trigger"]
    incident, baseline = analysis["incident"], analysis["baseline"]
    lines = [
        f"postmortem: {bundle}",
        "  git_sha={sha}  seed={seed}".format(
            sha=manifest.get("git_sha"), seed=manifest.get("seed")
        ),
        "  trigger: {kind} at t={t:.3f}  detail={detail}".format(
            kind=trigger.get("trigger"),
            t=float(trigger["t"]),
            detail=json.dumps(trigger.get("detail", {}), sort_keys=True),
        ),
        "",
        "  window      [t0, t1]            events  shed_rate  p99_s",
    ]
    for name, stats in (("incident", incident), ("baseline", baseline)):
        lines.append(
            "  {name:<10}  [{a:8.2f},{b:8.2f}]  {n:6d}  {shed:8.1%}  {p99}".format(
                name=name,
                a=stats["window"][0],
                b=stats["window"][1],
                n=stats["completed"] + stats["shed"],
                shed=stats["shed_rate"],
                p99=_fmt(stats["sojourn_p99_s"]),
            )
        )
    lines += [
        "",
        "  segment          base_p99  incid_p99   delta_s  shed/s   score",
    ]
    for name, row in analysis["segments"].items():
        lines.append(
            "  {name:<15}  {base}  {inc}  {delta}  {shed:6.2f}  {score:6.2f}".format(
                name=name,
                base=_fmt(row["baseline_p99_s"]),
                inc=_fmt(row["incident_p99_s"]),
                delta=_fmt(row["latency_delta_s"]),
                shed=row["shed_delta_per_s"],
                score=row["score"],
            )
        )
    culprit = analysis["culprit"]
    if culprit is not None:
        lines += [
            "",
            "  culprit: {seg} (score {score:.2f}; p99 {d:+.4f}s; "
            "shed-rate moved {s:.2f}/s, by reason {reasons})".format(
                seg=culprit["segment"],
                score=culprit["score"],
                d=culprit["latency_delta_s"],
                s=culprit["shed_delta_per_s"],
                reasons=json.dumps(culprit["reasons"], sort_keys=True),
            ),
        ]
    else:
        lines += ["", "  culprit: none (no segment moved beyond the floor)"]
    for scope in ("tiers", "edge_nodes"):
        keys = sorted(
            set(incident[scope]) | set(baseline[scope]), key=str
        )
        if not keys:
            continue
        lines += ["", f"  {scope}:          base_n/p99        incid_n/p99"]
        for key in keys:
            base = baseline[scope].get(key, {})
            inc = incident[scope].get(key, {})
            lines.append(
                "    {key:<12}  {bn:5d} {bp}   {inz:5d} {ip}   shed {bs}->{isd}".format(
                    key=str(key),
                    bn=base.get("n", 0),
                    bp=_fmt(base.get("sojourn_p99_s")),
                    inz=inc.get("n", 0),
                    ip=_fmt(inc.get("sojourn_p99_s")),
                    bs=base.get("shed", 0),
                    isd=inc.get("shed", 0),
                )
            )
    timeline = analysis["timeline"]
    if timeline:
        lines += ["", "  timeline (per telemetry bucket):"]
        lines.append(
            "    t         done  shed  shed%   sojourn_max  queue_max"
        )
        t_trigger = float(trigger["t"])
        for row in timeline:
            mark = "  <- trigger" if row["t"] == t_trigger else ""
            lines.append(
                "    {t:8.2f}  {done:4d}  {shed:4d}  {frac:5.1%}  "
                "{smax}  {qmax}{mark}".format(
                    t=row["t"],
                    done=row["completed"],
                    shed=row["shed"],
                    frac=row["shed_fraction"],
                    smax=_fmt(row["sojourn_max_s"], "11.4f"),
                    qmax=_fmt(row["queue_wait_max_s"], "9.4f"),
                    mark=mark,
                )
            )
    gate = analysis["gate"]
    lines += [
        "",
        "  verdict: {v} ({n} watched metric(s), {r} regression(s) beyond "
        "{tol:.0%})".format(
            v=analysis["verdict"],
            n=len(gate["rows"]),
            r=len(gate["regressions"]),
            tol=gate["max_regression"],
        ),
    ]
    for row in gate["regressions"]:
        lines.append(
            "    REGRESSED {metric}: {base:.6g} -> {cand:.6g} "
            "({rel:+.1%} worse, {dir} is better)".format(
                metric=row["metric"],
                base=row["baseline"],
                cand=row["candidate"],
                rel=row["regression"],
                dir=row["direction"],
            )
        )
    return "\n".join(lines)


def postmortem_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro postmortem",
        description="Analyze a flight-recorder incident bundle.",
    )
    parser.add_argument(
        "bundle", help="bundle directory (or its events.jsonl)"
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="verdict tolerance, bench-gate semantics (default 0.25)",
    )
    parser.add_argument(
        "--min-latency-delta", type=float,
        default=DEFAULT_MIN_LATENCY_DELTA_S, metavar="S",
        help="floor below which a segment p99 delta is noise "
        f"(default {DEFAULT_MIN_LATENCY_DELTA_S})",
    )
    parser.add_argument(
        "--json-out", metavar="PATH",
        help="write the machine-readable analysis document here",
    )
    args = parser.parse_args(argv)
    try:
        manifest, records = load_bundle(args.bundle)
        analysis = analyze(
            manifest,
            records,
            max_regression=args.max_regression,
            min_latency_delta_s=args.min_latency_delta,
        )
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"postmortem: cannot analyze {args.bundle}: {exc}",
              file=sys.stderr)
        return 2
    print(render_report(analysis, manifest, args.bundle))
    if args.json_out:
        doc = dict(analysis)
        doc["bundle"] = args.bundle
        doc["manifest"] = manifest
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
    return 1 if analysis["gate"]["regressions"] else 0


if __name__ == "__main__":
    sys.exit(postmortem_main())
