"""Observability for the simulation stack: tracing, metrics, manifests.

Three zero-dependency layers, all default-off (or allocation-free) so the
replay hot paths pay nothing unless a caller opts in:

* :mod:`repro.obs.trace` — context-manager span tracer with a
  ring-buffered recorder and JSONL export.  The module-level tracer is a
  no-op singleton until :func:`repro.obs.trace.enable` installs a real
  recorder.
* :mod:`repro.obs.registry` — named counters, gauges, and
  bounded-memory streaming histograms (reservoir + P² quantiles), so
  million-query replays can compute percentiles without retaining every
  outcome object.
* :mod:`repro.obs.manifest` — machine-readable run manifests (seed,
  config, git SHA, wall time, peak RSS) for experiments and benchmarks.

The v2 telemetry plane (always-on for the serving stack) adds:

* :mod:`repro.obs.timeseries` — fixed-width ring-buffered windowed
  counters/gauges/histograms plus slow-request exemplars, deterministic
  under the virtual clock;
* :mod:`repro.obs.slo` — good-fraction SLO rules with multi-window
  burn-rate alerting and machine-readable verdicts;
* :mod:`repro.obs.exposition` — Prometheus text + JSON rendering and an
  in-process asyncio HTTP endpoint;
* :mod:`repro.obs.benchgate` — the ``repro bench-gate`` trajectory
  regression gate;
* :mod:`repro.obs.energy` — per-request energy breakdowns,
  shared-fetch radio splits, the attribution conservation ledger, and
  windowed energy telemetry.
"""

from repro.obs.energy import (
    ENERGY_COMPONENTS,
    EnergyBreakdown,
    EnergyLedger,
    EnergyWindows,
    split_shared_radio,
)
from repro.obs.manifest import RunManifest, collect_manifest
from repro.obs.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    P2Quantile,
    StreamingHistogram,
    get_registry,
)
from repro.obs.slo import SLOAlert, SLOMonitor, SLOPolicy, SLORule
from repro.obs.timeseries import (
    ExemplarRing,
    TimeSeriesRegistry,
    WindowedCounter,
    WindowedGauge,
    WindowedHistogram,
)
from repro.obs.trace import (
    Segment,
    TraceContext,
    Tracer,
    disable,
    enable,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "ENERGY_COMPONENTS",
    "EnergyBreakdown",
    "EnergyLedger",
    "EnergyWindows",
    "ExemplarRing",
    "Gauge",
    "MetricsRegistry",
    "P2Quantile",
    "RunManifest",
    "SLOAlert",
    "SLOMonitor",
    "SLOPolicy",
    "SLORule",
    "Segment",
    "StreamingHistogram",
    "TimeSeriesRegistry",
    "TraceContext",
    "Tracer",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
    "collect_manifest",
    "disable",
    "enable",
    "get_registry",
    "get_tracer",
    "set_tracer",
    "split_shared_radio",
]
