"""``repro bench-gate``: fail CI when the perf trajectory regresses.

Compares a *candidate* BENCH document (or a single run manifest) against
a committed *baseline* (``BENCH_seed.json``) and exits nonzero when any
watched metric regressed beyond tolerance.  Both inputs accept either
format produced by this repo:

* the :mod:`benchmarks.emit_bench_json` aggregate
  (``{"benches": [manifest, ...]}``);
* one :class:`~repro.obs.manifest.RunManifest` JSON.

Metrics are compared by *name* within benches of the same name; nested
metric dicts (e.g. a load-test rate sweep) are flattened with dotted
keys.  Direction matters: latency percentiles and shed rates regress
upward, hit rates and throughput regress downward.  Wall-clock and RSS
fields are ignored by default — they measure the CI machine, not the
code — but can be opted in with ``--watch``.

Exit codes: 0 clean, 1 regression, 2 usage/input error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import math
import sys
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["DEFAULT_WATCH", "compare", "flatten_metrics", "load_benches", "main"]

#: ``(glob over flattened metric name, direction)`` — direction is
#: ``"lower"`` (regression = increase) or ``"higher"`` (= decrease).
#: First match wins; unmatched metrics are not gated.
DEFAULT_WATCH: Tuple[Tuple[str, str], ...] = (
    ("*energy_j_per_query", "lower"),
    ("*energy_j_p50", "lower"),
    ("*energy_j_p99", "lower"),
    ("*hit_miss_energy_ratio", "higher"),
    ("*battery_day_fraction", "lower"),
    ("*queries_per_charge", "higher"),
    ("*p50_s", "lower"),
    ("*p99_s", "lower"),
    ("*p99*", "lower"),
    ("*max_s", "lower"),
    ("*wait_s", "lower"),
    ("*shed_rate", "lower"),
    ("*hit_rate", "higher"),
    ("*throughput_rps", "higher"),
    ("*batch_efficiency", "higher"),
    ("*events_per_s", "higher"),
    ("*speedup_x", "higher"),
)


def flatten_metrics(
    metrics: Dict[str, Any], prefix: str = ""
) -> Dict[str, float]:
    """Numeric leaves of a (possibly nested) metrics dict, dotted keys."""
    out: Dict[str, float] = {}
    for key, value in metrics.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten_metrics(value, prefix=name + "."))
        elif isinstance(value, bool):
            continue  # pass/fail flags are not perf metrics
        elif isinstance(value, (int, float)):
            out[name] = float(value)
    return out


def load_benches(path: str) -> Dict[str, Dict[str, float]]:
    """``bench name -> flattened metrics`` from either input format."""
    with open(path) as fh:
        doc = json.load(fh)
    if "benches" in doc:
        entries = doc["benches"]
    elif "name" in doc:
        entries = [doc]
    else:
        raise ValueError(
            f"{path}: neither a BENCH aggregate ('benches') nor a run "
            "manifest ('name')"
        )
    out: Dict[str, Dict[str, float]] = {}
    for entry in entries:
        out[entry["name"]] = flatten_metrics(entry.get("metrics", {}))
    return out


def _direction(name: str, watch) -> Optional[str]:
    tail = name.rsplit(".", 1)[-1]
    for pattern, direction in watch:
        if fnmatch.fnmatch(tail, pattern) or fnmatch.fnmatch(name, pattern):
            return direction
    return None


def compare(
    baseline: Dict[str, Dict[str, float]],
    candidate: Dict[str, Dict[str, float]],
    max_regression: float = 0.25,
    abs_floor: float = 1e-9,
    watch=DEFAULT_WATCH,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Diff watched metrics of the benches both documents contain.

    Returns ``(rows, regressions)``: every compared metric, and the
    subset whose relative regression exceeds ``max_regression``.
    Baselines smaller than ``abs_floor`` are compared absolutely
    against the floor to avoid divide-by-tiny blowups.
    """
    rows: List[Dict[str, Any]] = []
    regressions: List[Dict[str, Any]] = []
    for bench in sorted(set(baseline) & set(candidate)):
        base_metrics, cand_metrics = baseline[bench], candidate[bench]
        for name in sorted(set(base_metrics) & set(cand_metrics)):
            direction = _direction(name, watch)
            if direction is None:
                continue
            base, cand = base_metrics[name], cand_metrics[name]
            if math.isnan(base) or math.isnan(cand):
                continue
            worse = cand - base if direction == "lower" else base - cand
            denom = max(abs(base), abs_floor)
            rel = worse / denom
            row = {
                "bench": bench,
                "metric": name,
                "direction": direction,
                "baseline": base,
                "candidate": cand,
                "regression": rel,
            }
            rows.append(row)
            if rel > max_regression:
                regressions.append(row)
    return rows, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench-gate",
        description="Diff a fresh BENCH/manifest against a committed "
        "baseline and fail on perf regression.",
    )
    parser.add_argument(
        "--baseline", required=True, metavar="PATH",
        help="committed trajectory baseline (e.g. BENCH_seed.json)",
    )
    parser.add_argument(
        "--candidate", required=True, metavar="PATH",
        help="freshly generated BENCH aggregate or run manifest",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25, metavar="F",
        help="allowed relative worsening per watched metric "
        "(default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--watch", action="append", default=None, metavar="GLOB:DIR",
        help="extra watch rule, e.g. 'wall_time_s:lower' "
        "(repeatable; prepended to the defaults)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print every compared metric, not just regressions",
    )
    args = parser.parse_args(argv)

    watch = list(DEFAULT_WATCH)
    for spec in args.watch or ():
        if ":" not in spec:
            print(f"bench-gate: bad --watch {spec!r} (want GLOB:DIR)",
                  file=sys.stderr)
            return 2
        pattern, direction = spec.rsplit(":", 1)
        if direction not in ("lower", "higher"):
            print(f"bench-gate: bad direction {direction!r}", file=sys.stderr)
            return 2
        watch.insert(0, (pattern, direction))

    try:
        baseline = load_benches(args.baseline)
        candidate = load_benches(args.candidate)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"bench-gate: {exc}", file=sys.stderr)
        return 2

    common = set(baseline) & set(candidate)
    if not common:
        print(
            f"bench-gate: no common benches between {args.baseline} "
            f"({sorted(baseline)}) and {args.candidate} "
            f"({sorted(candidate)})",
            file=sys.stderr,
        )
        return 2

    rows, regressions = compare(
        baseline, candidate, max_regression=args.max_regression, watch=watch
    )
    shown = rows if args.verbose else regressions
    if shown:
        width = max(len(f"{r['bench']}:{r['metric']}") for r in shown)
        for row in shown:
            flag = "REGRESSED" if row in regressions else "ok"
            print(
                f"{row['bench']}:{row['metric']:<{width}}  "
                f"{row['baseline']:.6g} -> {row['candidate']:.6g}  "
                f"({row['regression']:+.1%} worse, {row['direction']} "
                f"is better)  {flag}"
            )
    print(
        f"bench-gate: {len(rows)} watched metrics across "
        f"{len(common)} benches, {len(regressions)} regression(s) "
        f"beyond {args.max_regression:.0%}"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
