"""Metric exposition: Prometheus text format, JSON snapshots, HTTP.

Everything the registry and the windowed telemetry know can be read out
in two wire formats:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): counters and gauges one sample per line, histograms
  as summaries (``{quantile="..."}`` plus ``_count``/``_sum``);
* :func:`render_json` — the same data as one JSON document, optionally
  with extra sections (windowed snapshot, SLO status, exemplars).

:class:`TelemetryEndpoint` serves both from inside a running server
process over a deliberately tiny HTTP/1.0 implementation on
``asyncio.start_server`` — no dependencies, three routes::

    /metrics        Prometheus text
    /metrics.json   registry + extra sections as JSON
    /healthz        200 ok

Scrape it with ``curl``, a Prometheus instance, or ``repro top --url``.
"""

from __future__ import annotations

import asyncio
import json
import math
import re
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from repro.obs.registry import MetricsRegistry

__all__ = [
    "LabeledSample",
    "TelemetryEndpoint",
    "prometheus_name",
    "render_json",
    "render_prometheus",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Interior quantiles exposed for histogram summaries.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)

#: One labeled exposition sample: (dotted name, labels, value).
LabeledSample = Tuple[str, Dict[str, str], float]


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    flat = _NAME_OK.sub("_", name.replace(".", "_").replace("-", "_"))
    if prefix:
        flat = f"{prefix}_{flat}"
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _format_value(value: Any) -> str:
    try:
        number = float(value)
    except (TypeError, ValueError):
        return "NaN"
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_label_value(value: Any) -> str:
    """Prometheus text-format label escaping: backslash, quote, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_NAME_OK.sub("_", key)}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(
    registry: MetricsRegistry,
    prefix: str = "repro",
    extra_samples: Optional[Iterable[LabeledSample]] = None,
) -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    ``extra_samples`` appends labeled gauge samples the flat registry
    cannot express (per-device battery levels, per-source wattage);
    consecutive samples of the same dotted name share one TYPE line.
    """
    lines = []
    for name, snap in sorted(registry.snapshot().items()):
        flat = prometheus_name(name, prefix)
        kind = snap.get("type")
        if kind == "counter":
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {_format_value(snap['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_format_value(snap['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {flat} summary")
            for q in SUMMARY_QUANTILES:
                key = f"p{int(q * 100)}"
                lines.append(
                    f'{flat}{{quantile="{q}"}} '
                    f"{_format_value(snap.get(key))}"
                )
            lines.append(f"{flat}_count {_format_value(snap['count'])}")
            lines.append(f"{flat}_sum {_format_value(snap['sum'])}")
        else:  # unknown instrument: expose what we can as untyped
            lines.append(f"{flat} {_format_value(snap.get('value'))}")
    if extra_samples is not None:
        last_flat = None
        for name, labels, value in extra_samples:
            flat = prometheus_name(name, prefix)
            if flat != last_flat:
                lines.append(f"# TYPE {flat} gauge")
                last_flat = flat
            lines.append(
                f"{flat}{_format_labels(labels)} {_format_value(value)}"
            )
    return "\n".join(lines) + "\n"


def render_json(
    registry: MetricsRegistry,
    extra: Optional[Dict[str, Any]] = None,
    indent: Optional[int] = None,
) -> str:
    """Registry snapshot (plus optional extra sections) as JSON."""
    doc: Dict[str, Any] = {"metrics": registry.snapshot()}
    if extra:
        doc.update(extra)
    return json.dumps(doc, indent=indent, sort_keys=True, default=str)


class TelemetryEndpoint:
    """Minimal asyncio HTTP server exposing live telemetry.

    Args:
        registry: metrics source for both formats.
        snapshot_fn: optional zero-arg callable returning extra JSON
            sections (windowed telemetry, SLO status, exemplars) merged
            into ``/metrics.json``.
        samples_fn: optional zero-arg callable returning labeled
            samples appended to ``/metrics`` (per-device battery
            levels, per-source wattage).
        host: bind address (default loopback).
        port: bind port; 0 picks a free one (see :attr:`port` after
            :meth:`start`).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        snapshot_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        samples_fn: Optional[Callable[[], Iterable[LabeledSample]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.snapshot_fn = snapshot_fn
        self.samples_fn = samples_fn
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        #: requests served, by route (for tests and the top view)
        self.scrapes = 0

    @property
    def port(self) -> Optional[int]:
        """The bound port once started (None before)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "TelemetryEndpoint":
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self._requested_port
        )
        return self

    async def close(self) -> None:
        # Swap the handle out *before* awaiting so a concurrent close()
        # (or a start() racing a shutdown) never sees a half-closed
        # server through self._server.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    # -- request handling ----------------------------------------------------

    def _respond(self, path: str) -> tuple:
        if path in ("/metrics", "/"):
            extra = self.samples_fn() if self.samples_fn else None
            return 200, "text/plain; version=0.0.4", render_prometheus(
                self.registry, extra_samples=extra
            )
        if path == "/metrics.json":
            extra = self.snapshot_fn() if self.snapshot_fn else None
            return 200, "application/json", render_json(
                self.registry, extra=extra, indent=2
            )
        if path == "/healthz":
            return 200, "text/plain", "ok\n"
        return 404, "text/plain", f"no route {path}\n"

    async def _handle(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            # Drain (and ignore) headers up to the blank line.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            status, ctype, body = self._respond(path.split("?", 1)[0])
            self.scrapes += 1
            payload = body.encode("utf-8")
            reason = {200: "OK", 404: "Not Found"}.get(status, "OK")
            head = (
                f"HTTP/1.0 {status} {reason}\r\n"
                f"Content-Type: {ctype}; charset=utf-8\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:  # loop already closing
                pass
