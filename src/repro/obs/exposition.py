"""Metric exposition: Prometheus text format, JSON snapshots, HTTP.

Everything the registry and the windowed telemetry know can be read out
in two wire formats:

* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): counters and gauges one sample per line, histograms
  as summaries (``{quantile="..."}`` plus ``_count``/``_sum``);
* :func:`render_json` — the same data as one JSON document, optionally
  with extra sections (windowed snapshot, SLO status, exemplars).

:class:`TelemetryEndpoint` serves both from inside a running server
process over a deliberately tiny HTTP/1.0 implementation on
``asyncio.start_server`` — no dependencies, three routes::

    /metrics        Prometheus text
    /metrics.json   registry + extra sections as JSON
    /healthz        200 ok

Scrape it with ``curl``, a Prometheus instance, or ``repro top --url``.
"""

from __future__ import annotations

import asyncio
import json
import math
import re
from typing import Any, Callable, Dict, Optional

from repro.obs.registry import MetricsRegistry

__all__ = [
    "TelemetryEndpoint",
    "prometheus_name",
    "render_json",
    "render_prometheus",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: Interior quantiles exposed for histogram summaries.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    flat = _NAME_OK.sub("_", name.replace(".", "_").replace("-", "_"))
    if prefix:
        flat = f"{prefix}_{flat}"
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _format_value(value: Any) -> str:
    try:
        number = float(value)
    except (TypeError, ValueError):
        return "NaN"
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(
    registry: MetricsRegistry, prefix: str = "repro"
) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    lines = []
    for name, snap in sorted(registry.snapshot().items()):
        flat = prometheus_name(name, prefix)
        kind = snap.get("type")
        if kind == "counter":
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {_format_value(snap['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {_format_value(snap['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {flat} summary")
            for q in SUMMARY_QUANTILES:
                key = f"p{int(q * 100)}"
                lines.append(
                    f'{flat}{{quantile="{q}"}} '
                    f"{_format_value(snap.get(key))}"
                )
            lines.append(f"{flat}_count {_format_value(snap['count'])}")
            lines.append(f"{flat}_sum {_format_value(snap['sum'])}")
        else:  # unknown instrument: expose what we can as untyped
            lines.append(f"{flat} {_format_value(snap.get('value'))}")
    return "\n".join(lines) + "\n"


def render_json(
    registry: MetricsRegistry,
    extra: Optional[Dict[str, Any]] = None,
    indent: Optional[int] = None,
) -> str:
    """Registry snapshot (plus optional extra sections) as JSON."""
    doc: Dict[str, Any] = {"metrics": registry.snapshot()}
    if extra:
        doc.update(extra)
    return json.dumps(doc, indent=indent, sort_keys=True, default=str)


class TelemetryEndpoint:
    """Minimal asyncio HTTP server exposing live telemetry.

    Args:
        registry: metrics source for both formats.
        snapshot_fn: optional zero-arg callable returning extra JSON
            sections (windowed telemetry, SLO status, exemplars) merged
            into ``/metrics.json``.
        host: bind address (default loopback).
        port: bind port; 0 picks a free one (see :attr:`port` after
            :meth:`start`).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        snapshot_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self.snapshot_fn = snapshot_fn
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        #: requests served, by route (for tests and the top view)
        self.scrapes = 0

    @property
    def port(self) -> Optional[int]:
        """The bound port once started (None before)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "TelemetryEndpoint":
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self._requested_port
        )
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- request handling ----------------------------------------------------

    def _respond(self, path: str) -> tuple:
        if path in ("/metrics", "/"):
            return 200, "text/plain; version=0.0.4", render_prometheus(
                self.registry
            )
        if path == "/metrics.json":
            extra = self.snapshot_fn() if self.snapshot_fn else None
            return 200, "application/json", render_json(
                self.registry, extra=extra, indent=2
            )
        if path == "/healthz":
            return 200, "text/plain", "ok\n"
        return 404, "text/plain", f"no route {path}\n"

    async def _handle(self, reader, writer) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            # Drain (and ignore) headers up to the blank line.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            status, ctype, body = self._respond(path.split("?", 1)[0])
            self.scrapes += 1
            payload = body.encode("utf-8")
            reason = {200: "OK", 404: "Not Found"}.get(status, "OK")
            head = (
                f"HTTP/1.0 {status} {reason}\r\n"
                f"Content-Type: {ctype}; charset=utf-8\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:  # loop already closing
                pass
