"""Per-request energy attribution: breakdowns, shared-fetch splits, windows.

The paper's headline result is energy, not latency: a local cache hit is
~23x more energy-efficient than a 3G fetch (Figure 15b), and the radio's
wake and tail states dominate per-query joules (Figure 16).  This module
gives the serving stack the same machinery for joules that
:mod:`repro.obs.trace` / :mod:`repro.obs.timeseries` provide for time:

* :class:`EnergyBreakdown` — one request's joules split into the paper's
  components (radio ramp / transfer / tail, flash storage, browser
  render, device base load).  Components sum to the request's total in a
  fixed association order, so attribution tests can assert conservation
  to 1e-9 rather than "roughly".
* :func:`split_shared_radio` — the miss-batching split: when ``k``
  requests share one single-flight radio fetch, the transfer energy
  stays with the leader (it is the one occupying the radio for the
  payload), while the wake (ramp) and tail energy — paid once no matter
  how many requests ride the flight — are divided equally.  The leader's
  share is computed as the *remainder* after the riders take theirs, so
  the shares re-sum to the timeline total exactly by construction.
* :class:`EnergyLedger` — the conservation invariant as running state:
  total radio joules attributed across responses versus total radio
  joules the simulated timeline actually spent.  Any drift between the
  two is an accounting bug, not noise.
* :class:`EnergyWindows` — windowed energy telemetry over a
  :class:`~repro.obs.timeseries.TimeSeriesRegistry`: joules/query
  percentiles, watts by service source, and the live hit-vs-miss energy
  ratio (the online Figure 15b).

Everything here is pure bookkeeping over caller-supplied floats and
timestamps — no radio model, no clocks — so it sits at the bottom of the
import ladder next to the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.timeseries import TimeSeriesRegistry, WindowedCounter

__all__ = [
    "ENERGY_COMPONENTS",
    "EnergyBreakdown",
    "EnergyLedger",
    "EnergyWindows",
    "split_shared_radio",
]

#: Component names of a request's energy breakdown, in summation order.
ENERGY_COMPONENTS = ("ramp", "transfer", "tail", "storage", "render", "base")


@dataclass(frozen=True)
class EnergyBreakdown:
    """One request's joules, split by where the power went.

    Attributes:
        ramp_j: radio wake-up (SLEEP -> ACTIVE promotion) energy.
        transfer_j: radio ACTIVE-state transfer energy (RTTs + payload).
        tail_j: radio tail-state energy after the transfer completes.
        storage_j: flash read energy (cache database / page store).
        render_j: browser rendering energy.
        base_j: device base-load energy over the request's latency.
    """

    ramp_j: float = 0.0
    transfer_j: float = 0.0
    tail_j: float = 0.0
    storage_j: float = 0.0
    render_j: float = 0.0
    base_j: float = 0.0

    def __post_init__(self) -> None:
        for name in ENERGY_COMPONENTS:
            if getattr(self, name + "_j") < 0:
                raise ValueError(f"{name}_j must be non-negative")

    @property
    def radio_j(self) -> float:
        """The radio's share (the portion a shared fetch re-attributes)."""
        return (self.ramp_j + self.transfer_j) + self.tail_j

    @property
    def total_j(self) -> float:
        """All components, summed left-to-right in component order."""
        return (
            ((self.ramp_j + self.transfer_j) + self.tail_j)
            + self.storage_j
            + self.render_j
            + self.base_j
        )

    def with_radio(
        self, ramp_j: float, transfer_j: float, tail_j: float
    ) -> "EnergyBreakdown":
        """A copy with the radio components replaced (batch attribution)."""
        return EnergyBreakdown(
            ramp_j=ramp_j,
            transfer_j=transfer_j,
            tail_j=tail_j,
            storage_j=self.storage_j,
            render_j=self.render_j,
            base_j=self.base_j,
        )

    def to_dict(self) -> Dict[str, float]:
        out = {name + "_j": getattr(self, name + "_j") for name in ENERGY_COMPONENTS}
        out["total_j"] = self.total_j
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "EnergyBreakdown":
        return cls(
            **{
                name + "_j": float(raw.get(name + "_j", 0.0))
                for name in ENERGY_COMPONENTS
            }
        )


def split_shared_radio(
    ramp_j: float, transfer_j: float, tail_j: float, riders: int
) -> Tuple[Tuple[float, float, float], Tuple[float, float, float]]:
    """Split one shared radio fetch's energy across its participants.

    Policy: the transfer energy belongs to the leader (its request is the
    one the radio actually carried); the wake and tail energy — paid once
    for the whole flight — are split equally across all ``riders + 1``
    participants.

    The leader's ramp/tail shares are computed as ``total - riders *
    rider_share`` rather than ``total / k``, so::

        leader + riders * rider == (total - riders*rider) + riders*rider

    re-sums to the timeline total with no division residue — the
    conservation invariant holds to float addition, not to a tolerance.

    Returns:
        ``(leader, rider)`` — two ``(ramp_j, transfer_j, tail_j)``
        triples; every rider receives the same ``rider`` share.
    """
    if riders < 0:
        raise ValueError(f"riders must be non-negative, got {riders}")
    if riders == 0:
        return (ramp_j, transfer_j, tail_j), (0.0, 0.0, 0.0)
    k = riders + 1
    rider_ramp = ramp_j / k
    rider_tail = tail_j / k
    leader = (
        ramp_j - riders * rider_ramp,
        transfer_j,
        tail_j - riders * rider_tail,
    )
    return leader, (rider_ramp, 0.0, rider_tail)


class EnergyLedger:
    """Running conservation check: attributed vs timeline radio joules.

    ``attributed_j`` accumulates the radio portion of every response's
    energy breakdown; ``timeline_j`` accumulates the simulated radio
    timeline's spend (the full fetch energy, recorded once per flight by
    its leader).  If attribution is correct the two track each other:
    riders contribute their shares to ``attributed_j`` and nothing to
    ``timeline_j``, and the leader's reduced share closes the gap.
    """

    __slots__ = ("attributed_j", "timeline_j", "requests")

    def __init__(self) -> None:
        self.attributed_j = 0.0
        self.timeline_j = 0.0
        self.requests = 0

    def add(self, attributed_radio_j: float, timeline_j: float) -> None:
        """Record one response's radio attribution and timeline spend."""
        self.attributed_j += attributed_radio_j
        self.timeline_j += timeline_j
        self.requests += 1

    @property
    def conservation_error_j(self) -> float:
        return self.attributed_j - self.timeline_j

    def conserved(self, tol_j: Optional[float] = None) -> bool:
        """Whether attribution matches the timeline within ``tol_j``.

        The default tolerance scales with the totals (float sums over
        many requests accumulate ulp noise) but never exceeds a
        microjoule per run — far below one request's energy.
        """
        if tol_j is None:
            tol_j = max(1e-9, 1e-12 * abs(self.timeline_j))
        return abs(self.conservation_error_j) <= tol_j

    def snapshot(self) -> Dict[str, float]:
        return {
            "attributed_radio_j": self.attributed_j,
            "timeline_radio_j": self.timeline_j,
            "conservation_error_j": self.conservation_error_j,
            "requests": self.requests,
        }


class EnergyWindows:
    """Windowed energy telemetry over a shared bucket geometry.

    One instance rides inside the serve telemetry plane; feed it every
    completed response via :meth:`on_request` and read the rolling view
    with :meth:`rolling` / :meth:`per_bucket` / :meth:`snapshot`.
    """

    def __init__(self, registry: TimeSeriesRegistry) -> None:
        self._registry = registry
        self._energy = registry.histogram("serve.energy_j")
        self._hit_energy = registry.histogram("serve.hit_energy_j")
        self._miss_energy = registry.histogram("serve.miss_energy_j")
        self._total = registry.counter("serve.energy_j_total")
        self._by_source: Dict[str, WindowedCounter] = {}
        self.ledger = EnergyLedger()

    def on_request(
        self,
        t: float,
        source: str,
        hit: bool,
        breakdown: EnergyBreakdown,
        timeline_j: float,
    ) -> None:
        """Record one attributed response.

        Args:
            t: loop-clock completion time.
            source: service source label (``"cache"``, ``"3g"``, ...).
            hit: whether the request hit the cache.
            breakdown: the response's attributed energy breakdown.
            timeline_j: simulated radio-timeline energy this response is
                responsible for reporting (the full fetch for a
                leader/solo fetch, 0.0 for riders).
        """
        total = breakdown.total_j
        self._energy.observe(t, total)
        (self._hit_energy if hit else self._miss_energy).observe(t, total)
        self._total.inc(t, total)
        counter = self._by_source.get(source)
        if counter is None:
            counter = self._registry.counter("serve.energy_j." + source)
            self._by_source[source] = counter
        counter.inc(t, total)
        self.ledger.add(breakdown.radio_j, timeline_j)

    # -- read side -----------------------------------------------------------

    def rolling(self, t: float) -> Dict[str, Any]:
        """Headline rolling energy stats over the window ending at ``t``."""
        hit_mean = self._hit_energy.mean(t)
        miss_mean = self._miss_energy.mean(t)
        ratio = float("nan")
        if self._hit_energy.count(t) and self._miss_energy.count(t) and hit_mean:
            ratio = miss_mean / hit_mean
        return {
            "energy_j_per_query": self._energy.mean(t),
            "energy_j_p50": self._energy.quantile(t, 50),
            "energy_j_p99": self._energy.quantile(t, 99),
            "power_w": self._total.rate(t),
            "hit_energy_j": hit_mean,
            "miss_energy_j": miss_mean,
            "hit_miss_energy_ratio": ratio,
            "sources": {
                name: {
                    "energy_j": counter.total(t),
                    "power_w": counter.rate(t),
                }
                for name, counter in sorted(self._by_source.items())
            },
            "conservation": self.ledger.snapshot(),
        }

    def per_bucket(self, t: float) -> List[Dict[str, Any]]:
        """Aligned per-bucket energy rows, oldest first.

        Each row carries the bucket's total joules, its average power
        (joules over the bucket width — the online power trace), the
        mean joules per completed query, and the per-source wattage.
        """
        width = self._registry.width_s
        totals = dict(self._total.per_bucket(t))
        hist = {row["t_start"]: row for row in self._energy.per_bucket(t)}
        sources = {
            name: dict(counter.per_bucket(t))
            for name, counter in sorted(self._by_source.items())
        }
        starts = sorted(set(totals) | set(hist))
        rows = []
        for start in starts:
            joules = totals.get(start, 0.0)
            hrow = hist.get(start, {})
            rows.append(
                {
                    "t_start": start,
                    "energy_j": joules,
                    "power_w": joules / width,
                    "count": hrow.get("count", 0),
                    "energy_j_per_query": hrow.get("mean"),
                    "sources": {
                        name: buckets.get(start, 0.0) / width
                        for name, buckets in sources.items()
                    },
                }
            )
        return rows

    def snapshot(self, t: float) -> Dict[str, Any]:
        return {
            "rolling": self.rolling(t),
            "per_bucket": self.per_bucket(t),
        }
