"""Machine-readable run manifests for experiments and benchmarks.

Every measured run should leave behind a small JSON record of *what ran
and under which conditions*: the artifact/bench name, its configuration,
the RNG seed, the git commit, wall time, and peak RSS.  Manifests make
runs comparable across commits — the perf-trajectory tooling
(``benchmarks/emit_bench_json.py``) aggregates them.

Usage::

    from repro.obs.manifest import ManifestRecorder

    with ManifestRecorder("fig17", config={"users": 5}, seed=23) as rec:
        run_experiment()
    rec.manifest.write("manifests/fig17.json")
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "ManifestRecorder",
    "RunManifest",
    "collect_manifest",
    "git_sha",
    "peak_rss_bytes",
]

#: Manifest schema version; bump on incompatible field changes.
SCHEMA_VERSION = 1


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, in bytes.

    Uses :mod:`resource` where available (POSIX); returns ``None``
    elsewhere.  Linux reports ``ru_maxrss`` in KiB, macOS in bytes.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return int(rss)
    return int(rss) * 1024


@dataclass
class RunManifest:
    """One run's provenance and resource record.

    Attributes:
        name: artifact or benchmark identifier.
        config: run parameters (users, months, policy knobs, ...).
        seed: primary RNG seed, when the run has one.
        git_sha: commit the code ran at (``None`` outside a checkout).
        started_at: ISO-8601 UTC start timestamp.
        wall_time_s: elapsed wall-clock seconds.
        peak_rss_bytes: process peak RSS after the run.
        python: interpreter version string.
        platform: OS/machine identifier.
        metrics: optional registry snapshot or result summary.
        schema_version: manifest schema revision.
    """

    name: str
    config: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    git_sha: Optional[str] = None
    started_at: str = ""
    wall_time_s: float = 0.0
    peak_rss_bytes: Optional[int] = None
    python: str = ""
    platform: str = ""
    metrics: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> str:
        """Write the manifest as JSON, creating parent dirs; returns path."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "RunManifest":
        known = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in raw.items() if k in known})

    @classmethod
    def read(cls, path: str) -> "RunManifest":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def collect_manifest(
    name: str,
    config: Optional[Dict[str, Any]] = None,
    seed: Optional[int] = None,
    wall_time_s: float = 0.0,
    metrics: Optional[Dict[str, Any]] = None,
) -> RunManifest:
    """Build a manifest from the current process state."""
    return RunManifest(
        name=name,
        config=dict(config or {}),
        seed=seed,
        git_sha=git_sha(),
        started_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        wall_time_s=wall_time_s,
        peak_rss_bytes=peak_rss_bytes(),
        python=platform.python_version(),
        platform=f"{platform.system()}-{platform.machine()}",
        metrics=dict(metrics or {}),
    )


class ManifestRecorder:
    """Context manager that times a run and assembles its manifest.

    The manifest is available as :attr:`manifest` after the block exits
    (including on error, with an ``"error"`` key in ``metrics``).
    """

    def __init__(
        self,
        name: str,
        config: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.name = name
        self.config = dict(config or {})
        self.seed = seed
        self.metrics: Dict[str, Any] = {}
        self.manifest: Optional[RunManifest] = None
        self._t0 = 0.0

    def add_metric(self, key: str, value: Any) -> None:
        self.metrics[key] = value

    def __enter__(self) -> "ManifestRecorder":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.metrics["error"] = exc_type.__name__
        self.manifest = collect_manifest(
            self.name,
            config=self.config,
            seed=self.seed,
            wall_time_s=time.perf_counter() - self._t0,
            metrics=self.metrics,
        )
        return False
