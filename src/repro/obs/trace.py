"""Lightweight span tracer with ring-buffered JSONL export.

Instrumented code asks for the module-level tracer at call time and opens
spans around interesting work::

    from repro.obs.trace import get_tracer

    def serve(query):
        tracer = get_tracer()
        with tracer.span("serve_query", query=query) as span:
            ...
            span.set_attr("hit", hit)

By default :func:`get_tracer` returns a shared no-op singleton whose
``span()`` hands back one reusable null context manager — no allocation,
no clock reads — so instrumentation is near-free until a caller installs
a recording tracer with :func:`enable`.  Inner loops that want to skip
even attribute packing can guard on ``tracer.enabled``.

The recording tracer keeps the newest ``capacity`` records in a ring
buffer (old spans fall off the back of million-query replays instead of
exhausting memory) and serializes them to JSON Lines, one record per
line, via :meth:`Tracer.export_jsonl`.

The tracer tracks the open-span stack in a :class:`~contextvars.ContextVar`,
so spans nest correctly both across worker threads *and* across
interleaved asyncio tasks: each task (and each thread) sees its own
stack, and a task spawned inside a span parents its spans under the span
that was open at spawn time.  Record storage is guarded by a lock, so
many tasks and threads can finish spans concurrently.
"""

from __future__ import annotations

import json
import threading
import time
import warnings
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "NULL_TRACER",
    "Segment",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "disable",
    "enable",
    "get_tracer",
    "set_tracer",
]

#: Default ring-buffer capacity: enough for a full small replay while
#: bounding memory for unbounded runs (~150 bytes/record -> ~40 MB).
DEFAULT_CAPACITY = 262_144


@dataclass
class SpanRecord:
    """One completed span or point event.

    Attributes:
        name: span name (e.g. ``"serve_query"``).
        span_id: unique id within this tracer.
        parent_id: enclosing span's id, or ``None`` at top level.
        t_start: start offset in seconds since the tracer was created.
        duration_s: wall-clock duration (0.0 for point events).
        kind: ``"span"`` or ``"event"``.
        attrs: caller-supplied attributes.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    t_start: float
    duration_s: float
    kind: str = "span"
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_start": self.t_start,
            "duration_s": self.duration_s,
            "kind": self.kind,
            "attrs": self.attrs,
        }


@dataclass(frozen=True)
class Segment:
    """One contiguous phase of a request's lifetime.

    Attributes:
        name: phase label (``"queue_wait"``, ``"batch_wait"``,
            ``"service"``, ``"refresh_blocked"``, ...).
        t_start: loop-clock start of the phase.
        t_end: loop-clock end of the phase.
    """

    name: str
    t_start: float
    t_end: float

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "duration_s": self.duration_s,
        }


class TraceContext:
    """Request-scoped trace: one id plus causally ordered phase marks.

    A context is created at admission time and threaded along with the
    request (queue tuple → session worker → miss batcher), collecting a
    *mark* at each phase boundary.  Phases are defined **between
    consecutive marks**, so the segment durations telescope: their sum
    is exactly ``last mark - first mark``, which is what lets a response
    assert ``queue_wait + refresh_blocked + batch_wait + service ==
    end-to-end latency`` to float equality rather than within some
    slop.

    Marks carry the *name of the phase they end*.  ``annotations`` is a
    free-form dict for causal links (e.g. the leader trace a piggybacked
    miss rode on) and backend facts (hit/miss, refreshes applied).

    ``energy`` mirrors the time breakdown in joules: the serving layer
    attaches an :class:`~repro.obs.energy.EnergyBreakdown` once the
    request's share of the radio timeline is known (post miss-batching),
    and it rides along into exemplar payloads via :meth:`to_dict`.
    """

    __slots__ = ("trace_id", "marks", "annotations", "energy")

    def __init__(self, trace_id: int, t_origin: float) -> None:
        self.trace_id = trace_id
        #: ``(phase_name, t)`` pairs; index 0 is the origin mark.
        self.marks: List[Tuple[str, float]] = [("enqueued", t_origin)]
        self.annotations: Dict[str, Any] = {}
        #: attributed energy breakdown (set by the serving layer)
        self.energy: Optional[Any] = None

    @property
    def t_origin(self) -> float:
        return self.marks[0][1]

    @property
    def t_last(self) -> float:
        return self.marks[-1][1]

    def mark(self, phase: str, t: float) -> None:
        """Close phase ``phase`` at loop time ``t``."""
        self.marks.append((phase, t))

    def annotate(self, **attrs: Any) -> None:
        self.annotations.update(attrs)

    def segments(self) -> List[Segment]:
        """The causally ordered phase timeline."""
        return [
            Segment(name, self.marks[i - 1][1], t)
            for i, (name, t) in enumerate(self.marks)
            if i > 0
        ]

    def segment_s(self, phase: str) -> float:
        """Total seconds spent in ``phase`` (0.0 if never marked)."""
        return sum(
            t - self.marks[i - 1][1]
            for i, (name, t) in enumerate(self.marks)
            if i > 0 and name == phase
        )

    def breakdown(self) -> Dict[str, float]:
        """Phase -> seconds; keys in first-marked order."""
        out: Dict[str, float] = {}
        for i, (name, t) in enumerate(self.marks):
            if i == 0:
                continue
            out[name] = out.get(name, 0.0) + (t - self.marks[i - 1][1])
        return out

    def end_to_end_s(self) -> float:
        """First mark to last mark — the full traced lifetime."""
        return self.t_last - self.t_origin

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "trace_id": self.trace_id,
            "t_origin": self.t_origin,
            "end_to_end_s": self.end_to_end_s(),
            "segments": [s.to_dict() for s in self.segments()],
            "breakdown": self.breakdown(),
            "annotations": dict(self.annotations),
        }
        if self.energy is not None:
            out["energy"] = self.energy.to_dict()
        return out


class _ActiveSpan:
    """An open span; used as a context manager."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "t_start", "attrs")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        t_start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_start = t_start
        self.attrs = attrs

    def set_attr(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def set_attrs(self, **attrs: Any) -> None:
        """Attach several attributes to the span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._finish(self)
        return False


class _NullSpan:
    """Reusable do-nothing span handed out by the disabled tracer."""

    __slots__ = ()

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def set_attrs(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    ``span()`` returns one shared null context manager, so the cost of an
    instrumented call site with tracing off is a method call and nothing
    else.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def records(self) -> List[SpanRecord]:
        return []

    def clear(self) -> None:
        pass

    def export_jsonl(self, path: str) -> int:
        raise RuntimeError(
            "tracing is disabled; call repro.obs.trace.enable() first"
        )


NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer with a bounded ring buffer.

    Args:
        capacity: maximum retained records; older records are evicted.
        clock: monotonic time source (injectable for tests).
        sample_rate: fraction of finished records kept, in (0, 1].
            Sampling is *systematic* (an accumulator keeps every
            ``1/rate``-th record) rather than random, so a sampled trace
            of a deterministic run is itself deterministic.  Sampled-out
            records count toward :attr:`spans_dropped` so a thinned
            trace is detectable from its meta line.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: Callable[[], float] = time.perf_counter,
        sample_rate: float = 1.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in (0, 1], got {sample_rate}"
            )
        self.capacity = capacity
        self.sample_rate = sample_rate
        self._sample_acc = 0.0
        self.sampled_out = 0  # records discarded by sampling
        self._clock = clock
        self._epoch = clock()
        self._records: deque = deque(maxlen=capacity)
        # The open-span stack is an immutable tuple held in a ContextVar:
        # every thread and every asyncio task sees (and rebinds) its own
        # stack, so concurrent spans never corrupt each other's parents.
        self._stack_var: ContextVar[Tuple["_ActiveSpan", ...]] = ContextVar(
            "repro_obs_span_stack", default=()
        )
        self._lock = threading.Lock()
        self._next_id = 0
        self.dropped = 0  # records evicted from the ring
        self._drop_warned = False

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        stack = self._stack_var.get()
        parent_id = stack[-1].span_id if stack else None
        span = _ActiveSpan(
            self, name, self._new_id(), parent_id, self._now(), attrs
        )
        self._stack_var.set(stack + (span,))
        return span

    def event(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration point event under the current span."""
        stack = self._stack_var.get()
        parent_id = stack[-1].span_id if stack else None
        self._append(
            SpanRecord(
                name=name,
                span_id=self._new_id(),
                parent_id=parent_id,
                t_start=self._now(),
                duration_s=0.0,
                kind="event",
                attrs=attrs,
            )
        )

    def _finish(self, span: _ActiveSpan) -> None:
        stack = self._stack_var.get()
        # Tolerate out-of-order exits (generators, exceptions): unwind to
        # the closing span rather than corrupting the stack.  A span
        # finished from a different task/thread than the one that opened
        # it simply isn't on this context's stack — leave it untouched.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is span:
                self._stack_var.set(stack[:i])
                break
        self._append(
            SpanRecord(
                name=span.name,
                span_id=span.span_id,
                parent_id=span.parent_id,
                t_start=span.t_start,
                duration_s=self._now() - span.t_start,
                kind="span",
                attrs=span.attrs,
            )
        )

    # -- record access ------------------------------------------------------

    def records(self) -> List[SpanRecord]:
        """A snapshot of the retained records, oldest first."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        """Drop all retained records (open spans are unaffected)."""
        with self._lock:
            self._records.clear()
            self.dropped = 0
            self.sampled_out = 0
            self._sample_acc = 0.0
            self._drop_warned = False

    @property
    def spans_dropped(self) -> int:
        """Records not retained since the last clear: ring evictions
        plus records discarded by the sampler."""
        return self.dropped + self.sampled_out

    def export_jsonl(self, path: str) -> int:
        """Write retained records as JSON Lines; returns the record count.

        The first line is a ``meta`` record carrying the ring capacity
        and the eviction count, so a truncated trace is detectable from
        the file alone.
        """
        records = self.records()
        with open(path, "w") as fh:
            fh.write(
                json.dumps(
                    {
                        "kind": "meta",
                        "capacity": self.capacity,
                        "spans_dropped": self.spans_dropped,
                        "sampled_out": self.sampled_out,
                        "sample_rate": self.sample_rate,
                        "n_records": len(records),
                    }
                )
                + "\n"
            )
            for record in records:
                fh.write(json.dumps(record.to_dict()) + "\n")
        return len(records)

    # -- internals ----------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._epoch

    def _new_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def _append(self, record: SpanRecord) -> None:
        warn_now = False
        with self._lock:
            if self.sample_rate < 1.0:
                self._sample_acc += self.sample_rate
                if self._sample_acc >= 1.0:
                    self._sample_acc -= 1.0
                else:
                    self.sampled_out += 1
                    return
            if len(self._records) == self.capacity:
                self.dropped += 1
                if not self._drop_warned:
                    self._drop_warned = True
                    warn_now = True
            self._records.append(record)
        if warn_now:
            warnings.warn(
                f"span ring buffer full (capacity {self.capacity}); oldest "
                "spans are being dropped — raise the tracer capacity for a "
                "complete trace",
                RuntimeWarning,
                stacklevel=3,
            )


# -- module-level tracer -----------------------------------------------------

_tracer = NULL_TRACER


def get_tracer():
    """The process-wide tracer (a no-op singleton unless enabled)."""
    return _tracer


def set_tracer(tracer) -> None:
    """Install ``tracer`` as the process-wide tracer."""
    global _tracer
    _tracer = tracer


def enable(
    capacity: int = DEFAULT_CAPACITY, sample_rate: float = 1.0
) -> Tracer:
    """Install and return a fresh recording tracer."""
    tracer = Tracer(capacity=capacity, sample_rate=sample_rate)
    set_tracer(tracer)
    return tracer


def disable() -> None:
    """Restore the no-op tracer."""
    set_tracer(NULL_TRACER)


def load_jsonl(path: str) -> List[SpanRecord]:
    """Read a trace file written by :meth:`Tracer.export_jsonl`."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            if raw.get("kind") == "meta":
                continue
            records.append(
                SpanRecord(
                    name=raw["name"],
                    span_id=raw["span_id"],
                    parent_id=raw["parent_id"],
                    t_start=raw["t_start"],
                    duration_s=raw["duration_s"],
                    kind=raw.get("kind", "span"),
                    attrs=raw.get("attrs", {}),
                )
            )
    return records


def span_breakdown(records: Iterable[SpanRecord]) -> List[Dict[str, Any]]:
    """Aggregate records into a per-name span-time table.

    Self time is a span's duration minus its direct children's durations
    (events contribute zero).  Rows are sorted by total self time,
    descending — the profile view of ``repro profile``.
    """
    records = list(records)
    child_time: Dict[int, float] = {}
    for r in records:
        if r.parent_id is not None:
            child_time[r.parent_id] = (
                child_time.get(r.parent_id, 0.0) + r.duration_s
            )
    rows: Dict[str, Dict[str, Any]] = {}
    for r in records:
        row = rows.setdefault(
            r.name,
            {"name": r.name, "kind": r.kind, "count": 0, "total_s": 0.0,
             "self_s": 0.0},
        )
        row["count"] += 1
        row["total_s"] += r.duration_s
        row["self_s"] += max(0.0, r.duration_s - child_time.get(r.span_id, 0.0))
    out = sorted(rows.values(), key=lambda d: d["self_s"], reverse=True)
    for row in out:
        row["mean_ms"] = row["total_s"] / row["count"] * 1e3
    return out
