"""Named counters, gauges, and bounded-memory streaming histograms.

The registry gives experiment and replay code a place to accumulate
aggregates without retaining per-event objects:

* :class:`Counter` — monotonically increasing count.
* :class:`Gauge` — last-set value.
* :class:`StreamingHistogram` — count/sum/min/max plus a fixed-size
  uniform reservoir (Vitter's algorithm R), answering arbitrary
  percentile queries in O(reservoir) memory.  q=0 and q=100 are exact
  (tracked min/max); interior quantiles are estimates whose error
  shrinks with reservoir size.
* :class:`P2Quantile` — the P² single-quantile estimator (Jain &
  Chlamtac 1985): five markers, O(1) memory, no samples retained.

All structures are deterministic: the reservoir uses a seeded PRNG so a
replay produces identical percentile estimates run to run.

Instruments and the registry are safe for concurrent use from threads
and asyncio tasks: get-or-create is serialized by a registry lock, and
each mutating instrument guards its state with its own lock (``inc`` on
a shared counter from N threads never loses an increment).  Single-task
asyncio code pays one uncontended lock acquisition per record — noise
next to the arithmetic it protects.
"""

from __future__ import annotations

import json
import math
import random
import threading
from typing import Any, Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "P2Quantile",
    "StreamingHistogram",
    "get_registry",
]


class Counter:
    """A monotonically increasing named count (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increment must be non-negative, got {n}")
        with self._lock:
            self.value += n

    def __getstate__(self):
        return {"name": self.name, "value": self.value}

    def __setstate__(self, state) -> None:
        self.name = state["name"]
        self.value = state["value"]
        self._lock = threading.Lock()

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A named last-value-wins measurement (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.value = value

    def max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is higher (high-watermark)."""
        value = float(value)
        with self._lock:
            if value > self.value:
                self.value = value

    def __getstate__(self):
        return {"name": self.name, "value": self.value}

    def __setstate__(self, state) -> None:
        self.name = state["name"]
        self.value = state["value"]
        self._lock = threading.Lock()

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class P2Quantile:
    """Streaming estimate of a single quantile via the P² algorithm.

    Keeps five markers whose heights converge on the ``p``-quantile of
    the stream without storing observations.  Exact until five samples
    have arrived.

    Args:
        p: target quantile in (0, 1), e.g. 0.95.
    """

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        self.p = p
        self._heights: List[float] = []
        self._positions = [0, 1, 2, 3, 4]
        self._desired = [0.0, 0.0, 0.0, 0.0, 0.0]
        self._increments = [0.0, p / 2, p, (1 + p) / 2, 1.0]
        self.count = 0
        self._lock = threading.Lock()

    def add(self, x: float) -> None:
        with self._lock:
            self._add_locked(x)

    def _add_locked(self, x: float) -> None:
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(x)
            heights.sort()
            if len(heights) == 5:
                self._positions = [0, 1, 2, 3, 4]
                self._desired = [
                    0.0,
                    1 + 2 * self.p,
                    1 + 4 * self.p,
                    3 + 2 * self.p,
                    4.0,
                ]
            return

        # Find the cell containing x and bump marker positions.
        if x < heights[0]:
            heights[0] = x
            k = 0
        elif x >= heights[4]:
            heights[4] = x
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if x < heights[i]:
                    k = i - 1
                    break
            else:
                k = 3
        for i in range(k + 1, 5):
            self._positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]

        # Adjust the three interior markers toward their desired positions.
        for i in range(1, 4):
            d = self._desired[i] - self._positions[i]
            pos, prev_pos, next_pos = (
                self._positions[i],
                self._positions[i - 1],
                self._positions[i + 1],
            )
            if (d >= 1 and next_pos - pos > 1) or (d <= -1 and prev_pos - pos < -1):
                step = 1 if d >= 1 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, d: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + d * (h[i + d] - h[i]) / (n[i + d] - n[i])

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        """Current estimate (``nan`` before any samples)."""
        if not self._heights:
            return float("nan")
        if len(self._heights) < 5:
            # Exact quantile over the few retained samples (nearest-rank).
            rank = max(0, math.ceil(self.p * len(self._heights)) - 1)
            return self._heights[rank]
        return self._heights[2]


class StreamingHistogram:
    """Bounded-memory distribution summary with percentile queries.

    Tracks count, sum, exact min/max, and a fixed-size uniform sample of
    the stream (reservoir sampling, algorithm R).  ``quantile(0)`` and
    ``quantile(100)`` return the exact extremes; interior quantiles are
    nearest-rank over the reservoir.

    Args:
        reservoir_size: retained sample count (memory bound).
        seed: PRNG seed; fixed by default so estimates are reproducible.
    """

    def __init__(self, reservoir_size: int = 1024, seed: int = 0x5EED) -> None:
        if reservoir_size <= 0:
            raise ValueError(
                f"reservoir_size must be positive, got {reservoir_size}"
            )
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._sample: List[float] = []
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        # Reentrant: snapshot() calls quantile() under the same lock.
        self._lock = threading.RLock()

    def add(self, x: float) -> None:
        x = float(x)
        with self._lock:
            self._add_locked(x)

    def _add_locked(self, x: float) -> None:
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        if len(self._sample) < self.reservoir_size:
            self._sample.append(x)
        else:
            j = self._rng.randrange(self.count)
            if j < self.reservoir_size:
                self._sample[j] = x

    def extend(self, xs) -> None:
        with self._lock:
            for x in xs:
                self._add_locked(float(x))

    @property
    def mean(self) -> float:
        """Stream mean (``nan`` when empty)."""
        with self._lock:
            if self.count == 0:
                return float("nan")
            return self.total / self.count

    def samples(self) -> List[float]:
        """A copy of the retained reservoir sample."""
        with self._lock:
            return list(self._sample)

    def quantile(self, q: float) -> float:
        """Percentile ``q`` in [0, 100] (``nan`` when empty).

        Exact at the extremes, nearest-rank over the reservoir between.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if self.count == 0:
                return float("nan")
            if q == 0:
                return self.min
            if q == 100:
                return self.max
            ordered = sorted(self._sample)
        rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
        return ordered[rank]

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other`` into this histogram.

        Exact for count/sum/min/max; the merged reservoir is a
        count-weighted subsample of both reservoirs (an approximation —
        documented, deterministic).
        """
        # Lock both sides in a stable order so concurrent cross-merges
        # (A.merge(B) while B.merge(A)) cannot deadlock.
        first, second = sorted((self, other), key=id)
        with first._lock, second._lock:
            self._merge_locked(other)

    def _merge_locked(self, other: "StreamingHistogram") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self.min = other.min
            self.max = other.max
            self._sample = list(other._sample)
            return
        total = self.count + other.count
        avail_self, avail_other = len(self._sample), len(other._sample)
        if avail_self + avail_other <= self.reservoir_size:
            # Everything fits: keep every retained sample, no subsampling.
            merged = self._sample + list(other._sample)
        else:
            # Count-weighted split of the reservoir.  Clamp both shares
            # to [1, size-1]: plain round() starves the lighter side to
            # zero under extreme count skew, silently discarding a
            # non-empty reservoir.  Quota a side cannot fill (its
            # reservoir is smaller than its share) is reallocated to
            # the other side so the merged reservoir stays full
            # whenever enough samples exist.
            size = self.reservoir_size
            take_self = min(
                max(round(size * self.count / total), 1), size - 1
            )
            take_other = size - take_self
            spill_self = max(0, take_self - avail_self)
            spill_other = max(0, take_other - avail_other)
            take_self = min(take_self + spill_other, avail_self)
            take_other = min(take_other + spill_self, avail_other)
            merged = self._subsample(
                self._sample, take_self
            ) + self._subsample(other._sample, take_other)
        self.count = total
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self._sample = merged

    def _subsample(self, sample: List[float], k: int) -> List[float]:
        if k <= 0:
            return []
        if len(sample) <= k:
            return list(sample)
        return self._rng.sample(sample, k)

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "count": self.count,
                "sum": self.total,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "mean": self.total / self.count if self.count else None,
                "p50": self.quantile(50) if self.count else None,
                "p95": self.quantile(95) if self.count else None,
                "p99": self.quantile(99) if self.count else None,
            }


class MetricsRegistry:
    """Get-or-create registry of named instruments (thread-safe)."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, reservoir_size: int = 1024
    ) -> StreamingHistogram:
        return self._get_or_create(
            name,
            StreamingHistogram,
            lambda: StreamingHistogram(reservoir_size=reservoir_size),
        )

    def _get_or_create(self, name, expected_type, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, expected_type):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {expected_type.__name__}"
                )
            return instrument

    def get(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as plain dicts (for manifests / JSON export)."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        return {name: inst.snapshot() for name, inst in instruments}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry
