"""Request/response types of the online serving layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.obs.energy import EnergyBreakdown
from repro.obs.trace import TraceContext
from repro.pocketsearch.content import DEFAULT_RECORD_BYTES
from repro.sim.metrics import QueryOutcome

__all__ = [
    "Overloaded",
    "SEGMENT_NAMES",
    "ServeRequest",
    "ServeResponse",
    "ServeReply",
    "TIER_NAMES",
]

#: Segment names every response breakdown reports, in causal order.
#: The edge segments stay 0.0 when no cloudlet tier is configured.
SEGMENT_NAMES = (
    "queue_wait",
    "refresh_blocked",
    "edge_hop",
    "edge_serve",
    "batch_wait",
    "service",
)

#: The serving tiers a request can be answered by, fetch-chain order.
TIER_NAMES = ("device", "edge", "origin")


@dataclass(frozen=True)
class ServeRequest:
    """One live request from a device.

    Attributes:
        device_id: the phone issuing the request (one cache per device).
        key: the lookup key — a query string for PocketSearch, a URL for
            PocketWeb, a packed tile key for PocketMaps.
        timestamp: logical event time in log seconds; carried into the
            recorded :class:`~repro.sim.metrics.QueryOutcome` so serve
            accounting lines up with replay accounting.
        clicked_url: the result the user selects (drives personalization).
        record_bytes: stored size of the clicked result.
        navigational: optional nav flag recorded in the outcome.
    """

    device_id: int
    key: str
    timestamp: float = 0.0
    clicked_url: str = ""
    record_bytes: int = DEFAULT_RECORD_BYTES
    navigational: Optional[bool] = None


@dataclass(frozen=True)
class ServeResponse:
    """A served (admitted and completed) request.

    Times are loop-clock seconds (simulated or wall, depending on the
    loop the server ran under).  The *modelled* device-side cost lives in
    ``outcome``; queueing the serve layer added on top is the difference
    between ``sojourn_s`` and the model latency.
    """

    request: ServeRequest
    outcome: QueryOutcome
    enqueued_at: float
    started_at: float
    completed_at: float
    #: miss piggybacked on another device's identical in-flight fetch
    shared_fetch: bool = False
    #: request-scoped trace: id + causally ordered phase segments
    trace: Optional[TraceContext] = field(default=None, compare=False)
    #: attributed energy breakdown (shared-fetch radio energy already
    #: split across participants); observability metadata, never fed
    #: back into ``outcome``
    energy: Optional[EnergyBreakdown] = field(default=None, compare=False)
    #: simulated radio-timeline joules this response reports for the
    #: conservation ledger (full fetch for a leader/solo, 0.0 for riders)
    radio_timeline_j: float = field(default=0.0, compare=False)
    #: which tier answered: ``"device"`` (personal cache hit), ``"edge"``
    #: (owning cloudlet's community slice), or ``"origin"`` (full fetch)
    tier: str = field(default="device", compare=False)
    #: cloudlet node consulted on the edge path (None off the edge path)
    edge_node: Optional[int] = field(default=None, compare=False)

    ok = True

    @property
    def queue_wait_s(self) -> float:
        return self.started_at - self.enqueued_at

    @property
    def sojourn_s(self) -> float:
        """Submission-to-completion time as the user experienced it."""
        return self.completed_at - self.enqueued_at

    @property
    def trace_id(self) -> Optional[int]:
        return self.trace.trace_id if self.trace is not None else None

    @property
    def refresh_blocked_s(self) -> float:
        """Dequeue-to-service time lost waiting out a session refresh."""
        return self.trace.segment_s("refresh_blocked") if self.trace else 0.0

    @property
    def batch_wait_s(self) -> float:
        """Time spent inside the shared single-flight radio fetch."""
        return self.trace.segment_s("batch_wait") if self.trace else 0.0

    @property
    def service_s(self) -> float:
        """Modelled device-side service time outside the shared fetch."""
        if self.trace is not None:
            return self.trace.segment_s("service")
        return self.sojourn_s - self.queue_wait_s

    @property
    def energy_j(self) -> float:
        """Total attributed joules (0.0 when no breakdown was recorded)."""
        return self.energy.total_j if self.energy is not None else 0.0

    def energy_breakdown(self) -> Dict[str, float]:
        """Component -> joules (all zeros when no breakdown was recorded)."""
        if self.energy is None:
            return EnergyBreakdown().to_dict()
        return self.energy.to_dict()

    def breakdown(self) -> Dict[str, float]:
        """Phase -> seconds over :data:`SEGMENT_NAMES`.

        Segments telescope between consecutive trace marks, so the
        values sum *exactly* to ``sojourn_s`` — the property the
        trace-propagation tests assert to 1e-9.
        """
        if self.trace is None:
            out = {name: 0.0 for name in SEGMENT_NAMES}
            out["queue_wait"] = self.queue_wait_s
            out["service"] = self.sojourn_s - self.queue_wait_s
            return out
        got = self.trace.breakdown()
        return {name: got.get(name, 0.0) for name in SEGMENT_NAMES}

    def hop_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-tier latency seconds and attributed joules.

        Latency partitions the trace segments by the tier that spent
        them (device: queueing, refresh blocking, and local service;
        edge: the cloudlet round trip and its community-slice service;
        origin: the batched radio fetch).  Energy sends the attributed
        radio joules to the tier the radio reached — the answering
        ``tier`` for misses, the device itself for hits — and keeps the
        storage/render/base components on the device.  Both views
        re-sum to ``sojourn_s`` / ``energy_j`` within 1e-9 (the only
        differences are float association order).
        """
        seg = self.breakdown()
        latency = {
            "device": (seg["queue_wait"] + seg["refresh_blocked"])
            + seg["service"],
            "edge": seg["edge_hop"] + seg["edge_serve"],
            "origin": seg["batch_wait"],
        }
        energy = {name: 0.0 for name in TIER_NAMES}
        if self.energy is not None:
            energy["device"] = (
                self.energy.storage_j + self.energy.render_j
            ) + self.energy.base_j
            radio_tier = self.tier if self.tier in TIER_NAMES else "device"
            energy[radio_tier] += self.energy.radio_j
        return {
            name: {"latency_s": latency[name], "energy_j": energy[name]}
            for name in TIER_NAMES
        }


@dataclass(frozen=True)
class Overloaded:
    """Typed shed response: the server refused the request at admission.

    Reasons:
        ``"device-queue-full"`` — the per-device bounded queue was full;
        ``"server-busy"`` — the global in-flight cap was reached;
        ``"edge-queue-full"`` — the owning cloudlet node's in-flight
        bound was reached (shed mid-flight, on the edge hop).
    """

    request: ServeRequest
    reason: str
    t: float
    #: trace of the rejected request (one ``shed`` segment)
    trace: Optional[TraceContext] = field(default=None, compare=False)

    ok = False

    @property
    def trace_id(self) -> Optional[int]:
        return self.trace.trace_id if self.trace is not None else None


#: What a submitted request resolves to.
ServeReply = Union[ServeResponse, Overloaded]
