"""Request/response types of the online serving layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.pocketsearch.content import DEFAULT_RECORD_BYTES
from repro.sim.metrics import QueryOutcome

__all__ = ["Overloaded", "ServeRequest", "ServeResponse", "ServeReply"]


@dataclass(frozen=True)
class ServeRequest:
    """One live request from a device.

    Attributes:
        device_id: the phone issuing the request (one cache per device).
        key: the lookup key — a query string for PocketSearch, a URL for
            PocketWeb, a packed tile key for PocketMaps.
        timestamp: logical event time in log seconds; carried into the
            recorded :class:`~repro.sim.metrics.QueryOutcome` so serve
            accounting lines up with replay accounting.
        clicked_url: the result the user selects (drives personalization).
        record_bytes: stored size of the clicked result.
        navigational: optional nav flag recorded in the outcome.
    """

    device_id: int
    key: str
    timestamp: float = 0.0
    clicked_url: str = ""
    record_bytes: int = DEFAULT_RECORD_BYTES
    navigational: Optional[bool] = None


@dataclass(frozen=True)
class ServeResponse:
    """A served (admitted and completed) request.

    Times are loop-clock seconds (simulated or wall, depending on the
    loop the server ran under).  The *modelled* device-side cost lives in
    ``outcome``; queueing the serve layer added on top is the difference
    between ``sojourn_s`` and the model latency.
    """

    request: ServeRequest
    outcome: QueryOutcome
    enqueued_at: float
    started_at: float
    completed_at: float
    #: miss piggybacked on another device's identical in-flight fetch
    shared_fetch: bool = False

    ok = True

    @property
    def queue_wait_s(self) -> float:
        return self.started_at - self.enqueued_at

    @property
    def sojourn_s(self) -> float:
        """Submission-to-completion time as the user experienced it."""
        return self.completed_at - self.enqueued_at


@dataclass(frozen=True)
class Overloaded:
    """Typed shed response: the server refused the request at admission.

    Reasons:
        ``"device-queue-full"`` — the per-device bounded queue was full;
        ``"server-busy"`` — the global in-flight cap was reached.
    """

    request: ServeRequest
    reason: str
    t: float

    ok = False


#: What a submitted request resolves to.
ServeReply = Union[ServeResponse, Overloaded]
