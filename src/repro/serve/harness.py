"""Serve-mode harnesses: replay equivalence and open-loop load tests.

``serve_replay`` runs the Section 6.2 replay *through the online
server* on the deterministic virtual clock: every selected user becomes
a device session, every logged event is submitted open-loop at its
in-month offset, and the per-user outcomes are collected into the same
:class:`~repro.sim.replay.ReplayResult` shape ``run_replay`` produces.
Because each device's backend is driven strictly in submission order
and the outcome records *model* costs (queueing is a separate
serve-layer metric), the hit/miss/latency accounting matches the
offline replay bit-for-bit — the differential test the serving layer is
held to.

``run_loadtest`` drives a server with a :mod:`repro.serve.loadgen`
workload (typically at a deliberate overload) and reports how the
admission control held up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.edge.tier import EdgeTier, EdgeTopology
from repro.logs.generator import SearchLog
from repro.logs.schema import MONTH_SECONDS, UserClass
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLOPolicy
from repro.obs.trace import get_tracer
from repro.pocketsearch.content import (
    ContentPolicy,
    PAPER_OPERATING_POINT,
    build_cache_content,
)
from repro.pocketsearch.engine import PocketSearchEngine
from repro.serve.backends import DailyUpdateBackend, SearchBackend
from repro.serve.loadgen import LoadGenConfig, Workload, build_workload
from repro.serve.requests import Overloaded, ServeRequest, ServeResponse
from repro.serve.server import CloudletServer, ServeConfig
from repro.serve.telemetry import ServeTelemetry
from repro.serve.vclock import run_simulated
from repro.sim.metrics import MetricsCollector
from repro.sim.replay import (
    CacheMode,
    ReplayConfig,
    ReplayResult,
    UserReplayResult,
    _daily_contents,
    _new_collector,
    _record_bytes,
    make_cache,
    select_replay_users,
)

__all__ = ["ServeReport", "serve_replay", "run_loadtest", "run_workload"]


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile of a pre-sorted list (nan when empty)."""
    if not ordered:
        return float("nan")
    import math

    rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
    return ordered[rank]


@dataclass
class ServeReport:
    """Serving-layer accounting of one serve run.

    Latency fields are *sojourn* times — submission to completion as the
    user experienced them on the loop clock, including queueing — for
    admitted requests only (sheds resolve instantly by design).
    """

    requests: int = 0
    completed: int = 0
    shed: int = 0
    hits: int = 0
    misses: int = 0
    fetches: int = 0
    piggybacked: int = 0
    duration_s: float = 0.0
    sojourn_p50_s: float = float("nan")
    sojourn_p99_s: float = float("nan")
    sojourn_max_s: float = float("nan")
    queue_wait_p99_s: float = float("nan")
    #: trace-segment percentiles (from per-response breakdowns)
    refresh_blocked_p99_s: float = float("nan")
    batch_wait_p99_s: float = float("nan")
    service_p99_s: float = float("nan")
    shed_reasons: Dict[str, int] = field(default_factory=dict)
    #: SLO verdict (``SLOMonitor.verdict()``) when a policy was attached
    slo: Optional[Dict[str, Any]] = None
    #: slowest-request exemplars, each a full segment timeline
    exemplars: List[Dict[str, Any]] = field(default_factory=list)
    #: attributed-energy accounting (NaN/None when no response carried a
    #: breakdown — e.g. a backend without energy attribution)
    energy_j_total: float = 0.0
    energy_j_per_query: float = float("nan")
    energy_j_p50: float = float("nan")
    energy_j_p99: float = float("nan")
    hit_energy_j: float = float("nan")
    miss_energy_j: float = float("nan")
    #: the online Figure 15b: mean miss joules over mean hit joules
    hit_miss_energy_ratio: float = float("nan")
    attributed_radio_j: float = 0.0
    timeline_radio_j: float = 0.0
    conservation_error_j: float = 0.0
    #: whether attributed radio joules matched the simulated timeline
    energy_conserved: Optional[bool] = None
    battery_capacity_j: float = float("nan")
    battery_min_level: float = float("nan")
    #: mean projected charge fraction burned per simulated day
    battery_day_fraction: float = float("nan")
    #: projected queries one full charge sustains at the observed mean
    queries_per_charge: Optional[int] = None
    #: cooperative edge tier accounting (``EdgeTier.stats()``; None when
    #: no cloudlet tier was configured)
    edge: Optional[Dict[str, Any]] = None
    #: p99 cloudlet time (edge_hop + edge_serve) of edge-path requests
    edge_hop_p99_s: float = float("nan")
    #: worst |per-hop re-sum - end-to-end| over all responses; the
    #: acceptance bound is 1e-9 on both
    hop_resum_error_s: float = float("nan")
    hop_resum_error_j: float = float("nan")

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.completed if self.completed else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def batch_efficiency(self) -> float:
        """Fraction of miss fetches avoided by single-flight sharing."""
        total = self.fetches + self.piggybacked
        return self.piggybacked / total if total else 0.0

    def to_metrics(self) -> Dict[str, float]:
        """Flat mapping for run manifests / BENCH emission."""
        out = {
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "fetches": self.fetches,
            "piggybacked": self.piggybacked,
            "batch_efficiency": self.batch_efficiency,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "sojourn_p50_s": self.sojourn_p50_s,
            "sojourn_p99_s": self.sojourn_p99_s,
            "sojourn_max_s": self.sojourn_max_s,
            "queue_wait_p99_s": self.queue_wait_p99_s,
            "refresh_blocked_p99_s": self.refresh_blocked_p99_s,
            "batch_wait_p99_s": self.batch_wait_p99_s,
            "service_p99_s": self.service_p99_s,
        }
        # Energy metrics are only meaningful when responses carried
        # breakdowns; NaNs are omitted so manifests stay clean JSON for
        # downstream tooling (jq, bench-gate).
        for name in (
            "energy_j_total",
            "energy_j_per_query",
            "energy_j_p50",
            "energy_j_p99",
            "hit_energy_j",
            "miss_energy_j",
            "hit_miss_energy_ratio",
            "attributed_radio_j",
            "timeline_radio_j",
            "conservation_error_j",
            "battery_capacity_j",
            "battery_min_level",
            "battery_day_fraction",
            "edge_hop_p99_s",
            "hop_resum_error_s",
            "hop_resum_error_j",
        ):
            value = getattr(self, name)
            if value == value:  # not NaN
                out[name] = value
        if self.energy_conserved is not None:
            out["energy_conserved"] = 1.0 if self.energy_conserved else 0.0
        if self.queries_per_charge is not None:
            out["queries_per_charge"] = float(self.queries_per_charge)
        for reason, count in sorted(self.shed_reasons.items()):
            out["shed_" + reason.replace("-", "_")] = count
        if self.edge is not None:
            out["community_hit_rate"] = float(self.edge["community_hit_rate"])
            out["edge_hits"] = float(self.edge["community_hits"])
            out["edge_misses"] = float(self.edge["community_misses"])
            out["edge_sheds"] = float(self.edge["sheds"])
            out["edge_origin_fetches"] = float(self.edge["origin_fetches"])
            out["edge_flushes"] = float(self.edge["origin"]["flushes"])
            out["edge_bytes_uploaded"] = float(
                self.edge["origin"]["bytes_uploaded"]
            )
        if self.slo is not None:
            out["slo_passed"] = 1.0 if self.slo.get("passed") else 0.0
            out["slo_alerts_total"] = float(self.slo.get("alerts_total", 0))
        return out


def _build_report(
    replies: List[object], server: CloudletServer, duration_s: float
) -> ServeReport:
    report = ServeReport(
        requests=len(replies),
        fetches=server.batcher.fetches,
        piggybacked=server.batcher.piggybacked,
    )
    edge_tier = server.edge
    sojourns: List[float] = []
    waits: List[float] = []
    refresh_blocked: List[float] = []
    batch_waits: List[float] = []
    services: List[float] = []
    edge_hops: List[float] = []
    energies: List[float] = []
    hit_energies: List[float] = []
    miss_energies: List[float] = []
    hop_err_s = 0.0
    hop_err_j = 0.0
    for reply in replies:
        if isinstance(reply, Overloaded):
            report.shed += 1
            report.shed_reasons[reply.reason] = (
                report.shed_reasons.get(reply.reason, 0) + 1
            )
            continue
        assert isinstance(reply, ServeResponse)
        report.completed += 1
        if reply.outcome.hit:
            report.hits += 1
        else:
            report.misses += 1
        sojourns.append(reply.sojourn_s)
        breakdown = reply.breakdown()
        waits.append(breakdown["queue_wait"])
        refresh_blocked.append(breakdown["refresh_blocked"])
        batch_waits.append(breakdown["batch_wait"])
        services.append(breakdown["service"])
        if edge_tier is not None:
            edge_hops.append(breakdown["edge_hop"] + breakdown["edge_serve"])
            hops = reply.hop_breakdown()
            lat_sum = (
                hops["device"]["latency_s"] + hops["edge"]["latency_s"]
            ) + hops["origin"]["latency_s"]
            j_sum = (
                hops["device"]["energy_j"] + hops["edge"]["energy_j"]
            ) + hops["origin"]["energy_j"]
            hop_err_s = max(hop_err_s, abs(lat_sum - reply.sojourn_s))
            hop_err_j = max(hop_err_j, abs(j_sum - reply.energy_j))
        if reply.energy is not None:
            joules = reply.energy.total_j
            energies.append(joules)
            (hit_energies if reply.outcome.hit else miss_energies).append(
                joules
            )
        duration_s = max(duration_s, reply.completed_at)
    report.duration_s = duration_s
    for values, attr in (
        (sojourns, None),
        (waits, "queue_wait_p99_s"),
        (refresh_blocked, "refresh_blocked_p99_s"),
        (batch_waits, "batch_wait_p99_s"),
        (services, "service_p99_s"),
    ):
        values.sort()
        if attr is not None:
            setattr(report, attr, _percentile(values, 99))
    report.sojourn_p50_s = _percentile(sojourns, 50)
    report.sojourn_p99_s = _percentile(sojourns, 99)
    report.sojourn_max_s = sojourns[-1] if sojourns else float("nan")
    if edge_tier is not None:
        # End-of-run settlement: propagate every pending popularity
        # delta so the origin's books are complete before snapshotting.
        edge_tier.flush_all()
        report.edge = edge_tier.stats()
        edge_hops.sort()
        report.edge_hop_p99_s = _percentile(edge_hops, 99)
        report.hop_resum_error_s = hop_err_s
        report.hop_resum_error_j = hop_err_j
    if energies:
        energies.sort()
        report.energy_j_total = sum(energies)
        report.energy_j_per_query = report.energy_j_total / len(energies)
        report.energy_j_p50 = _percentile(energies, 50)
        report.energy_j_p99 = _percentile(energies, 99)
        if hit_energies:
            report.hit_energy_j = sum(hit_energies) / len(hit_energies)
        if miss_energies:
            report.miss_energy_j = sum(miss_energies) / len(miss_energies)
        if hit_energies and miss_energies and report.hit_energy_j > 0:
            report.hit_miss_energy_ratio = (
                report.miss_energy_j / report.hit_energy_j
            )
    telemetry = server.telemetry
    telemetry.finalize()
    ledger = telemetry.energy.ledger
    if ledger.requests:
        report.attributed_radio_j = ledger.attributed_j
        report.timeline_radio_j = ledger.timeline_j
        report.conservation_error_j = ledger.conservation_error_j
        report.energy_conserved = ledger.conserved()
    batteries = telemetry.batteries.snapshot(telemetry.t_last)
    if batteries["n_devices"]:
        report.battery_capacity_j = batteries["capacity_j"]
        report.battery_min_level = batteries["min_level"]
        report.battery_day_fraction = batteries["mean_burn_per_day"]
        report.queries_per_charge = batteries["queries_per_charge"]
    report.slo = telemetry.verdict()
    report.exemplars = telemetry.exemplars.top(telemetry.t_last)
    return report


# -- open-loop submission ---------------------------------------------------


async def _submit_schedule(
    server: CloudletServer,
    schedule: List[Tuple[float, ServeRequest]],
) -> List["object"]:
    """Submit requests at their scheduled offsets; gather all replies.

    Open-loop: submission timing depends only on the schedule, never on
    how fast the server answers.
    """
    import asyncio

    loop = asyncio.get_running_loop()
    origin = loop.time()
    futures = []
    for offset, request in schedule:
        delay = origin + offset - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        futures.append(server.submit(request))
    await server.drain()
    return [f.result() for f in futures]


async def run_workload(server: CloudletServer, workload: Workload) -> ServeReport:
    """Drive ``server`` with ``workload`` and report what happened."""
    server.start()
    try:
        replies = await _submit_schedule(server, workload.arrivals)
    finally:
        await server.close()
    return _build_report(replies, server, workload.duration_s)


# -- replay equivalence -----------------------------------------------------

#: Serve config of the equivalence harness: generous bounds so nothing
#: is shed (a shed request would diverge from the offline replay by
#: construction — the equivalence test asserts shed == 0).
EQUIVALENCE_SERVE_CONFIG = ServeConfig(
    queue_depth=100_000, max_inflight=1_000_000, time_scale=1.0
)


def _edge_warm_keys(content) -> List[Tuple[str, float]]:
    """``(query, score)`` warm-seed rankings from cache content (each
    query once, at its best pair score)."""
    scores: Dict[str, float] = {}
    for entry in content.entries:
        prev = scores.get(entry.query)
        if prev is None or entry.score > prev:
            scores[entry.query] = entry.score
    return sorted(scores.items())


def serve_replay(
    log: SearchLog,
    config: ReplayConfig = ReplayConfig(),
    modes: Iterable[str] = (CacheMode.FULL,),
    serve_config: Optional[ServeConfig] = None,
    edge_topology: Optional[EdgeTopology] = None,
) -> Tuple[Dict[str, ReplayResult], Dict[str, ServeReport]]:
    """Run the replay experiment through the online server.

    Same inputs and accounting as :func:`repro.sim.replay.run_replay`;
    executed as live traffic on the deterministic virtual clock.

    Args:
        edge_topology: when given, a fresh cooperative cloudlet tier
            fronts the origin for each mode.  The per-device outcome
            model is untouched, so the per-user accounting stays
            exactly comparable to ``run_replay`` at any topology.

    Returns:
        ``(results, reports)`` — per-mode :class:`ReplayResult` exactly
        comparable to ``run_replay``'s, and per-mode serving-layer
        :class:`ServeReport`.
    """
    serve_config = serve_config or EQUIVALENCE_SERVE_CONFIG
    tracer = get_tracer()
    with tracer.span("serve_build_cache_content", month=config.build_month):
        content = build_cache_content(log.month(config.build_month), config.policy)
    selected_users = select_replay_users(
        log, config.replay_month, config.users_per_class, config.seed
    )
    t_start = config.replay_month * MONTH_SECONDS
    t_end = t_start + MONTH_SECONDS
    daily_contents = (
        _daily_contents(log, config) if config.daily_updates else []
    )
    work: List[Tuple[UserClass, int]] = [
        (user_class, uid)
        for user_class, uids in selected_users.items()
        for uid in uids
    ]

    results: Dict[str, ReplayResult] = {}
    reports: Dict[str, ServeReport] = {}
    for mode in modes:
        with tracer.span("serve_mode", mode=mode) as span:
            users, report = run_simulated(
                _serve_mode(
                    log, content, daily_contents, config, mode, work,
                    t_start, t_end, serve_config, edge_topology,
                )
            )
            result = ReplayResult(mode=mode, users=users)
            span.set_attrs(
                n_users=len(users),
                overall_hit_rate=result.overall_hit_rate(),
                shed=report.shed,
                batch_efficiency=report.batch_efficiency,
            )
        results[mode] = result
        reports[mode] = report
    return results, reports


async def _serve_mode(
    log: SearchLog,
    content,
    daily_contents,
    config: ReplayConfig,
    mode: str,
    work: List[Tuple[UserClass, int]],
    t_start: float,
    t_end: float,
    serve_config: ServeConfig,
    edge_topology: Optional[EdgeTopology] = None,
) -> Tuple[List[UserReplayResult], ServeReport]:
    updates_on = config.daily_updates and mode != CacheMode.PERSONALIZATION_ONLY

    def backend_factory(device_id: int):
        engine = PocketSearchEngine(make_cache(content, mode))
        backend = SearchBackend(engine)
        if updates_on:
            # Event-synced nightly refresh: replay-equivalent ordering
            # even when a session crosses midnight with a backlog.
            return DailyUpdateBackend(backend, daily_contents, t_start)
        return backend

    edge = None
    if edge_topology is not None:
        # One fresh tier per mode: cloudlet slices, like device caches,
        # must not leak state across modes.
        edge = EdgeTier(edge_topology)
        if edge_topology.warm:
            edge.seed_from_scores(_edge_warm_keys(content))
    server = CloudletServer(
        backend_factory, serve_config, registry=MetricsRegistry(), edge=edge
    )

    # Per-user schedules in log order, stably merged by arrival offset —
    # a stable sort keeps each device's events in submission order, the
    # invariant the equivalence guarantee rests on.
    schedule: List[Tuple[float, ServeRequest]] = []
    order: List[Tuple[UserClass, int]] = []
    for user_class, uid in work:
        order.append((user_class, uid))
        stream = log.for_user(uid).window(t_start, t_end)
        for i in range(stream.n_events):
            t = float(stream.timestamps[i])
            schedule.append(
                (
                    t - t_start,
                    ServeRequest(
                        device_id=uid,
                        key=stream.query_string(int(stream.query_keys[i])),
                        timestamp=t,
                        clicked_url=stream.result_url(
                            int(stream.result_keys[i])
                        ),
                        record_bytes=_record_bytes(
                            stream, int(stream.result_keys[i])
                        ),
                        navigational=bool(stream.navigational[i]),
                    ),
                )
            )
    schedule.sort(key=lambda pair: pair[0])

    server.start()
    try:
        replies = await _submit_schedule(server, schedule)
    finally:
        await server.close()

    # Fold replies back into per-user collectors in submission order, so
    # exact collectors hold identical outcome sequences to the offline
    # replay and bounded collectors fold reservoir samples identically.
    by_user: Dict[int, List[ServeResponse]] = {uid: [] for _, uid in work}
    for reply in replies:
        if isinstance(reply, ServeResponse):
            by_user[reply.request.device_id].append(reply)
    users: List[UserReplayResult] = []
    for user_class, uid in order:
        collector: MetricsCollector = _new_collector(config, uid)
        for response in by_user[uid]:
            collector.record(response.outcome)
        users.append(
            UserReplayResult(
                user_id=uid, user_class=user_class, metrics=collector
            )
        )
    report = _build_report(replies, server, t_end - t_start)
    return users, report


# -- load testing -----------------------------------------------------------


def run_loadtest(
    log: SearchLog,
    loadgen: LoadGenConfig = LoadGenConfig(),
    serve_config: ServeConfig = ServeConfig(),
    build_month: int = 0,
    workload_month: int = 1,
    policy: ContentPolicy = PAPER_OPERATING_POINT,
    refresh_interval_s: Optional[float] = None,
    slo_policy: Optional[SLOPolicy] = None,
    telemetry: Optional[ServeTelemetry] = None,
    registry: Optional[MetricsRegistry] = None,
    battery_capacity_j: Optional[float] = None,
    edge_topology: Optional[EdgeTopology] = None,
) -> Tuple[ServeReport, Workload]:
    """Load-test the server on the virtual clock.

    Devices serve from fresh full-mode caches whose community content is
    mined from ``build_month``; the workload replays ``workload_month``
    traffic at ``loadgen.rate_multiplier`` times its natural rate.

    Args:
        refresh_interval_s: if set, runs the background cache refresh
            task at this period, re-applying the build-month content
            (exercising the update path under live load).
        slo_policy: if set, the run is monitored against it; the verdict
            lands in ``report.slo`` and burn-rate alerts are emitted as
            ``slo_alert`` tracer events.
        telemetry: pre-built telemetry plane (wins over ``slo_policy``);
            pass one to keep a handle for snapshots/exposition after the
            run.
        battery_capacity_j: per-device battery size for drain tracking
            (defaults to the Xperia X1a battery; ignored when a
            pre-built ``telemetry`` is passed).
        edge_topology: when given, a cooperative cloudlet tier fronts
            the origin (warm-seeded from the build-month content when
            ``edge_topology.warm``); edge accounting lands in
            ``report.edge`` and the per-hop report fields.
    """
    content = build_cache_content(log.month(build_month), policy)
    workload = build_workload(log, workload_month, loadgen)
    if telemetry is None:
        kwargs: Dict[str, Any] = {"slo_policy": slo_policy}
        if battery_capacity_j is not None:
            kwargs["battery_capacity_j"] = battery_capacity_j
        telemetry = ServeTelemetry(**kwargs)

    def backend_factory(device_id: int) -> SearchBackend:
        return SearchBackend(PocketSearchEngine(make_cache(content, CacheMode.FULL)))

    refresh_fn = None
    if refresh_interval_s is not None:
        from repro.pocketsearch.manager import CacheUpdateServer

        update_server = CacheUpdateServer()

        def refresh_fn(device_id: int, backend: SearchBackend) -> None:
            update_server.refresh_with_content(backend.engine.cache, content)

    edge = None
    if edge_topology is not None:
        edge = EdgeTier(edge_topology)
        if edge_topology.warm:
            edge.seed_from_scores(_edge_warm_keys(content))
    server = CloudletServer(
        backend_factory,
        ServeConfig(
            queue_depth=serve_config.queue_depth,
            max_inflight=serve_config.max_inflight,
            time_scale=serve_config.time_scale,
            refresh_interval_s=refresh_interval_s,
        ),
        registry=registry if registry is not None else MetricsRegistry(),
        refresh_fn=refresh_fn,
        telemetry=telemetry,
        edge=edge,
    )
    report = run_simulated(run_workload(server, workload))
    return report, workload
