"""Single-flight batching of concurrent identical miss fetches.

When two devices miss on the same key at (simulated-)overlapping times,
the cloudlet only needs one radio round-trip: the first miss becomes the
*leader* and actually occupies the radio for the modelled fetch
duration; everyone else arriving while that fetch is in flight
*piggybacks* — they await the leader's future and complete at the same
instant, without issuing a second fetch.

Accounting note: piggybacking shares fetch *time*, not hit/miss
accounting.  A piggybacked request is still recorded as a miss with its
full modelled latency, which is what keeps the serve layer's per-user
numbers bit-identical to the offline replay.

Tracing: when a request's :class:`~repro.obs.trace.TraceContext` is
threaded into :meth:`MissBatcher.fetch`, the batcher annotates the
causal relationship — a leader records how many riders shared its
fetch, and each rider records the leader's trace id (the span its
batch-wait segment was actually spent inside).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.obs.energy import split_shared_radio
from repro.obs.trace import TraceContext

__all__ = ["FetchShare", "MissBatcher"]


@dataclass(frozen=True)
class FetchShare:
    """One participant's slice of a (possibly shared) radio fetch.

    Attributes:
        shared: ``True`` if this call piggybacked on an in-flight fetch.
        share: this participant's attributed ``(ramp_j, transfer_j,
            tail_j)`` radio energy, or ``None`` when the leader supplied
            no energy components (the caller then accounts for itself in
            isolation).
        timeline_j: the radio-timeline energy this participant is
            responsible for reporting — the full fetch energy for a
            leader, 0.0 for riders (their joules were already spent by
            the leader's flight).
    """

    shared: bool
    share: Optional[Tuple[float, float, float]] = None
    timeline_j: float = 0.0


class MissBatcher:
    """Deduplicate in-flight fetches by key (single-flight).

    Must be used from a single event loop; all state is loop-confined.
    """

    def __init__(self) -> None:
        # key -> [leader's completion future, leader's trace id, riders]
        self._inflight: Dict[Hashable, list] = {}
        #: fetches actually issued (leaders)
        self.fetches = 0
        #: requests that rode an existing in-flight fetch
        self.piggybacked = 0

    async def fetch(
        self,
        key: Hashable,
        duration_s: float,
        trace: Optional[TraceContext] = None,
    ) -> bool:
        """Wait out one radio fetch of ``key`` taking ``duration_s``.

        Returns ``True`` if this call piggybacked on a fetch another
        caller already had in flight, ``False`` if it was the leader.
        ``trace``, when given, is annotated with the causal link.
        """
        share = await self.fetch_shared(key, duration_s, trace)
        return share.shared

    async def fetch_shared(
        self,
        key: Hashable,
        duration_s: float,
        trace: Optional[TraceContext] = None,
        radio_energy: Optional[Tuple[float, float, float]] = None,
    ) -> FetchShare:
        """:meth:`fetch`, plus energy attribution of the shared flight.

        ``radio_energy`` is the leader's isolated ``(ramp_j, transfer_j,
        tail_j)`` for this fetch.  The rider count is only final when the
        flight completes (the in-flight entry is removed before the
        future resolves, so no further riders can join), which is where
        the split is computed: the leader's :class:`FetchShare` carries
        its remainder share, and every rider receives its equal
        wake/tail slice through the leader's future.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.piggybacked += 1
            existing[2] += 1
            if trace is not None:
                trace.annotate(
                    batch_role="rider", batch_leader_trace=existing[1]
                )
            rider_share = await existing[0]
            return FetchShare(shared=True, share=rider_share, timeline_j=0.0)

        loop = asyncio.get_event_loop()
        future: "asyncio.Future[Optional[Tuple[float, float, float]]]" = (
            loop.create_future()
        )
        entry = [future, trace.trace_id if trace is not None else None, 0]
        self._inflight[key] = entry
        self.fetches += 1
        leader_share: Optional[Tuple[float, float, float]] = None
        try:
            await asyncio.sleep(duration_s)
        finally:
            del self._inflight[key]
            if radio_energy is not None:
                leader_share, rider_share = split_shared_radio(
                    radio_energy[0], radio_energy[1], radio_energy[2],
                    entry[2],
                )
                future.set_result(rider_share)
            else:
                future.set_result(None)
        if trace is not None:
            trace.annotate(batch_role="leader", batch_riders=entry[2])
        timeline_j = 0.0
        if radio_energy is not None:
            timeline_j = (radio_energy[0] + radio_energy[1]) + radio_energy[2]
        return FetchShare(
            shared=False, share=leader_share, timeline_j=timeline_j
        )

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    @property
    def batch_efficiency(self) -> float:
        """Fraction of miss fetches avoided by sharing (0.0 when idle)."""
        total = self.fetches + self.piggybacked
        return self.piggybacked / total if total else 0.0
