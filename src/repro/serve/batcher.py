"""Single-flight batching of concurrent identical miss fetches.

When two devices miss on the same key at (simulated-)overlapping times,
the cloudlet only needs one radio round-trip: the first miss becomes the
*leader* and actually occupies the radio for the modelled fetch
duration; everyone else arriving while that fetch is in flight
*piggybacks* — they await the leader's future and complete at the same
instant, without issuing a second fetch.

Accounting note: piggybacking shares fetch *time*, not hit/miss
accounting.  A piggybacked request is still recorded as a miss with its
full modelled latency, which is what keeps the serve layer's per-user
numbers bit-identical to the offline replay.

Tracing: when a request's :class:`~repro.obs.trace.TraceContext` is
threaded into :meth:`MissBatcher.fetch`, the batcher annotates the
causal relationship — a leader records how many riders shared its
fetch, and each rider records the leader's trace id (the span its
batch-wait segment was actually spent inside).
"""

from __future__ import annotations

import asyncio
from typing import Dict, Hashable, Optional

from repro.obs.trace import TraceContext

__all__ = ["MissBatcher"]


class MissBatcher:
    """Deduplicate in-flight fetches by key (single-flight).

    Must be used from a single event loop; all state is loop-confined.
    """

    def __init__(self) -> None:
        # key -> [leader's completion future, leader's trace id, riders]
        self._inflight: Dict[Hashable, list] = {}
        #: fetches actually issued (leaders)
        self.fetches = 0
        #: requests that rode an existing in-flight fetch
        self.piggybacked = 0

    async def fetch(
        self,
        key: Hashable,
        duration_s: float,
        trace: Optional[TraceContext] = None,
    ) -> bool:
        """Wait out one radio fetch of ``key`` taking ``duration_s``.

        Returns ``True`` if this call piggybacked on a fetch another
        caller already had in flight, ``False`` if it was the leader.
        ``trace``, when given, is annotated with the causal link.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.piggybacked += 1
            existing[2] += 1
            if trace is not None:
                trace.annotate(
                    batch_role="rider", batch_leader_trace=existing[1]
                )
            await existing[0]
            return True

        loop = asyncio.get_event_loop()
        future: "asyncio.Future[None]" = loop.create_future()
        entry = [future, trace.trace_id if trace is not None else None, 0]
        self._inflight[key] = entry
        self.fetches += 1
        try:
            await asyncio.sleep(duration_s)
        finally:
            del self._inflight[key]
            future.set_result(None)
        if trace is not None:
            trace.annotate(batch_role="leader", batch_riders=entry[2])
        return False

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    @property
    def batch_efficiency(self) -> float:
        """Fraction of miss fetches avoided by sharing (0.0 when idle)."""
        total = self.fetches + self.piggybacked
        return self.piggybacked / total if total else 0.0
