"""Single-flight batching of concurrent identical miss fetches.

When two devices miss on the same key at (simulated-)overlapping times,
the cloudlet only needs one radio round-trip: the first miss becomes the
*leader* and actually occupies the radio for the modelled fetch
duration; everyone else arriving while that fetch is in flight
*piggybacks* — they await the leader's future and complete at the same
instant, without issuing a second fetch.

Accounting note: piggybacking shares fetch *time*, not hit/miss
accounting.  A piggybacked request is still recorded as a miss with its
full modelled latency, which is what keeps the serve layer's per-user
numbers bit-identical to the offline replay.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Hashable

__all__ = ["MissBatcher"]


class MissBatcher:
    """Deduplicate in-flight fetches by key (single-flight).

    Must be used from a single event loop; all state is loop-confined.
    """

    def __init__(self) -> None:
        self._inflight: Dict[Hashable, "asyncio.Future[None]"] = {}
        #: fetches actually issued (leaders)
        self.fetches = 0
        #: requests that rode an existing in-flight fetch
        self.piggybacked = 0

    async def fetch(self, key: Hashable, duration_s: float) -> bool:
        """Wait out one radio fetch of ``key`` taking ``duration_s``.

        Returns ``True`` if this call piggybacked on a fetch another
        caller already had in flight, ``False`` if it was the leader.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.piggybacked += 1
            await existing
            return True

        loop = asyncio.get_event_loop()
        future: "asyncio.Future[None]" = loop.create_future()
        self._inflight[key] = future
        self.fetches += 1
        try:
            await asyncio.sleep(duration_s)
        finally:
            del self._inflight[key]
            future.set_result(None)
        return False

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    @property
    def batch_efficiency(self) -> float:
        """Fraction of miss fetches avoided by sharing (0.0 when idle)."""
        total = self.fetches + self.piggybacked
        return self.piggybacked / total if total else 0.0
