"""The serving stack's always-on telemetry plane.

One :class:`ServeTelemetry` instance rides along with each
:class:`~repro.serve.server.CloudletServer`: the server calls its three
hooks (submit / shed / response) on the request path, and everything
else — rolling windows, slow-request exemplars, SLO burn-rate alerts,
live-view callbacks — derives from those events.

Design constraints, in order:

* **deterministic** — all state is keyed by loop-clock timestamps the
  server passes in, so under
  :class:`~repro.serve.vclock.VirtualTimeLoop` two runs of a workload
  produce identical windows, identical exemplars, and identical alert
  sequences;
* **cheap** — a few ring-bucket updates per request, no allocation
  proportional to traffic, no background task (SLO evaluation is
  piggybacked on the first event of each new bucket);
* **complete** — sheds are first-class events, not gaps: shed-rate
  windows and shed-aware SLO rules see every rejected request.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.obs.energy import EnergyWindows
from repro.obs.slo import SLOAlert, SLOMonitor, SLOPolicy
from repro.obs.timeseries import TimeSeriesRegistry
from repro.obs.trace import get_tracer
from repro.serve.requests import Overloaded, ServeResponse
from repro.sim.battery import DEFAULT_CAPACITY_J, FleetBatteries

__all__ = ["ServeTelemetry"]

#: Default bucket geometry: 1-second buckets, 2-minute window.
DEFAULT_BUCKET_WIDTH_S = 1.0
DEFAULT_N_BUCKETS = 120
DEFAULT_EXEMPLAR_K = 5


class ServeTelemetry:
    """Windowed metrics + exemplars + SLO monitoring for one server.

    Args:
        bucket_width_s: ring bucket width in loop seconds.
        n_buckets: buckets retained (window = width * buckets).
        exemplar_k: slow-request exemplars kept per bucket.
        slo_policy: optional SLO policy to monitor; alerts surface as
            ``slo_alert`` tracer events and in :meth:`verdict`.
        battery_capacity_j: full-charge energy of each device's modelled
            battery (drained by every attributed response).
        battery_worst_k: most-drained devices surfaced per snapshot.
    """

    def __init__(
        self,
        bucket_width_s: float = DEFAULT_BUCKET_WIDTH_S,
        n_buckets: int = DEFAULT_N_BUCKETS,
        exemplar_k: int = DEFAULT_EXEMPLAR_K,
        slo_policy: Optional[SLOPolicy] = None,
        battery_capacity_j: float = DEFAULT_CAPACITY_J,
        battery_worst_k: int = 8,
    ) -> None:
        self.windows = TimeSeriesRegistry(bucket_width_s, n_buckets)
        w = self.windows
        self._requests = w.counter("serve.requests")
        self._completed = w.counter("serve.completed")
        self._hits = w.counter("serve.hits")
        self._shed = w.counter("serve.shed")
        self._fetches = w.counter("serve.fetches")
        self._piggybacked = w.counter("serve.piggybacked")
        self._sojourn = w.histogram("serve.sojourn_s")
        self._queue_wait = w.histogram("serve.queue_wait_s")
        self._batch_wait = w.histogram("serve.batch_wait_s")
        self._service = w.histogram("serve.service_s")
        #: cloudlet time (edge_hop + edge_serve) of edge-path requests
        self._edge_hop = w.histogram("serve.edge_hop_s")
        #: per-answering-tier completion counters, created lazily
        self._tiers: Dict[str, Any] = {}
        self._inflight = w.gauge("serve.inflight")
        self.exemplars = w.exemplars("serve.slow_requests", k=exemplar_k)
        #: windowed per-request energy attribution + conservation ledger
        self.energy = EnergyWindows(w)
        #: per-device battery drain (projections feed the SLO engine)
        self.batteries = FleetBatteries(capacity_j=battery_capacity_j)
        self.battery_worst_k = battery_worst_k
        self.slo: Optional[SLOMonitor] = (
            SLOMonitor(slo_policy, width_s=bucket_width_s)
            if slo_policy is not None
            else None
        )
        #: called as ``fn(t, self)`` once per completed bucket — the
        #: ``repro top`` live view hangs off this.
        self.on_tick: List[Callable[[float, "ServeTelemetry"], None]] = []
        #: attached :class:`~repro.obs.flight.FlightRecorder` (None when
        #: no black-box capture rides along); set by ``attach()``.
        self.flight: Optional[Any] = None
        #: zero-arg edge-tier stats thunk (``EdgeTier.stats``), wired by
        #: the server when a cloudlet tier is configured — feeds the
        #: per-node Prometheus samples and the flight recorder's
        #: per-tick edge snapshots.
        self.edge_stats_fn: Optional[Callable[[], Dict[str, Any]]] = None
        self._last_bucket: Optional[int] = None
        self._t_last = 0.0

    @property
    def bucket_width_s(self) -> float:
        return self.windows.width_s

    @property
    def window_s(self) -> float:
        return self.windows.window_s

    @property
    def t_last(self) -> float:
        """Loop time of the latest event seen (0.0 before any)."""
        return self._t_last

    # -- server hooks --------------------------------------------------------

    def on_submit(self, t: float, inflight: int) -> None:
        self._maybe_tick(t)
        self._requests.inc(t)
        self._inflight.observe(t, inflight)

    def on_shed(self, t: float, reply: Overloaded) -> None:
        self._maybe_tick(t)
        self._shed.inc(t)
        if self.slo is not None:
            self.slo.record_request(t, shed=True)
        if self.flight is not None:
            self.flight.on_shed(t, reply)

    def on_response(self, t: float, response: ServeResponse, inflight: int) -> None:
        self._maybe_tick(t)
        self._completed.inc(t)
        if response.outcome.hit:
            self._hits.inc(t)
        elif response.shared_fetch:
            self._piggybacked.inc(t)
        elif response.batch_wait_s > 0:
            self._fetches.inc(t)
        sojourn = response.sojourn_s
        self._sojourn.observe(t, sojourn)
        self._queue_wait.observe(t, response.queue_wait_s)
        self._batch_wait.observe(t, response.batch_wait_s)
        self._service.observe(t, response.service_s)
        self._inflight.observe(t, inflight)
        tier_counter = self._tiers.get(response.tier)
        if tier_counter is None:
            tier_counter = self.windows.counter("serve.tier." + response.tier)
            self._tiers[response.tier] = tier_counter
        tier_counter.inc(t)
        if response.trace is not None:
            edge_s = response.trace.segment_s("edge_hop") + (
                response.trace.segment_s("edge_serve")
            )
            if edge_s > 0:
                self._edge_hop.observe(t, edge_s)
        energy_j: Optional[float] = None
        burn_per_day: Optional[float] = None
        if response.energy is not None:
            energy_j = response.energy.total_j
            device_id = response.request.device_id
            self.energy.on_request(
                t,
                source=response.outcome.source.value,
                hit=response.outcome.hit,
                breakdown=response.energy,
                timeline_j=response.radio_timeline_j,
            )
            self.batteries.drain(device_id, energy_j, t)
            burn_per_day = self.batteries.burn_per_day(device_id, t)
        if response.trace is not None:
            payload = response.trace.to_dict()
            payload["device_id"] = response.request.device_id
            payload["key"] = response.request.key
            payload["hit"] = response.outcome.hit
            payload["tier"] = response.tier
            if response.edge_node is not None:
                payload["edge_node"] = response.edge_node
            self.exemplars.observe(t, sojourn, payload)
        if self.slo is not None:
            self.slo.record_request(
                t,
                latency_s=sojourn,
                hit=response.outcome.hit,
                energy_j=energy_j,
                battery_burn_per_day=burn_per_day,
            )
        if self.flight is not None:
            self.flight.on_response(t, response)

    # -- bucket ticks --------------------------------------------------------

    def _maybe_tick(self, t: float) -> None:
        """Run once-per-bucket work when an event lands in a new bucket."""
        self._t_last = max(self._t_last, t)
        bucket = int(t // self.windows.width_s)
        if self._last_bucket is None:
            self._last_bucket = bucket
            return
        if bucket == self._last_bucket:
            return
        # Evaluate at the boundary the previous bucket closed on, so
        # alert timestamps are bucket-aligned and run-to-run stable.
        t_eval = bucket * self.windows.width_s
        self._last_bucket = bucket
        self._evaluate(t_eval)
        for callback in self.on_tick:
            callback(t_eval, self)

    def _evaluate(self, t: float) -> List[SLOAlert]:
        if self.slo is None:
            return []
        fired = self.slo.evaluate(t)
        if fired:
            tracer = get_tracer()
            for alert in fired:
                tracer.event("slo_alert", **alert.to_dict())
            if self.flight is not None:
                self.flight.on_alerts(t, fired)
        return fired

    def finalize(self, t: Optional[float] = None) -> None:
        """Close out the run: one last SLO evaluation at ``t`` (defaults
        to the latest event time)."""
        self._evaluate(self._t_last if t is None else t)

    def verdict(self) -> Optional[Dict[str, Any]]:
        """The SLO verdict (None when no policy is attached)."""
        return self.slo.verdict() if self.slo is not None else None

    # -- read side -----------------------------------------------------------

    def rolling(self, t: float) -> Dict[str, Any]:
        """Headline rolling stats over the window ending at ``t``."""
        requests = self._requests.total(t)
        completed = self._completed.total(t)
        shed = self._shed.total(t)
        fetches = self._fetches.total(t)
        piggybacked = self._piggybacked.total(t)
        shared_total = fetches + piggybacked
        return {
            "request_rate_rps": self._requests.rate(t),
            "completed_rate_rps": self._completed.rate(t),
            "requests": requests,
            "completed": completed,
            "shed": shed,
            "hit_rate": (
                self._hits.total(t) / completed if completed else float("nan")
            ),
            "shed_rate": shed / requests if requests else 0.0,
            "sojourn_p50_s": self._sojourn.quantile(t, 50),
            "sojourn_p99_s": self._sojourn.quantile(t, 99),
            "queue_wait_p99_s": self._queue_wait.quantile(t, 99),
            "batch_wait_p99_s": self._batch_wait.quantile(t, 99),
            "service_p99_s": self._service.quantile(t, 99),
            "batch_efficiency": (
                piggybacked / shared_total if shared_total else 0.0
            ),
            "edge_hop_p99_s": self._edge_hop.quantile(t, 99),
            "tiers": {
                name: counter.total(t)
                for name, counter in sorted(self._tiers.items())
            },
            "inflight": self._inflight.last(t),
            "inflight_hwm": self._inflight.high_watermark(t),
        }

    def per_bucket(self, t: float) -> List[Dict[str, Any]]:
        """Aligned per-bucket rows (completed, hit rate, shed, p99,
        in-flight high-watermark), oldest first."""
        completed = dict(self._completed.per_bucket(t))
        hits = dict(self._hits.per_bucket(t))
        shed = dict(self._shed.per_bucket(t))
        requests = dict(self._requests.per_bucket(t))
        inflight = {
            row[0]: row[2] for row in self._inflight.per_bucket(t)
        }
        sojourn = {
            row["t_start"]: row for row in self._sojourn.per_bucket(t)
        }
        starts = sorted(
            set(completed) | set(shed) | set(requests) | set(inflight)
            | set(sojourn)
        )
        rows = []
        for start in starts:
            done = completed.get(start, 0.0)
            hit = hits.get(start, 0.0)
            srow = sojourn.get(start, {})
            rows.append(
                {
                    "t_start": start,
                    "requests": requests.get(start, 0.0),
                    "completed": done,
                    "shed": shed.get(start, 0.0),
                    "hit_rate": hit / done if done else None,
                    "sojourn_p50_s": srow.get("p50"),
                    "sojourn_p99_s": srow.get("p99"),
                    "inflight_hwm": inflight.get(start),
                }
            )
        return rows

    def prometheus_samples(self, t: Optional[float] = None) -> List[Any]:
        """Labeled gauge samples for the Prometheus endpoint.

        Per-source rolling wattage and joules, the fleet battery
        aggregates, and the worst-drained devices' charge levels —
        dimensions the flat process registry cannot carry.
        """
        t = self._t_last if t is None else t
        samples: List[Any] = []
        rolling = self.energy.rolling(t)
        for source, stats in rolling["sources"].items():
            labels = {"source": source}
            samples.append(("serve.energy.source_power_w", labels, stats["power_w"]))
            samples.append(("serve.energy.source_joules", labels, stats["energy_j"]))
        conservation = rolling["conservation"]
        samples.append(
            ("serve.energy.attributed_radio_j", {},
             conservation["attributed_radio_j"])
        )
        samples.append(
            ("serve.energy.timeline_radio_j", {},
             conservation["timeline_radio_j"])
        )
        batteries = self.batteries.snapshot(t, worst_k=self.battery_worst_k)
        if batteries["n_devices"]:
            samples.append(
                ("serve.battery.min_level", {}, batteries["min_level"])
            )
            samples.append(
                ("serve.battery.mean_level", {}, batteries["mean_level"])
            )
            for row in batteries["worst"]:
                samples.append(
                    (
                        "serve.battery.level",
                        {"device": str(row["device_id"])},
                        row["level"],
                    )
                )
        if self.edge_stats_fn is not None:
            for node in self.edge_stats_fn()["nodes"]:
                labels = {"node": str(node["node_id"])}
                for field, value in (
                    ("hits", node["hits"]),
                    ("misses", node["misses"]),
                    ("inflight", node["inflight"]),
                    ("sheds", node["sheds"]),
                    ("slice_size", node["size"]),
                ):
                    samples.append(
                        ("serve.edge.node_" + field, labels, value)
                    )
        return samples

    def snapshot(self, t: Optional[float] = None) -> Dict[str, Any]:
        """One JSON-ready document: rolling stats, per-bucket series,
        exemplars, and SLO status — the ``/metrics.json`` extra section
        and the ``repro top`` data source."""
        t = self._t_last if t is None else t
        doc: Dict[str, Any] = {
            "t": t,
            "bucket_width_s": self.windows.width_s,
            "window_s": self.windows.window_s,
            "rolling": self.rolling(t),
            "per_bucket": self.per_bucket(t),
            "exemplars": self.exemplars.top(t),
            "energy": self.energy.snapshot(t),
            "batteries": self.batteries.snapshot(
                t, worst_k=self.battery_worst_k
            ),
        }
        if self.slo is not None:
            doc["slo"] = {
                "status": self.slo.status(t),
                "alerts_total": len(self.slo.alerts),
            }
        if self.flight is not None:
            doc["flight"] = self.flight.status()
        return doc
