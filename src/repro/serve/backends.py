"""Device backends: the serve layer's view of a cloudlet.

A backend answers one :class:`~repro.serve.requests.ServeRequest`
synchronously with a :class:`BackendResult` — the modelled
:class:`~repro.sim.metrics.QueryOutcome` plus how much of its latency is
radio time (the portion a concurrent identical miss can share through
:class:`~repro.serve.batcher.MissBatcher`).

Backends wrap the existing offline models without changing them:

* :class:`SearchBackend` — one
  :class:`~repro.pocketsearch.engine.PocketSearchEngine` (one phone);
* :class:`DailyUpdateBackend` — decorator applying the Section 6.2.2
  nightly community refresh at the same event boundaries as the replay
  harness, so serve-vs-replay equivalence holds with updates on;
* :class:`WebBackend` — a :class:`~repro.pocketweb.cloudlet.PocketWebCloudlet`
  phone, demonstrating the protocol generalises beyond search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, runtime_checkable

from repro.obs.energy import EnergyBreakdown
from repro.pocketsearch.content import CacheContent
from repro.pocketsearch.engine import PocketSearchEngine
from repro.pocketsearch.manager import CacheUpdateServer
from repro.sim.metrics import QueryOutcome, ServiceSource
from repro.sim.replay import DAY_SECONDS
from repro.serve.requests import ServeRequest

__all__ = [
    "BackendResult",
    "DeviceBackend",
    "SearchBackend",
    "DailyUpdateBackend",
    "WebBackend",
]


@dataclass(frozen=True)
class BackendResult:
    """One answered request: the outcome plus its shareable radio time."""

    outcome: QueryOutcome
    #: Radio round-trip seconds within ``outcome.latency_s`` (0.0 on hits).
    radio_s: float = 0.0
    #: Backend facts worth carrying into the request's trace (e.g. how
    #: many pending nightly refreshes were applied before serving).
    annotations: Dict[str, Any] = field(default_factory=dict)
    #: Per-component energy of this request served in isolation; the
    #: server re-attributes the radio components when misses batch.
    energy: Optional[EnergyBreakdown] = None


@runtime_checkable
class DeviceBackend(Protocol):
    """One device's service path, as the server drives it.

    ``serve`` is synchronous model code: it computes costs and mutates
    per-device cache state but never blocks; the server turns the
    returned latencies into loop-clock sleeps.
    """

    def serve(self, request: ServeRequest) -> BackendResult:
        ...


class SearchBackend:
    """A PocketSearch phone behind the backend protocol."""

    def __init__(self, engine: PocketSearchEngine) -> None:
        self.engine = engine

    def serve(self, request: ServeRequest) -> BackendResult:
        result = self.engine.serve_query(
            query=request.key,
            clicked_url=request.clicked_url,
            record_bytes=request.record_bytes,
            navigational=request.navigational,
            timestamp=request.timestamp,
        )
        return BackendResult(
            outcome=result.outcome,
            radio_s=result.breakdown.get("radio_s", 0.0),
            energy=result.energy,
        )


class DailyUpdateBackend:
    """Apply nightly community refreshes at replay-equivalent points.

    The offline harness (``_replay_user_with_updates``) refreshes the
    community component just before serving the first event of each new
    replay day.  A purely time-driven background task could fire while a
    session still has yesterday's backlog queued, diverging from the
    replay ordering; anchoring the refresh to the *event's* day keeps the
    per-user state machine identical under any queueing.
    """

    def __init__(
        self,
        inner: SearchBackend,
        daily_contents: List[CacheContent],
        t_start: float,
        update_server: Optional[CacheUpdateServer] = None,
    ) -> None:
        self.inner = inner
        self.daily_contents = daily_contents
        self.t_start = t_start
        self.update_server = update_server or CacheUpdateServer()
        self._day = 0

    def serve(self, request: ServeRequest) -> BackendResult:
        applied = 0
        if self.daily_contents:
            event_day = min(
                int((request.timestamp - self.t_start) // DAY_SECONDS),
                len(self.daily_contents) - 1,
            )
            while self._day <= event_day:
                self.update_server.refresh_with_content(
                    self.inner.engine.cache, self.daily_contents[self._day]
                )
                self._day += 1
                applied += 1
        result = self.inner.serve(request)
        if applied:
            # Surface in the trace which requests paid for catch-up
            # refreshes — they are this backend's latency outliers.
            return BackendResult(
                outcome=result.outcome,
                radio_s=result.radio_s,
                annotations=dict(
                    result.annotations, refreshes_applied=applied
                ),
                energy=result.energy,
            )
        return result


class WebBackend:
    """A PocketWeb phone: ``request.key`` is the URL being visited."""

    def __init__(self, cloudlet) -> None:
        self.cloudlet = cloudlet

    def serve(self, request: ServeRequest) -> BackendResult:
        browse = self.cloudlet.browse(request.key, request.timestamp)
        outcome = QueryOutcome(
            query=request.key,
            hit=browse.hit,
            source=(
                ServiceSource.CACHE
                if browse.hit
                else ServiceSource.RADIO_3G
            ),
            latency_s=browse.latency_s,
            energy_j=browse.energy_j,
            timestamp=request.timestamp,
        )
        # Any path that moved bytes over the radio can share its fetch;
        # approximate the shareable window with the full visit latency.
        radio_s = browse.latency_s if browse.bytes_over_radio else 0.0
        return BackendResult(
            outcome=outcome, radio_s=radio_s, energy=browse.energy_breakdown
        )
