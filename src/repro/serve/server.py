"""The asyncio cloudlet server: sessions, admission control, refresh.

One :class:`CloudletServer` fronts many devices.  Each device gets a
*session* — a bounded FIFO queue plus a worker task that drives that
device's backend strictly in submission order (a phone answers its own
user's queries one at a time; cross-device requests interleave freely).

Admission control is shed-on-overload, never queue-without-bound:

* a full per-device queue rejects with ``Overloaded("device-queue-full")``;
* a server-wide in-flight cap rejects with ``Overloaded("server-busy")``.

A rejected request costs O(1) work and resolves immediately with the
typed shed response, so an overloaded server stays responsive and its
memory stays bounded no matter the offered load.

Cache misses go through the shared :class:`~repro.serve.batcher.MissBatcher`
so concurrent identical fetches ride one simulated radio round trip.

A background refresh task (``ServeConfig.refresh_interval_s``) applies
``refresh_fn`` to every session's backend under that session's lock —
serving never observes a half-applied update, and the scheduler yields
between devices so it cannot monopolise the loop.

The server never reads wall clocks directly — all timing goes through
``loop.time()`` and ``asyncio.sleep`` — so the same code runs under a
stock loop (real time) or a :class:`~repro.serve.vclock.VirtualTimeLoop`
(deterministic simulated time).
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.obs.energy import EnergyBreakdown
from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.trace import TraceContext, get_tracer
from repro.serve.backends import DeviceBackend
from repro.serve.batcher import MissBatcher
from repro.serve.requests import Overloaded, ServeRequest, ServeResponse
from repro.serve.telemetry import ServeTelemetry

__all__ = ["CloudletServer", "ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Serving-layer knobs (the model itself is the backend's business).

    Args:
        queue_depth: per-device queue bound; the device sheds above it.
        max_inflight: server-wide cap on admitted-but-unfinished
            requests across all devices.
        time_scale: multiplier from modelled seconds to loop-clock
            seconds.  1.0 under the virtual loop replays model time
            exactly; small values make wall-clock demos brisk; 0.0
            serves with no sleeps at all (pure throughput mode).
        refresh_interval_s: period of the background cache refresh task
            (None disables it).
    """

    queue_depth: int = 32
    max_inflight: int = 4096
    time_scale: float = 1.0
    refresh_interval_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        if self.max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if self.time_scale < 0:
            raise ValueError("time_scale must be non-negative")
        if self.refresh_interval_s is not None and self.refresh_interval_s <= 0:
            raise ValueError("refresh_interval_s must be positive when given")


class _DeviceSession:
    """One device's bounded queue, backend, and worker task."""

    __slots__ = ("device_id", "backend", "queue", "lock", "worker")

    def __init__(
        self, device_id: int, backend: DeviceBackend, queue_depth: int
    ) -> None:
        self.device_id = device_id
        self.backend = backend
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=queue_depth)
        # Serializes backend access between the worker and the
        # background refresher; the worker is the queue's only consumer.
        self.lock = asyncio.Lock()
        self.worker: Optional["asyncio.Task"] = None


class CloudletServer:
    """Serve requests from many devices over their per-device backends.

    Args:
        backend_factory: ``device_id -> DeviceBackend``; called once per
            device on first contact (each phone gets its own cache).
        config: serving-layer parameters.
        registry: metrics sink (defaults to the process registry).
        refresh_fn: ``(device_id, backend) -> None`` applied by the
            background refresh task; required if
            ``config.refresh_interval_s`` is set.
        telemetry: windowed telemetry plane; a default
            :class:`~repro.serve.telemetry.ServeTelemetry` is created
            when not given, so every server is observable out of the box.
        edge: optional cooperative cloudlet tier (an
            :class:`~repro.edge.tier.EdgeTier`-shaped object).  When
            set, device-local misses are resolved through it — edge
            community hit or batched origin fetch — instead of the
            server's own miss batcher, and an over-committed cloudlet
            node sheds the request mid-flight with
            ``Overloaded("edge-queue-full")``.  Duck-typed so the serve
            layer never imports :mod:`repro.edge`.

    All methods must be called from the event loop the server runs on.
    """

    def __init__(
        self,
        backend_factory: Callable[[int], DeviceBackend],
        config: ServeConfig = ServeConfig(),
        registry: Optional[MetricsRegistry] = None,
        refresh_fn: Optional[Callable[[int, DeviceBackend], None]] = None,
        telemetry: Optional[ServeTelemetry] = None,
        edge=None,
    ) -> None:
        if config.refresh_interval_s is not None and refresh_fn is None:
            raise ValueError("refresh_interval_s set but no refresh_fn given")
        self.backend_factory = backend_factory
        self.config = config
        self.registry = registry if registry is not None else get_registry()
        self.refresh_fn = refresh_fn
        self.batcher = MissBatcher()
        self.edge = edge
        self.telemetry = telemetry if telemetry is not None else ServeTelemetry()
        if edge is not None:
            self.telemetry.edge_stats_fn = edge.stats
            flight = getattr(self.telemetry, "flight", None)
            if flight is not None:
                flight.observe_edge(edge)
        # Per-server trace ids: a plain counter is deterministic under
        # the virtual clock (no randomness, no wall time).
        self._trace_ids = itertools.count(1)
        self._sessions: Dict[int, _DeviceSession] = {}
        self._inflight = 0
        self._pending: Set["asyncio.Future"] = set()
        self._refresh_task: Optional["asyncio.Task"] = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start background tasks (the refresh scheduler, if configured)."""
        if self.config.refresh_interval_s is not None:
            loop = asyncio.get_running_loop()
            self._refresh_task = loop.create_task(self._refresh_loop())

    async def drain(self) -> None:
        """Wait until every admitted request has completed."""
        while self._pending:
            await asyncio.gather(*list(self._pending), return_exceptions=True)

    async def close(self) -> None:
        """Cancel workers and the refresher; pending work is abandoned."""
        self._closed = True
        tasks = [s.worker for s in self._sessions.values() if s.worker]
        if self._refresh_task is not None:
            tasks.append(self._refresh_task)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- request path -------------------------------------------------------

    def ensure_session(self, device_id: int) -> _DeviceSession:
        """The device's session, creating backend + worker on first use."""
        session = self._sessions.get(device_id)
        if session is None:
            session = _DeviceSession(
                device_id,
                self.backend_factory(device_id),
                self.config.queue_depth,
            )
            loop = asyncio.get_running_loop()
            session.worker = loop.create_task(self._run_session(session))
            self._sessions[device_id] = session
        return session

    def submit(self, request: ServeRequest) -> "asyncio.Future":
        """Admit or shed ``request``; resolves to a ``ServeReply``.

        Open-loop safe: returns immediately in both cases.  Shed
        requests resolve synchronously with a typed
        :class:`~repro.serve.requests.Overloaded`; admitted requests
        resolve when their device's worker completes them.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        now = loop.time()
        trace = TraceContext(next(self._trace_ids), now)
        self.registry.counter("serve.requests").inc()
        if self._inflight >= self.config.max_inflight:
            self._shed(future, request, "server-busy", now, trace)
            return future
        session = self.ensure_session(request.device_id)
        try:
            session.queue.put_nowait((request, future, trace))
        except asyncio.QueueFull:
            self._shed(future, request, "device-queue-full", now, trace)
            return future
        self._inflight += 1
        self.registry.counter("serve.admitted").inc()
        self.registry.gauge("serve.inflight_peak").max(self._inflight)
        self.telemetry.on_submit(now, self._inflight)
        self._pending.add(future)
        future.add_done_callback(self._pending.discard)
        return future

    def _shed(
        self, future, request, reason: str, now: float, trace: TraceContext
    ) -> None:
        self.registry.counter("serve.shed").inc()
        self.registry.counter(
            "serve.shed." + reason.replace("-", "_")
        ).inc()
        trace.mark("shed", now)
        trace.annotate(shed_reason=reason)
        reply = Overloaded(request=request, reason=reason, t=now, trace=trace)
        self.telemetry.on_shed(now, reply)
        future.set_result(reply)

    # -- workers ------------------------------------------------------------

    async def _run_session(self, session: _DeviceSession) -> None:
        loop = asyncio.get_running_loop()
        tracer = get_tracer()
        scale = self.config.time_scale
        while True:
            request, future, trace = await session.queue.get()
            enqueued_at = trace.marks[0][1]
            started_at = loop.time()
            trace.mark("queue_wait", started_at)
            async with session.lock:
                with tracer.span(
                    "serve_request",
                    device_id=session.device_id,
                    key=request.key,
                    trace_id=trace.trace_id,
                ):
                    result = session.backend.serve(request)
            # Dequeue-to-here is time spent waiting out a session
            # refresh holding the lock (the backend itself is sync model
            # code: zero loop-clock time under the virtual clock).
            trace.mark("refresh_blocked", loop.time())
            if result.annotations:
                trace.annotate(**result.annotations)
            outcome = result.outcome
            shared = False
            energy: Optional[EnergyBreakdown] = result.energy
            # Default (solo/hit) attribution: the request pays for its
            # own isolated radio timeline.
            radio_timeline_j = energy.radio_j if energy is not None else 0.0
            tier = "device" if outcome.hit else "origin"
            edge_node: Optional[int] = None
            if not outcome.hit and result.radio_s > 0:
                radio_energy = (
                    (energy.ramp_j, energy.transfer_j, energy.tail_j)
                    if energy is not None
                    else None
                )
                if self.edge is not None:
                    # Peer-fetch chain: the owning cloudlet node either
                    # answers from its community slice or fetches from
                    # the origin through its single-flight batcher.
                    edge_result = await self.edge.fetch(
                        request.key,
                        session.device_id,
                        result.radio_s,
                        scale,
                        trace=trace,
                        radio_energy=radio_energy,
                    )
                    if edge_result.shed:
                        # The cloudlet refused the fetch mid-flight.
                        # The device-side model state already advanced
                        # (the backend served the local miss); the shed
                        # accounts the refused community fetch.
                        self._inflight -= 1
                        self._shed(
                            future,
                            request,
                            edge_result.reason,
                            loop.time(),
                            trace,
                        )
                        session.queue.task_done()
                        continue
                    shared = edge_result.shared
                    tier = edge_result.tier
                    edge_node = edge_result.node_id
                    if energy is not None and edge_result.share is not None:
                        energy = energy.with_radio(*edge_result.share)
                        radio_timeline_j = edge_result.timeline_j
                else:
                    # Occupy the shared radio for the fetch; identical
                    # concurrent misses piggyback on one round trip.
                    fetch_share = await self.batcher.fetch_shared(
                        request.key,
                        result.radio_s * scale,
                        trace=trace,
                        radio_energy=radio_energy,
                    )
                    shared = fetch_share.shared
                    if energy is not None and fetch_share.share is not None:
                        # Re-attribute the flight's wake/tail across its
                        # participants; the leader reports the full
                        # timeline spend, riders report none (the
                        # ledger's invariant).
                        energy = energy.with_radio(*fetch_share.share)
                        radio_timeline_j = fetch_share.timeline_j
                    # A rider whose leader carried no energy components
                    # keeps its isolated breakdown and accounts as a
                    # solo fetch — self-consistent, if pessimistic.
                    trace.mark("batch_wait", loop.time())
                local_s = (outcome.latency_s - result.radio_s) * scale
                if local_s > 0:
                    await asyncio.sleep(local_s)
            elif outcome.latency_s * scale > 0:
                await asyncio.sleep(outcome.latency_s * scale)
            completed_at = loop.time()
            trace.mark("service", completed_at)
            if energy is not None:
                trace.energy = energy
            response = ServeResponse(
                request=request,
                outcome=outcome,
                enqueued_at=enqueued_at,
                started_at=started_at,
                completed_at=completed_at,
                shared_fetch=shared,
                trace=trace,
                energy=energy,
                radio_timeline_j=radio_timeline_j,
                tier=tier,
                edge_node=edge_node,
            )
            self._record(response)
            self._inflight -= 1
            self.telemetry.on_response(completed_at, response, self._inflight)
            if not future.done():
                future.set_result(response)
            session.queue.task_done()

    def _record(self, response: ServeResponse) -> None:
        reg = self.registry
        reg.counter("serve.completed").inc()
        if response.outcome.hit:
            reg.counter("serve.hits").inc()
        else:
            reg.counter("serve.misses").inc()
        if response.shared_fetch:
            reg.counter("serve.shared_fetches").inc()
        reg.counter("serve.tier." + response.tier).inc()
        reg.histogram("serve.queue_wait_s").add(response.queue_wait_s)
        reg.histogram("serve.sojourn_s").add(response.sojourn_s)
        if response.energy is not None:
            reg.histogram("serve.energy_j").add(response.energy_j)

    # -- background refresh -------------------------------------------------

    async def _refresh_loop(self) -> None:
        """Periodically refresh every session's backend, never blocking
        serving for longer than one device's refresh."""
        tracer = get_tracer()
        assert self.config.refresh_interval_s is not None
        while True:
            await asyncio.sleep(self.config.refresh_interval_s)
            with tracer.span("serve_refresh_round", n=len(self._sessions)):
                for device_id, session in list(self._sessions.items()):
                    async with session.lock:
                        self.refresh_fn(device_id, session.backend)
                    self.registry.counter("serve.refreshes").inc()
                    # Yield so queued requests of other devices proceed
                    # between per-device refreshes.
                    await asyncio.sleep(0)

    # -- introspection ------------------------------------------------------

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def n_sessions(self) -> int:
        return len(self._sessions)
