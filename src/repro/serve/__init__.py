"""repro.serve: the online serving layer.

The paper's pocket cloudlet is an *online* system — a phone answering
live queries from its local cache and falling back to the radio on
misses.  This package turns the offline replay stack into that live
service:

* :mod:`repro.serve.server` — an asyncio request server with per-device
  sessions, bounded queues, admission control (typed ``Overloaded``
  sheds, never an unbounded queue), and a background cache-refresh
  scheduler;
* :mod:`repro.serve.batcher` — single-flight dedup of concurrent
  identical cache-miss fetches over the simulated radio;
* :mod:`repro.serve.backends` — the ``DeviceBackend`` protocol wrapping
  :class:`~repro.pocketsearch.engine.PocketSearchEngine` and the other
  cloudlets behind one serve interface;
* :mod:`repro.serve.vclock` — a deterministic simulated-time event loop,
  so the same server code runs in wall-clock or virtual time;
* :mod:`repro.serve.loadgen` — an open-loop load generator drawing
  sessions from :mod:`repro.logs` with Poisson/diurnal arrivals;
* :mod:`repro.serve.harness` — the replay-equivalence harness: a
  simulated-time serve over a log reproduces ``run_replay``'s hit/miss
  accounting bit-for-bit;
* :mod:`repro.serve.telemetry` — the always-on telemetry plane:
  windowed rolling stats, slow-request exemplars, and SLO burn-rate
  monitoring over every request's trace-segment breakdown;
* :mod:`repro.serve.top` — the ``repro top`` terminal dashboard over a
  live endpoint or a snapshot file.
"""

from repro.serve.backends import (
    BackendResult,
    DailyUpdateBackend,
    DeviceBackend,
    SearchBackend,
    WebBackend,
)
from repro.serve.batcher import FetchShare, MissBatcher
from repro.serve.harness import (
    ServeReport,
    run_loadtest,
    run_workload,
    serve_replay,
)
from repro.serve.loadgen import LoadGenConfig, Workload, build_workload
from repro.serve.requests import (
    SEGMENT_NAMES,
    Overloaded,
    ServeRequest,
    ServeResponse,
)
from repro.serve.server import CloudletServer, ServeConfig
from repro.serve.telemetry import ServeTelemetry
from repro.serve.vclock import VirtualTimeLoop, run_simulated

__all__ = [
    "BackendResult",
    "CloudletServer",
    "DailyUpdateBackend",
    "DeviceBackend",
    "FetchShare",
    "LoadGenConfig",
    "MissBatcher",
    "Overloaded",
    "SEGMENT_NAMES",
    "SearchBackend",
    "ServeConfig",
    "ServeReport",
    "ServeRequest",
    "ServeResponse",
    "ServeTelemetry",
    "VirtualTimeLoop",
    "WebBackend",
    "Workload",
    "build_workload",
    "run_loadtest",
    "run_simulated",
    "run_workload",
    "serve_replay",
]
