"""``repro top`` — a live terminal view of the serving telemetry.

Renders one screenful from a telemetry snapshot document (the
``serve`` section of ``/metrics.json``): headline rolling stats,
per-bucket sparklines, SLO burn-rate status, and the window's slowest
requests with their full segment breakdowns.

Two data sources:

* ``--url http://HOST:PORT`` — poll a live
  :class:`~repro.obs.exposition.TelemetryEndpoint` every ``--interval``
  seconds and redraw (the classic ``top`` experience);
* ``--snapshot PATH`` — render a snapshot JSON written by
  ``repro loadtest --snapshot-out`` once (deterministic, CI-friendly).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

__all__ = ["render_top", "top_main"]

_SPARKS = "▁▂▃▄▅▆▇█"


def _spark(values: List[float]) -> str:
    """A unicode sparkline; empty values render as spaces."""
    finite = [v for v in values if v is not None and not math.isnan(v)]
    if not finite:
        return ""
    top = max(finite) or 1.0
    out = []
    for v in values:
        if v is None or math.isnan(v):
            out.append(" ")
        else:
            rank = int(v / top * (len(_SPARKS) - 1)) if top else 0
            out.append(_SPARKS[max(0, min(rank, len(_SPARKS) - 1))])
    return "".join(out)


def _fmt(value: Any, pattern: str = "{:.3f}", missing: str = "-") -> str:
    if value is None:
        return missing
    try:
        number = float(value)
    except (TypeError, ValueError):
        return str(value)
    if math.isnan(number):
        return missing
    return pattern.format(number)


def extract_serve_snapshot(doc: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """Find the telemetry snapshot inside a ``/metrics.json`` document
    (or accept a bare snapshot)."""
    if "rolling" in doc:
        return doc
    serve = doc.get("serve")
    if isinstance(serve, dict) and "rolling" in serve:
        return serve
    return None


def render_top(snapshot: Dict[str, Any], buckets_shown: int = 60) -> str:
    """One screenful of dashboard text from a telemetry snapshot."""
    rolling = snapshot.get("rolling", {})
    lines: List[str] = []
    lines.append(
        f"repro top — t={_fmt(snapshot.get('t'), '{:.1f}')}s  "
        f"window={_fmt(snapshot.get('window_s'), '{:.0f}')}s "
        f"({_fmt(snapshot.get('bucket_width_s'), '{:g}')}s buckets)"
    )
    lines.append(
        f"rate {_fmt(rolling.get('request_rate_rps'))} req/s  "
        f"completed {_fmt(rolling.get('completed'), '{:.0f}')}  "
        f"hit {_fmt(rolling.get('hit_rate'), '{:.1%}')}  "
        f"shed {_fmt(rolling.get('shed_rate'), '{:.1%}')}  "
        f"inflight {_fmt(rolling.get('inflight'), '{:.0f}')} "
        f"(hwm {_fmt(rolling.get('inflight_hwm'), '{:.0f}')})"
    )
    lines.append(
        f"sojourn p50 {_fmt(rolling.get('sojourn_p50_s'))}s "
        f"p99 {_fmt(rolling.get('sojourn_p99_s'))}s  "
        f"queue p99 {_fmt(rolling.get('queue_wait_p99_s'))}s  "
        f"batch-wait p99 {_fmt(rolling.get('batch_wait_p99_s'))}s  "
        f"batch eff {_fmt(rolling.get('batch_efficiency'), '{:.2f}')}"
    )
    tiers = rolling.get("tiers") or {}
    if any(name != "device" for name in tiers):
        mix = "  ".join(
            f"{name} {_fmt(count, '{:.0f}')}" for name, count in sorted(tiers.items())
        )
        lines.append(
            f"answered by: {mix}  "
            f"edge-hop p99 {_fmt(rolling.get('edge_hop_p99_s'))}s"
        )

    rows = snapshot.get("per_bucket", [])[-buckets_shown:]
    if rows:
        lines.append("")
        for label, key in (
            ("completed", "completed"),
            ("shed", "shed"),
            ("p99 (s)", "sojourn_p99_s"),
        ):
            series = [row.get(key) for row in rows]
            numeric = [
                float(v) for v in series
                if v is not None and not math.isnan(float(v))
            ]
            peak = max(numeric) if numeric else 0.0
            lines.append(
                f"{label:>10} {_spark([None if v is None else float(v) for v in series])}"
                f"  peak {_fmt(peak, '{:g}')}"
            )

    energy = snapshot.get("energy")
    if energy:
        erolling = energy.get("rolling", {})
        lines.append("")
        lines.append(
            f"energy {_fmt(erolling.get('energy_j_per_query'))} J/query "
            f"(p50 {_fmt(erolling.get('energy_j_p50'))} "
            f"p99 {_fmt(erolling.get('energy_j_p99'))})  "
            f"hit {_fmt(erolling.get('hit_energy_j'))} J  "
            f"miss {_fmt(erolling.get('miss_energy_j'))} J  "
            f"miss/hit {_fmt(erolling.get('hit_miss_energy_ratio'), '{:.1f}')}x  "
            f"{_fmt(erolling.get('power_w'))} W"
        )
        conservation = erolling.get("conservation", {})
        if conservation.get("requests"):
            lines.append(
                "radio ledger: attributed "
                f"{_fmt(conservation.get('attributed_radio_j'), '{:.3f}')} J"
                " vs timeline "
                f"{_fmt(conservation.get('timeline_radio_j'), '{:.3f}')} J"
                "  (error "
                f"{_fmt(conservation.get('conservation_error_j'), '{:.2e}')} J)"
            )
        erows = energy.get("per_bucket", [])[-buckets_shown:]
        if erows:
            source_names = sorted(
                {name for row in erows for name in row.get("sources", {})}
            )
            for label, series in [
                ("power (W)", [row.get("power_w") for row in erows]),
            ] + [
                (
                    f"{name[:7]} (W)",
                    [row.get("sources", {}).get(name, 0.0) for row in erows],
                )
                for name in source_names
            ]:
                numeric = [
                    float(v) for v in series
                    if v is not None and not math.isnan(float(v))
                ]
                peak = max(numeric) if numeric else 0.0
                lines.append(
                    f"{label:>10} "
                    f"{_spark([None if v is None else float(v) for v in series])}"
                    f"  peak {_fmt(peak, '{:.2f}')}"
                )
            width_s = float(snapshot.get("bucket_width_s") or 1.0)
            from repro.sim.powertrace import render_trace, segments_from_buckets

            # One chart column per bucket slot (last 60 buckets of time),
            # so samples land on bucket centers and short bursts show.
            last = float(erows[-1]["t_start"])
            trace_rows = [
                row for row in erows
                if float(row["t_start"]) > last - 60 * width_s
            ]
            segments = segments_from_buckets(trace_rows, width_s)
            if segments and any(s.power_w > 0 for s in segments):
                first = float(trace_rows[0]["t_start"])
                span = int(round((last - first) / width_s)) + 1
                lines.append("")
                lines.append(
                    render_trace(
                        segments,
                        width=max(span, 10),
                        height=5,
                        title="radio power trace (window)",
                    )
                )

    batteries = snapshot.get("batteries")
    if batteries and batteries.get("n_devices"):
        lines.append("")
        lines.append(
            f"batteries: {_fmt(batteries.get('n_devices'), '{:.0f}')} devices"
            f"  min {_fmt(batteries.get('min_level'), '{:.1%}')}"
            f"  mean {_fmt(batteries.get('mean_level'), '{:.1%}')}"
            f"  exhausted {_fmt(batteries.get('exhausted'), '{:.0f}')}"
            f"  burn {_fmt(batteries.get('mean_burn_per_day'), '{:.2%}')}/day"
            f"  {_fmt(batteries.get('queries_per_charge'), '{:.0f}')} "
            "queries/charge"
        )
        worst = batteries.get("worst", [])
        if worst:
            lines.append(
                f"  {'device':>7} {'level':>7} {'drained':>9} {'queries':>8} "
                f"{'burn/day':>9} {'q/charge':>9}"
            )
            for row in worst[:8]:
                lines.append(
                    f"  {_fmt(row.get('device_id'), '{:.0f}'):>7} "
                    f"{_fmt(row.get('level'), '{:.1%}'):>7} "
                    f"{_fmt(row.get('drained_j'), '{:.1f}J'):>9} "
                    f"{_fmt(row.get('queries'), '{:.0f}'):>8} "
                    f"{_fmt(row.get('burn_per_day'), '{:.2%}'):>9} "
                    f"{_fmt(row.get('queries_per_charge'), '{:.0f}'):>9}"
                )

    slo = snapshot.get("slo")
    if slo:
        lines.append("")
        lines.append("SLO rules (burn = budget consumption rate; ! = firing)")
        for rule in slo.get("status", []):
            flag = "!" if rule.get("firing") else " "
            lines.append(
                f" {flag} {rule.get('rule', '?'):<20} "
                f"burn L {_fmt(rule.get('burn_long'), '{:.2f}')} "
                f"S {_fmt(rule.get('burn_short'), '{:.2f}')}  "
                f"bad {_fmt(rule.get('bad_fraction'), '{:.3%}')} "
                f"of {_fmt(rule.get('budget'), '{:.2%}')} budget  "
                f"alerts {_fmt(rule.get('alerts'), '{:.0f}')}"
            )

    flight = snapshot.get("flight")
    if flight:
        retained = flight.get("retained", {})
        dropped = flight.get("dropped", {})
        kept = sum(retained.values()) if retained else 0
        lost = sum(dropped.values()) if dropped else 0
        bundles = flight.get("bundles", [])
        line = (
            f"flight recorder: {kept} records retained "
            f"(req {_fmt(retained.get('request'), '{:.0f}')} "
            f"shed {_fmt(retained.get('shed'), '{:.0f}')} "
            f"bkt {_fmt(retained.get('bucket'), '{:.0f}')}), "
            f"{lost} evicted, {len(bundles)} bundle(s)"
        )
        pending = flight.get("pending_trigger")
        if pending:
            line += (
                f"  TRIGGERED: {pending.get('trigger')} "
                f"at t={_fmt(pending.get('t'), '{:.1f}')}s"
            )
        lines.append("")
        lines.append(line)
        for path in bundles:
            lines.append(f"  bundle: {path}")

    exemplars = snapshot.get("exemplars", [])
    if exemplars:
        lines.append("")
        lines.append("slowest requests in window")
        # Edge hop columns only when an edge tier actually served traffic
        # in the window, so the classic layout stays unchanged without one.
        has_edge = any(
            ex.get("edge_node") is not None
            or ex.get("breakdown", {}).get("edge_hop")
            for ex in exemplars
        )
        header = (
            f"  {'trace':>7} {'latency':>9} {'queue':>8} {'refresh':>8} "
        )
        if has_edge:
            header += f"{'e.hop':>8} {'e.serve':>8} "
        header += f"{'batch':>8} {'service':>8}  "
        if has_edge:
            header += "tier   "
        header += "device key"
        lines.append(header)
        for ex in exemplars[:8]:
            breakdown = ex.get("breakdown", {})
            key = str(ex.get("key", ""))[:24]
            row = (
                f"  {_fmt(ex.get('trace_id'), '{:.0f}'):>7} "
                f"{_fmt(ex.get('latency_s')):>9} "
                f"{_fmt(breakdown.get('queue_wait')):>8} "
                f"{_fmt(breakdown.get('refresh_blocked')):>8} "
            )
            if has_edge:
                row += (
                    f"{_fmt(breakdown.get('edge_hop', 0.0)):>8} "
                    f"{_fmt(breakdown.get('edge_serve', 0.0)):>8} "
                )
            row += (
                f"{_fmt(breakdown.get('batch_wait')):>8} "
                f"{_fmt(breakdown.get('service')):>8}  "
            )
            if has_edge:
                tier = str(ex.get("tier", "-"))
                node = ex.get("edge_node")
                if node is not None:
                    tier += f"/{node}"
                row += f"{tier:<6} "
            row += f"{_fmt(ex.get('device_id'), '{:.0f}')} {key}"
            lines.append(row)
    return "\n".join(lines)


def _fetch_snapshot(url: str) -> Optional[Dict[str, Any]]:
    target = url.rstrip("/") + "/metrics.json"
    with urllib.request.urlopen(target, timeout=5) as response:
        return extract_serve_snapshot(json.loads(response.read()))


def top_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Live (or snapshot) terminal view of serving telemetry.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--url", help="base URL of a running telemetry endpoint"
    )
    source.add_argument(
        "--snapshot", metavar="PATH",
        help="render one frame from a snapshot JSON file",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0,
        help="poll period in seconds with --url (default 2)",
    )
    parser.add_argument(
        "--frames", type=int, default=0, metavar="N",
        help="stop after N frames (default 0 = until interrupted; "
        "--snapshot always renders exactly one)",
    )
    args = parser.parse_args(argv)

    if args.snapshot:
        with open(args.snapshot) as fh:
            snapshot = extract_serve_snapshot(json.load(fh))
        if snapshot is None:
            print(
                f"repro top: {args.snapshot} has no telemetry snapshot",
                file=sys.stderr,
            )
            return 2
        try:
            print(render_top(snapshot))
        except BrokenPipeError:  # e.g. piped into head(1)
            sys.stderr.close()
        return 0

    frame = 0
    try:
        while True:
            try:
                snapshot = _fetch_snapshot(args.url)
            except (urllib.error.URLError, OSError) as exc:
                print(f"repro top: {exc}", file=sys.stderr)
                return 1
            frame += 1
            if snapshot is None:
                print("repro top: endpoint returned no serve telemetry")
            else:
                # Clear screen + home between frames, like top(1).
                if args.frames != 1:
                    sys.stdout.write("\x1b[2J\x1b[H")
                print(render_top(snapshot))
                sys.stdout.flush()
            if args.frames and frame >= args.frames:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(top_main())
