"""``repro serve`` / ``repro loadtest`` command implementations.

Both verbs run on the deterministic virtual clock, so a "10-minute"
load test finishes in however long the Python work takes, and two runs
with the same flags print the same numbers.

``repro serve`` replays the Section 6.2 experiment through the online
server and reports the serving-layer view (sojourn percentiles,
batching, sheds) next to the hit rates; ``--check-equivalence`` also
runs the offline replay and verifies the accounting matches.

``repro loadtest`` drives the server with an open-loop workload at a
chosen multiple of the log's natural rate and reports how admission
control held up.  ``--max-shed-rate`` turns the report into a pass/fail
gate for CI.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.edge.tier import EdgeTopology
from repro.experiments.common import default_log, format_table
from repro.obs import trace as obs_trace
from repro.obs.exposition import TelemetryEndpoint
from repro.obs.flight import FlightRecorder
from repro.obs.manifest import ManifestRecorder
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLOPolicy
from repro.obs.triggers import TriggerConfig, TriggerEngine
from repro.serve.harness import ServeReport, run_loadtest, serve_replay
from repro.serve.loadgen import LoadGenConfig
from repro.serve.server import ServeConfig
from repro.serve.telemetry import ServeTelemetry
from repro.sim.replay import CacheMode, ReplayConfig

__all__ = ["loadtest_main", "serve_main"]

#: Tolerance of the serve-vs-replay equivalence check (sums of model
#: latencies are float accumulations; identical orders give identical
#: sums, so this is belt-and-braces).
EQUIVALENCE_TOLERANCE = 1e-9


def _add_edge_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("edge tier")
    group.add_argument(
        "--edge-nodes", type=int, default=None, metavar="N",
        help="front the origin with N simulated cloudlet nodes "
        "(default: no edge tier)",
    )
    group.add_argument(
        "--edge-capacity", type=int, default=None, metavar="K",
        help="per-node community-slice capacity in records "
        "(default: unbounded)",
    )
    group.add_argument(
        "--edge-routing", choices=("key", "home"), default="key",
        help="route device misses by consistent-hash key ownership "
        "or by the device's home region (default key)",
    )
    group.add_argument(
        "--edge-regions", type=int, default=None, metavar="R",
        help="number of geographic regions for device placement "
        "(default: one per node)",
    )
    group.add_argument(
        "--placement-skew", type=float, default=0.0, metavar="S",
        help="Zipf-like skew of device-to-region placement "
        "(0.0 uniform, default)",
    )
    group.add_argument(
        "--edge-max-inflight", type=int, default=None, metavar="M",
        help="per-node in-flight bound; excess requests shed with "
        "reason edge-queue-full (default: unbounded)",
    )


def _add_flight_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("flight recorder")
    group.add_argument(
        "--no-flight", action="store_true",
        help="disable the always-on flight recorder",
    )
    group.add_argument(
        "--flight-bundle-dir", metavar="DIR", default="flight_bundles",
        help="where triggered postmortem bundles are written "
        "(default flight_bundles)",
    )
    group.add_argument(
        "--flight-ring", type=int, default=8192, metavar="N",
        help="request/shed ring capacity (default 8192)",
    )
    group.add_argument(
        "--flight-shed-spike", type=float, default=0.5, metavar="F",
        help="bucket shed fraction that triggers a bundle "
        "(<= 0 disables; default 0.5)",
    )
    group.add_argument(
        "--flight-trigger-at", type=float, default=None, metavar="T",
        help="manually trigger a bundle at this simulated time",
    )
    group.add_argument(
        "--flight-dump", action="store_true",
        help="force a bundle at end of run even if nothing triggered",
    )
    group.add_argument(
        "--flight-incident-window", type=float, default=60.0, metavar="S",
        help="pre-trigger analysis window seconds (default 60)",
    )
    group.add_argument(
        "--flight-baseline-window", type=float, default=30.0, metavar="S",
        help="trailing baseline window seconds captured after the "
        "trigger before dumping (default 30)",
    )
    group.add_argument(
        "--flight-max-bundles", type=int, default=1, metavar="N",
        help="bundles dumped per run (default 1)",
    )


def _build_flight(
    args: argparse.Namespace, config: Dict[str, object]
) -> Optional[FlightRecorder]:
    """The load test's flight recorder (None with ``--no-flight``)."""
    if args.no_flight:
        return None
    trigger_config = TriggerConfig(
        shed_spike=(
            args.flight_shed_spike if args.flight_shed_spike > 0 else None
        ),
        trigger_at=args.flight_trigger_at,
        incident_window_s=args.flight_incident_window,
        baseline_window_s=args.flight_baseline_window,
        bundle_dir=args.flight_bundle_dir,
        max_bundles=args.flight_max_bundles,
    )
    return FlightRecorder(
        config=config,
        seed=args.seed,
        triggers=TriggerEngine(trigger_config),
        request_ring=args.flight_ring,
        shed_ring=args.flight_ring,
    )


def _parse_burst(
    spec: Optional[str],
) -> Tuple[Optional[float], float, float]:
    """``START:DUR:MULT`` -> burst fields (all-None when unset)."""
    if spec is None:
        return None, 0.0, 1.0
    parts = spec.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"--burst wants START:DURATION:MULTIPLIER, got {spec!r}"
        )
    start, duration, multiplier = (float(p) for p in parts)
    return start, duration, multiplier


def _edge_topology(args: argparse.Namespace) -> Optional[EdgeTopology]:
    if args.edge_nodes is None:
        return None
    return EdgeTopology(
        n_nodes=args.edge_nodes,
        node_capacity=args.edge_capacity,
        routing=args.edge_routing,
        n_regions=args.edge_regions,
        placement_skew=args.placement_skew,
        node_max_inflight=args.edge_max_inflight,
    )


def _edge_config(args: argparse.Namespace) -> Dict[str, object]:
    """Manifest-config view of the edge flags (None when disabled)."""
    if args.edge_nodes is None:
        return {"edge_nodes": None}
    return {
        "edge_nodes": args.edge_nodes,
        "edge_capacity": args.edge_capacity,
        "edge_routing": args.edge_routing,
        "edge_regions": args.edge_regions,
        "placement_skew": args.placement_skew,
        "edge_max_inflight": args.edge_max_inflight,
    }


def _report_rows(report: ServeReport) -> List[List[str]]:
    rows = [
        ["requests", str(report.requests)],
        ["completed", str(report.completed)],
        ["shed", f"{report.shed} ({report.shed_rate:.1%})"],
        ["hit rate", f"{report.hit_rate:.3f}"],
        ["throughput", f"{report.throughput_rps:.3f} req/s"],
        ["sojourn p50", f"{report.sojourn_p50_s:.3f} s"],
        ["sojourn p99", f"{report.sojourn_p99_s:.3f} s"],
        ["queue wait p99", f"{report.queue_wait_p99_s:.3f} s"],
        ["refresh-blocked p99", f"{report.refresh_blocked_p99_s:.3f} s"],
        ["batch wait p99", f"{report.batch_wait_p99_s:.3f} s"],
        ["service p99", f"{report.service_p99_s:.3f} s"],
        ["radio fetches", str(report.fetches)],
        ["piggybacked", str(report.piggybacked)],
        ["batch efficiency", f"{report.batch_efficiency:.3f}"],
    ]
    if report.energy_j_per_query == report.energy_j_per_query:  # not NaN
        rows += [
            ["energy/query", f"{report.energy_j_per_query:.3f} J "
             f"(p50 {report.energy_j_p50:.3f}, p99 {report.energy_j_p99:.3f})"],
            ["hit energy", f"{report.hit_energy_j:.3f} J"],
            ["miss energy", f"{report.miss_energy_j:.3f} J"],
            ["miss/hit energy", f"{report.hit_miss_energy_ratio:.1f}x"],
            ["radio attributed", f"{report.attributed_radio_j:.3f} J "
             f"(timeline {report.timeline_radio_j:.3f} J, "
             f"err {report.conservation_error_j:.2e})"],
        ]
    if report.edge is not None:
        edge = report.edge
        rows += [
            ["edge nodes", str(edge["n_nodes"])],
            ["community hit rate", f"{edge['community_hit_rate']:.3f} "
             f"({edge['community_hits']}/"
             f"{edge['community_hits'] + edge['community_misses']})"],
            ["edge hop p99", f"{report.edge_hop_p99_s:.3f} s"],
            ["edge sheds", str(edge["sheds"])],
            ["edge origin fetches", f"{edge['origin_fetches']} "
             f"(+{edge['origin_piggybacked']} piggybacked)"],
            ["edge propagation", f"{edge['origin']['flushes']} flushes, "
             f"{edge['origin']['bytes_uploaded']} B up, "
             f"{edge['origin']['bytes_downloaded']} B down"],
            ["hop re-sum err", f"{report.hop_resum_error_s:.2e} s / "
             f"{report.hop_resum_error_j:.2e} J"],
        ]
    if report.battery_day_fraction == report.battery_day_fraction:
        per_charge = (
            str(report.queries_per_charge)
            if report.queries_per_charge is not None
            else "-"
        )
        rows += [
            ["battery burn", f"{report.battery_day_fraction:.2%}/day "
             f"(min level {report.battery_min_level:.1%})"],
            ["queries/charge", per_charge],
        ]
    return rows


def _print_slo(report: ServeReport) -> None:
    slo = report.slo
    if slo is None:
        return
    print(f"SLO verdict: {slo['verdict'].upper()} "
          f"({slo['alerts_total']} burn-rate alerts)")
    rows = [
        [
            name,
            rule["kind"],
            f"{rule['objective']:.3f}",
            f"{rule['bad_fraction']:.4f}",
            str(rule["alerts"]),
            "pass" if rule["passed"] else "FAIL",
        ]
        for name, rule in sorted(slo["rules"].items())
    ]
    print(format_table(
        rows, ["rule", "kind", "objective", "bad frac", "alerts", "verdict"]
    ))
    for alert in slo["alerts"]:
        print(
            f"  alert t={alert['t']:.1f}s {alert['rule']} "
            f"burn long={alert['burn_long']:.1f} "
            f"short={alert['burn_short']:.1f}"
        )


async def _serve_endpoint(
    registry: MetricsRegistry,
    telemetry: ServeTelemetry,
    port: int,
    seconds: float,
) -> None:
    """Expose the finished run's telemetry over HTTP for ``seconds``."""
    endpoint = TelemetryEndpoint(
        registry,
        snapshot_fn=lambda: {"serve": telemetry.snapshot()},
        samples_fn=telemetry.prometheus_samples,
        port=port,
    )
    await endpoint.start()
    print(
        f"telemetry on http://127.0.0.1:{endpoint.port}/metrics "
        f"(and /metrics.json) for {seconds:.0f}s",
        flush=True,
    )
    await asyncio.sleep(seconds)
    await endpoint.close()


def _write_manifest(
    recorder: ManifestRecorder, report: ServeReport, path: Optional[str]
) -> None:
    for key, value in report.to_metrics().items():
        recorder.add_metric(key, value)
    if path:
        recorder.manifest.metrics.update(recorder.metrics)
        recorder.manifest.write(path)
        print(f"wrote run manifest to {path}")


# -- repro serve ------------------------------------------------------------


def serve_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Replay month-1 traffic through the online serving "
        "layer on the simulated clock.",
    )
    parser.add_argument(
        "--users", type=int, default=10,
        help="users per Table 6 class (default 10)",
    )
    parser.add_argument(
        "--mode", choices=CacheMode.ALL, default=CacheMode.FULL,
        help="cache mode (default full)",
    )
    parser.add_argument(
        "--daily-updates", action="store_true",
        help="apply the Section 6.2.2 nightly community refresh",
    )
    parser.add_argument("--seed", type=int, default=97, help="replay seed")
    parser.add_argument(
        "--check-equivalence", action="store_true",
        help="also run the offline replay and verify accounting matches",
    )
    parser.add_argument("--manifest-out", metavar="PATH", default=None)
    _add_edge_args(parser)
    args = parser.parse_args(argv)
    if args.users <= 0:
        print("repro serve: --users must be positive", file=sys.stderr)
        return 2
    try:
        edge_topology = _edge_topology(args)
    except ValueError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2

    log = default_log()
    config = ReplayConfig(
        users_per_class=args.users,
        seed=args.seed,
        daily_updates=args.daily_updates,
    )
    recorder = ManifestRecorder(
        "serve",
        config={
            "users": args.users,
            "mode": args.mode,
            "daily_updates": args.daily_updates,
            **_edge_config(args),
        },
        seed=args.seed,
    )
    with recorder:
        results, reports = serve_replay(
            log, config, modes=(args.mode,), edge_topology=edge_topology
        )
        report = reports[args.mode]
        result = results[args.mode]
        recorder.add_metric("overall_hit_rate", result.overall_hit_rate())

    print(f"=== serve: mode={args.mode} users/class={args.users} ===")
    print(format_table(_report_rows(report), ["metric", "value"]))
    print(f"overall hit rate: {result.overall_hit_rate():.3f}")

    exit_code = 0
    if args.check_equivalence:
        from repro.sim.replay import run_replay

        offline = run_replay(log, config, modes=(args.mode,))[args.mode]
        mismatches = _compare(offline, result)
        if report.shed:
            mismatches.append(f"serve shed {report.shed} requests")
        if mismatches:
            print("EQUIVALENCE FAILED:", file=sys.stderr)
            for line in mismatches:
                print("  " + line, file=sys.stderr)
            exit_code = 1
        else:
            print(
                f"equivalence check: serve matches offline replay for "
                f"{len(result.users)} users (tolerance {EQUIVALENCE_TOLERANCE})"
            )
        recorder.add_metric("equivalence_ok", not mismatches)
    _write_manifest(recorder, report, args.manifest_out)
    return exit_code


def _compare(offline, served) -> List[str]:
    """Per-user accounting diffs between offline and served replays."""
    mismatches: List[str] = []
    if len(offline.users) != len(served.users):
        return [
            f"user count {len(offline.users)} != {len(served.users)}"
        ]
    for a, b in zip(offline.users, served.users):
        if a.user_id != b.user_id:
            mismatches.append(f"user order diverged: {a.user_id} vs {b.user_id}")
            continue
        if a.metrics.count != b.metrics.count:
            mismatches.append(
                f"user {a.user_id}: count {a.metrics.count} != {b.metrics.count}"
            )
        if a.metrics.hits != b.metrics.hits:
            mismatches.append(
                f"user {a.user_id}: hits {a.metrics.hits} != {b.metrics.hits}"
            )
        for attr in ("total_latency_s", "total_energy_j"):
            diff = abs(getattr(a.metrics, attr) - getattr(b.metrics, attr))
            if diff > EQUIVALENCE_TOLERANCE:
                mismatches.append(
                    f"user {a.user_id}: {attr} differs by {diff:.3e}"
                )
    return mismatches


# -- repro loadtest ---------------------------------------------------------


def loadtest_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro loadtest",
        description="Open-loop load test of the serving layer on the "
        "simulated clock.",
    )
    parser.add_argument(
        "--duration", type=float, default=600.0,
        help="simulated seconds of traffic (default 600)",
    )
    parser.add_argument(
        "--rate", type=float, default=1.0,
        help="offered load as a multiple of the log's natural rate",
    )
    parser.add_argument(
        "--arrivals", choices=("poisson", "log"), default="poisson",
    )
    parser.add_argument(
        "--no-diurnal", action="store_true",
        help="flat Poisson rate instead of the hour-of-day profile",
    )
    parser.add_argument(
        "--max-devices", type=int, default=None,
        help="cap distinct devices (highest-volume first)",
    )
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument("--max-inflight", type=int, default=4096)
    parser.add_argument(
        "--refresh-interval", type=float, default=None, metavar="S",
        help="run the background cache refresher at this simulated period",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--burst", metavar="START:DUR:MULT", default=None,
        help="inject an overload burst: at START simulated seconds, "
        "multiply the offered rate by MULT for DUR seconds "
        "(poisson arrivals only)",
    )
    parser.add_argument(
        "--max-shed-rate", type=float, default=None, metavar="F",
        help="exit nonzero if the shed fraction exceeds F (CI gate)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="run under the span tracer and write trace JSONL here",
    )
    parser.add_argument(
        "--trace-sample-rate", type=float, default=1.0, metavar="F",
        help="keep this fraction of trace records (deterministic "
        "systematic sampling; sampled-out spans still count in the "
        "meta record's spans_dropped)",
    )
    parser.add_argument(
        "--trace-capacity", type=int, default=obs_trace.DEFAULT_CAPACITY,
        help="tracer ring-buffer size (default %(default)s)",
    )
    parser.add_argument(
        "--slo-policy", metavar="PATH", default=None,
        help="monitor the run against this SLO policy JSON",
    )
    parser.add_argument(
        "--battery-capacity-j", type=float, default=None, metavar="J",
        help="per-device battery size for drain tracking (default: the "
        "Xperia X1a battery, ~19980 J)",
    )
    parser.add_argument(
        "--fail-on-alert", action="store_true",
        help="exit nonzero if the SLO verdict is fail (CI gate)",
    )
    parser.add_argument(
        "--snapshot-out", metavar="PATH", default=None,
        help="write the final telemetry snapshot JSON (repro top --snapshot)",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="after the run, serve /metrics and /metrics.json on this "
        "port (0 picks a free one)",
    )
    parser.add_argument(
        "--metrics-serve-s", type=float, default=5.0, metavar="S",
        help="how long to keep the metrics endpoint up (default 5)",
    )
    parser.add_argument("--manifest-out", metavar="PATH", default=None)
    _add_edge_args(parser)
    _add_flight_args(parser)
    args = parser.parse_args(argv)

    try:
        edge_topology = _edge_topology(args)
        burst_start, burst_duration, burst_multiplier = _parse_burst(
            args.burst
        )
    except ValueError as exc:
        print(f"repro loadtest: {exc}", file=sys.stderr)
        return 2
    if not 0.0 < args.trace_sample_rate <= 1.0:
        print(
            "repro loadtest: --trace-sample-rate must be in (0, 1], "
            f"got {args.trace_sample_rate}",
            file=sys.stderr,
        )
        return 2
    if args.trace_capacity <= 0:
        print(
            "repro loadtest: --trace-capacity must be positive",
            file=sys.stderr,
        )
        return 2
    slo_policy = None
    if args.slo_policy is not None:
        try:
            slo_policy = SLOPolicy.from_json(args.slo_policy)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro loadtest: bad --slo-policy: {exc}", file=sys.stderr)
            return 2
    if args.battery_capacity_j is not None and args.battery_capacity_j <= 0:
        print(
            "repro loadtest: --battery-capacity-j must be positive",
            file=sys.stderr,
        )
        return 2
    telemetry_kwargs = {}
    if args.battery_capacity_j is not None:
        telemetry_kwargs["battery_capacity_j"] = args.battery_capacity_j
    telemetry = ServeTelemetry(slo_policy=slo_policy, **telemetry_kwargs)
    registry = MetricsRegistry()

    run_config = {
        "duration_s": args.duration,
        "rate_multiplier": args.rate,
        "arrivals": args.arrivals,
        "diurnal": not args.no_diurnal,
        "burst": args.burst,
        "max_devices": args.max_devices,
        "queue_depth": args.queue_depth,
        "max_inflight": args.max_inflight,
        "refresh_interval_s": args.refresh_interval,
        "slo_policy": args.slo_policy,
        "battery_capacity_j": args.battery_capacity_j,
        **_edge_config(args),
    }
    try:
        flight = _build_flight(args, run_config)
    except ValueError as exc:
        print(f"repro loadtest: {exc}", file=sys.stderr)
        return 2
    if flight is not None:
        flight.attach(telemetry)
    tracer = None
    if args.trace_out is not None:
        tracer = obs_trace.enable(
            capacity=args.trace_capacity,
            sample_rate=args.trace_sample_rate,
        )

    recorder = ManifestRecorder("loadtest", config=run_config, seed=args.seed)
    try:
        with recorder:
            report, workload = run_loadtest(
                default_log(),
                LoadGenConfig(
                    duration_s=args.duration,
                    rate_multiplier=args.rate,
                    seed=args.seed,
                    arrivals=args.arrivals,
                    diurnal=not args.no_diurnal,
                    max_devices=args.max_devices,
                    n_regions=(
                        edge_topology.n_regions or edge_topology.n_nodes
                        if edge_topology is not None
                        else None
                    ),
                    placement_skew=args.placement_skew,
                    burst_start_s=burst_start,
                    burst_duration_s=burst_duration,
                    burst_multiplier=burst_multiplier,
                ),
                ServeConfig(
                    queue_depth=args.queue_depth,
                    max_inflight=args.max_inflight,
                ),
                refresh_interval_s=args.refresh_interval,
                telemetry=telemetry,
                registry=registry,
                edge_topology=edge_topology,
            )
            recorder.add_metric("offered_rate_rps", workload.offered_rate)
            recorder.add_metric("n_devices", workload.n_devices)
            if report.slo is not None:
                recorder.add_metric("slo", report.slo)
            if flight is not None:
                flight.finalize(force=args.flight_dump)
                recorder.add_metric(
                    "flight_bundles", len(flight.triggers.dumped)
                )
    except (ValueError, RuntimeError) as exc:
        print(f"repro loadtest: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            obs_trace.disable()

    if flight is not None:
        for path in flight.triggers.dumped:
            print(f"wrote flight bundle to {path}")
    if tracer is not None:
        written = tracer.export_jsonl(args.trace_out)
        print(
            f"wrote {written} trace records to {args.trace_out} "
            f"(sampled out {tracer.sampled_out}, evicted {tracer.dropped})"
        )

    print(
        f"=== loadtest: {workload.n_requests} requests over "
        f"{args.duration:.0f}s simulated ({workload.n_devices} devices, "
        f"{workload.offered_rate:.3f} req/s offered) ==="
    )
    print(format_table(_report_rows(report), ["metric", "value"]))
    _print_slo(report)

    if args.snapshot_out:
        with open(args.snapshot_out, "w") as fh:
            json.dump({"serve": telemetry.snapshot()}, fh, indent=2)
        print(f"wrote telemetry snapshot to {args.snapshot_out}")
    if args.metrics_port is not None:
        asyncio.run(
            _serve_endpoint(
                registry, telemetry, args.metrics_port, args.metrics_serve_s
            )
        )

    exit_code = 0
    if args.fail_on_alert and report.slo is not None and not report.slo["passed"]:
        print(
            "repro loadtest: SLO verdict fail (--fail-on-alert)",
            file=sys.stderr,
        )
        exit_code = 1
    if report.energy_conserved is False:
        # Attribution drifting from the simulated radio timeline is an
        # accounting bug, never load-dependent noise — always a failure.
        print(
            f"repro loadtest: energy attribution not conserved "
            f"(attributed {report.attributed_radio_j:.6f} J vs timeline "
            f"{report.timeline_radio_j:.6f} J, "
            f"error {report.conservation_error_j:.3e} J)",
            file=sys.stderr,
        )
        exit_code = 1
    lost = report.requests - report.completed - report.shed
    if lost:
        print(
            f"repro loadtest: {lost} requests neither completed nor shed",
            file=sys.stderr,
        )
        exit_code = 1
    if args.max_shed_rate is not None and report.shed_rate > args.max_shed_rate:
        print(
            f"repro loadtest: shed rate {report.shed_rate:.3f} exceeds "
            f"--max-shed-rate {args.max_shed_rate}",
            file=sys.stderr,
        )
        exit_code = 1
    _write_manifest(recorder, report, args.manifest_out)
    return exit_code
