"""Deterministic simulated-time asyncio event loop.

The serving layer runs in two clocks:

* **real time** — a stock asyncio loop; ``await asyncio.sleep(dt)``
  takes ``dt`` wall seconds (demos, live smoke tests);
* **simulated time** — :class:`VirtualTimeLoop`; the loop's clock jumps
  instantly to the next scheduled callback, so a month of simulated
  traffic runs in however long the Python work itself takes, and two
  runs of the same workload interleave identically.

The virtual loop is a :class:`asyncio.SelectorEventLoop` whose selector
never blocks: whenever the loop would have slept ``timeout`` seconds
waiting for timers, the virtual clock advances by ``timeout`` instead.
Everything else — task scheduling, callback ordering, cancellation — is
the standard asyncio machinery, so server code cannot tell which clock
it is running under.

Determinism: with no real I/O in flight, the loop is single-threaded
and processes ready callbacks in FIFO order and timers in (deadline,
schedule-order) order, so a fixed workload yields a fixed interleaving.
"""

from __future__ import annotations

import asyncio
import selectors
from typing import Any, Coroutine, TypeVar

T = TypeVar("T")

__all__ = ["VirtualTimeLoop", "run_simulated"]


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """An event loop whose clock is simulated seconds, not wall time.

    ``loop.time()`` starts at 0.0 and advances only when the loop would
    otherwise block waiting for its earliest timer.  A coroutine that
    does ``await asyncio.sleep(3600)`` on this loop resumes immediately
    (in wall terms) with the loop clock 3600 s later.
    """

    def __init__(self) -> None:
        super().__init__(selectors.SelectSelector())
        self._virtual_now = 0.0
        self._wall_select = self._selector.select
        self._selector.select = self._virtual_select  # type: ignore[method-assign]

    def time(self) -> float:
        return self._virtual_now

    def _virtual_select(self, timeout=None):
        if timeout is None:
            # No ready callbacks and no scheduled timers: a wall-clock
            # loop would block on I/O forever.  In a pure simulation that
            # means some task awaits a future nobody will ever resolve —
            # fail fast instead of spinning.
            raise RuntimeError(
                "virtual-time loop stalled: tasks are waiting but no timer "
                "or callback is scheduled (deadlocked await?)"
            )
        if timeout > 0:
            self._virtual_now += timeout
        # Poll the real selector without blocking so self-pipe events
        # (e.g. call_soon_threadsafe) still drain.
        return self._wall_select(0)


def run_simulated(coro: Coroutine[Any, Any, T]) -> T:
    """Run ``coro`` to completion on a fresh :class:`VirtualTimeLoop`.

    The loop is closed afterwards; the coroutine's result (or exception)
    propagates to the caller.
    """
    loop = VirtualTimeLoop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()
