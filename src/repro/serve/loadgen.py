"""Open-loop load generation for the serving layer.

The generator builds a *workload* — a precomputed, sorted schedule of
``(arrival_offset_s, ServeRequest)`` — from a :class:`repro.logs`
search log.  Open-loop means the schedule never waits for the server:
arrival times are fixed up front, so an overloaded server faces a
growing backlog exactly as a real population of phones would, instead
of the closed-loop illusion where slow responses throttle the offered
load (the coordinated-omission trap).

Two arrival processes:

* ``"poisson"`` — a nonhomogeneous Poisson process whose base rate is
  the log's own aggregate query rate times ``rate_multiplier``,
  modulated by the generator's diurnal profile (thinning); devices are
  drawn volume-weighted, and each device replays its own logged query
  sequence in order (cycling if the schedule outlasts it);
* ``"log"`` — the log's literal arrivals, time-compressed by
  ``rate_multiplier`` (an x10 multiplier squeezes the trace into a
  tenth of its span).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.edge.placement import assign_device_regions
from repro.logs.generator import DIURNAL_WEIGHTS, SearchLog
from repro.logs.schema import MONTH_SECONDS
from repro.serve.requests import ServeRequest

__all__ = [
    "LoadGenConfig",
    "Workload",
    "assign_device_regions",
    "build_workload",
]


@dataclass(frozen=True)
class LoadGenConfig:
    """Workload-construction knobs.

    Args:
        duration_s: schedule length in loop-clock seconds.
        rate_multiplier: offered load relative to the log's natural
            aggregate rate (10.0 = 10x overload).
        seed: RNG seed for arrivals and device assignment.
        arrivals: ``"poisson"`` (synthetic process) or ``"log"``
            (time-compressed trace).
        diurnal: modulate the Poisson rate by the hour-of-day profile.
        t_origin_s: phase of the diurnal profile at schedule time 0
            (e.g. ``9 * 3600.0`` starts the run at 9am).
        max_devices: cap on distinct devices (highest-volume first);
            None uses every device active in the source month.
        n_regions: when given, every scheduled device also gets a
            deterministic geographic/affinity region via
            :func:`repro.edge.placement.assign_device_regions`
            (recorded in ``Workload.device_regions``).
        placement_skew: Zipf-like skew of the region assignment
            (0.0 uniform; only meaningful with ``n_regions``).
        burst_start_s: start of an injected overload burst (None — the
            default — injects nothing and leaves the schedule bit-
            identical to earlier releases).  Poisson arrivals only.
        burst_duration_s: how long the burst lasts.
        burst_multiplier: rate multiplier inside the burst window
            (relative to the already-scaled offered rate) — the knob CI
            uses to manufacture incidents for the flight recorder.
    """

    duration_s: float = 600.0
    rate_multiplier: float = 1.0
    seed: int = 7
    arrivals: str = "poisson"
    diurnal: bool = True
    t_origin_s: float = 0.0
    max_devices: Optional[int] = None
    n_regions: Optional[int] = None
    placement_skew: float = 0.0
    burst_start_s: Optional[float] = None
    burst_duration_s: float = 0.0
    burst_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.rate_multiplier <= 0:
            raise ValueError("rate_multiplier must be positive")
        if self.arrivals not in ("poisson", "log"):
            raise ValueError(
                f"arrivals must be 'poisson' or 'log', got {self.arrivals!r}"
            )
        if self.max_devices is not None and self.max_devices <= 0:
            raise ValueError("max_devices must be positive when given")
        if self.n_regions is not None and self.n_regions <= 0:
            raise ValueError("n_regions must be positive when given")
        if self.placement_skew < 0:
            raise ValueError("placement_skew must be non-negative")
        if self.burst_start_s is not None:
            if self.arrivals == "log":
                raise ValueError(
                    "burst injection requires arrivals='poisson'"
                )
            if self.burst_start_s < 0:
                raise ValueError("burst_start_s must be non-negative")
            if self.burst_duration_s <= 0:
                raise ValueError(
                    "burst_duration_s must be positive when bursting"
                )
            if self.burst_multiplier <= 0:
                raise ValueError("burst_multiplier must be positive")


@dataclass
class Workload:
    """A fixed open-loop schedule of requests."""

    arrivals: List[Tuple[float, ServeRequest]]
    duration_s: float
    #: device -> home region (populated when ``LoadGenConfig.n_regions``
    #: is set; independent per-device draws, so stable across runs and
    #: fleet growth)
    device_regions: Dict[int, int] = field(default_factory=dict)

    @property
    def n_requests(self) -> int:
        return len(self.arrivals)

    @property
    def n_devices(self) -> int:
        return len({req.device_id for _, req in self.arrivals})

    @property
    def offered_rate(self) -> float:
        """Scheduled requests per loop-clock second."""
        return self.n_requests / self.duration_s if self.duration_s else 0.0

    def rate_timeline(
        self, bucket_width_s: float = 1.0
    ) -> List[Tuple[float, float]]:
        """Offered rate per fixed-width bucket: ``(bucket_start_s,
        requests_per_s)`` rows, oldest first.

        The schedule-side twin of the telemetry plane's per-bucket
        completion counts — diffing the two shows where the server fell
        behind the offered load.
        """
        if bucket_width_s <= 0:
            raise ValueError("bucket_width_s must be positive")
        counts: Dict[int, int] = {}
        for offset, _ in self.arrivals:
            idx = int(offset // bucket_width_s)
            counts[idx] = counts.get(idx, 0) + 1
        return [
            (idx * bucket_width_s, counts[idx] / bucket_width_s)
            for idx in sorted(counts)
        ]


class _DeviceScript:
    """One device's logged query sequence, replayed in order, cycling."""

    __slots__ = ("requests", "next_i")

    def __init__(self, requests: List[ServeRequest]) -> None:
        self.requests = requests
        self.next_i = 0

    def take(self, timestamp: float) -> ServeRequest:
        template = self.requests[self.next_i % len(self.requests)]
        self.next_i += 1
        # Re-stamp with the schedule's arrival time so serve-layer
        # accounting (windows, refresh days) sees loop-clock time.
        return ServeRequest(
            device_id=template.device_id,
            key=template.key,
            timestamp=timestamp,
            clicked_url=template.clicked_url,
            record_bytes=template.record_bytes,
            navigational=template.navigational,
        )


def _record_bytes(log: SearchLog, result_key: int) -> int:
    community = log.community
    if result_key < community.n_results:
        return community.result_records[result_key].record_bytes
    return 500


def _device_scripts(
    month_log: SearchLog, max_devices: Optional[int]
) -> Dict[int, _DeviceScript]:
    """Per-device request templates, highest-volume devices first."""
    uids, counts = np.unique(month_log.user_ids, return_counts=True)
    order = np.argsort(-counts, kind="stable")
    uids = uids[order]
    if max_devices is not None:
        uids = uids[:max_devices]
    keep = set(int(u) for u in uids)
    scripts: Dict[int, List[ServeRequest]] = {uid: [] for uid in keep}
    for i in range(month_log.n_events):
        uid = int(month_log.user_ids[i])
        if uid not in scripts:
            continue
        qkey = int(month_log.query_keys[i])
        rkey = int(month_log.result_keys[i])
        scripts[uid].append(
            ServeRequest(
                device_id=uid,
                key=month_log.query_string(qkey),
                timestamp=float(month_log.timestamps[i]),
                clicked_url=month_log.result_url(rkey),
                record_bytes=_record_bytes(month_log, rkey),
                navigational=bool(month_log.navigational[i]),
            )
        )
    return {uid: _DeviceScript(reqs) for uid, reqs in scripts.items() if reqs}


def build_workload(
    log: SearchLog, month: int, config: LoadGenConfig = LoadGenConfig()
) -> Workload:
    """Build an open-loop schedule from month ``month`` of ``log``."""
    month_log = log.month(month)
    if month_log.n_events == 0:
        raise ValueError(f"log month {month} has no events")
    if config.arrivals == "log":
        workload = _log_workload(month_log, month, config)
    else:
        workload = _poisson_workload(month_log, config)
    if config.n_regions is not None:
        device_ids = sorted({req.device_id for _, req in workload.arrivals})
        workload.device_regions = assign_device_regions(
            device_ids,
            config.n_regions,
            skew=config.placement_skew,
            seed=config.seed,
        )
    return workload


def _log_workload(
    month_log: SearchLog, month: int, config: LoadGenConfig
) -> Workload:
    """The trace's own arrivals, compressed by the rate multiplier."""
    t0 = month * MONTH_SECONDS
    limit = config.max_devices
    scripts = _device_scripts(month_log, limit)
    arrivals: List[Tuple[float, ServeRequest]] = []
    for i in range(month_log.n_events):
        uid = int(month_log.user_ids[i])
        if uid not in scripts:
            continue
        offset = (float(month_log.timestamps[i]) - t0) / config.rate_multiplier
        if offset >= config.duration_s:
            continue
        arrivals.append((offset, scripts[uid].take(offset)))
    arrivals.sort(key=lambda pair: pair[0])
    return Workload(arrivals=arrivals, duration_s=config.duration_s)


def _poisson_workload(
    month_log: SearchLog, config: LoadGenConfig
) -> Workload:
    """Nonhomogeneous Poisson arrivals over volume-weighted devices."""
    rng = np.random.default_rng(config.seed)
    scripts = _device_scripts(month_log, config.max_devices)
    device_ids = np.array(sorted(scripts), dtype=np.int64)
    weights = np.array(
        [len(scripts[int(uid)].requests) for uid in device_ids], dtype=float
    )
    weights /= weights.sum()

    # The log's natural aggregate rate, scaled by the overload knob.
    base_rate = (
        month_log.n_events / MONTH_SECONDS
    ) * config.rate_multiplier
    mean_w = float(DIURNAL_WEIGHTS.mean())
    peak_factor = float(DIURNAL_WEIGHTS.max()) / mean_w if config.diurnal else 1.0
    lam_max = base_rate * peak_factor
    burst = config.burst_start_s is not None
    if burst:
        # Raising lam_max only when a burst is configured keeps the
        # thinning stream — and therefore every burst-free schedule —
        # bit-identical to earlier releases.
        lam_max *= max(1.0, config.burst_multiplier)

    def intensity(t: float) -> float:
        if not config.diurnal:
            rate = base_rate
        else:
            hour = int(((t + config.t_origin_s) % 86400.0) // 3600.0)
            rate = base_rate * float(DIURNAL_WEIGHTS[hour]) / mean_w
        if burst and (
            config.burst_start_s
            <= t
            < config.burst_start_s + config.burst_duration_s
        ):
            rate *= config.burst_multiplier
        return rate

    arrivals: List[Tuple[float, ServeRequest]] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / lam_max))
        if t >= config.duration_s:
            break
        # Thinning: accept with probability lambda(t) / lambda_max.
        if rng.random() * lam_max > intensity(t):
            continue
        uid = int(rng.choice(device_ids, p=weights))
        arrivals.append((t, scripts[uid].take(t)))
    return Workload(arrivals=arrivals, duration_s=config.duration_s)
