"""Common memory-device abstraction for the storage substrate.

Every tier (DRAM, PCM, NAND flash) exposes reads and writes whose cost is
``fixed access latency + transferred bytes / bandwidth`` and whose energy is
``access energy + per-byte energy``.  Devices track cumulative statistics
so experiments can report time and energy spent per tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.trace import get_tracer


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a single device access."""

    latency_s: float
    energy_j: float
    bytes_moved: int


@dataclass
class MemoryDevice:
    """A latency/energy/capacity model of one memory technology.

    Attributes:
        name: human-readable device name.
        capacity_bytes: total device capacity.
        read_latency_s: fixed cost of initiating a read.
        write_latency_s: fixed cost of initiating a write.
        read_bandwidth_bps: sustained read bandwidth, bytes per second.
        write_bandwidth_bps: sustained write bandwidth, bytes per second.
        access_energy_j: fixed energy cost of one access.
        energy_per_byte_j: marginal energy cost per byte moved.
        volatile: whether contents are lost on power-down.
    """

    name: str
    capacity_bytes: int
    read_latency_s: float
    write_latency_s: float
    read_bandwidth_bps: float
    write_bandwidth_bps: float
    access_energy_j: float = 0.0
    energy_per_byte_j: float = 0.0
    volatile: bool = False

    total_reads: int = field(default=0, init=False)
    total_writes: int = field(default=0, init=False)
    total_bytes_read: int = field(default=0, init=False)
    total_bytes_written: int = field(default=0, init=False)
    total_time_s: float = field(default=0.0, init=False)
    total_energy_j: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bytes}")
        for attr in ("read_bandwidth_bps", "write_bandwidth_bps"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        for attr in ("read_latency_s", "write_latency_s"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")

    def read(self, nbytes: int) -> AccessResult:
        """Model reading ``nbytes``; returns latency/energy and logs stats."""
        result = self._access(
            nbytes, self.read_latency_s, self.read_bandwidth_bps, "read"
        )
        self.total_reads += 1
        self.total_bytes_read += nbytes
        return result

    def write(self, nbytes: int) -> AccessResult:
        """Model writing ``nbytes``; returns latency/energy and logs stats."""
        result = self._access(
            nbytes, self.write_latency_s, self.write_bandwidth_bps, "write"
        )
        self.total_writes += 1
        self.total_bytes_written += nbytes
        return result

    def _access(
        self, nbytes: int, latency: float, bandwidth: float, op: str = "access"
    ) -> AccessResult:
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        elapsed = latency + nbytes / bandwidth
        energy = self.access_energy_j + nbytes * self.energy_per_byte_j
        self.total_time_s += elapsed
        self.total_energy_j += energy
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "device_access",
                device=self.name,
                op=op,
                nbytes=nbytes,
                model_latency_s=elapsed,
                model_energy_j=energy,
            )
        return AccessResult(latency_s=elapsed, energy_j=energy, bytes_moved=nbytes)

    def reset_stats(self) -> None:
        """Zero all cumulative counters."""
        self.total_reads = 0
        self.total_writes = 0
        self.total_bytes_read = 0
        self.total_bytes_written = 0
        self.total_time_s = 0.0
        self.total_energy_j = 0.0
