"""DRAM tier model.

DRAM holds the pocket cloudlet indexes (the PocketSearch query hash table
lives here).  It is volatile: after a power cycle indexes must be reloaded
from flash, which is the motivation for the PCM tier (Section 3.3).
"""

from __future__ import annotations

from repro.storage.device import MemoryDevice

MB = 1024**2


class Dram(MemoryDevice):
    """DRAM with ~50ns access latency and multi-GB/s bandwidth."""

    def __init__(self, capacity_bytes: int = 512 * MB) -> None:
        super().__init__(
            name="dram",
            capacity_bytes=capacity_bytes,
            read_latency_s=50e-9,
            write_latency_s=50e-9,
            read_bandwidth_bps=3.2e9,
            write_bandwidth_bps=3.2e9,
            access_energy_j=2e-9,
            energy_per_byte_j=50e-12,
            volatile=True,
        )
