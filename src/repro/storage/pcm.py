"""PCM (phase-change memory) intermediate tier model.

Section 3.3 suggests PCM as a middle tier between DRAM and NAND: slower
than DRAM, much faster than NAND, and non-volatile — so data indexes stored
in PCM survive power cycles and are instantly available at boot.
"""

from __future__ import annotations

from repro.storage.device import MemoryDevice

GB = 1024**3


class Pcm(MemoryDevice):
    """PCM: sub-microsecond reads, slower asymmetric writes, non-volatile."""

    def __init__(self, capacity_bytes: int = 4 * GB) -> None:
        super().__init__(
            name="pcm",
            capacity_bytes=capacity_bytes,
            read_latency_s=300e-9,
            write_latency_s=1e-6,
            read_bandwidth_bps=800e6,
            write_bandwidth_bps=200e6,
            access_energy_j=10e-9,
            energy_per_byte_j=200e-12,
            volatile=False,
        )
