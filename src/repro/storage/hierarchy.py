"""Three-tier memory hierarchy (Figure 3, Section 3.3).

The paper's architecture stores bulk cloud-service data in NAND flash and
data indexes in DRAM, and anticipates a PCM middle tier that keeps indexes
non-volatile and instantly available at boot.  :class:`MemoryHierarchy`
composes the device models, tracks per-tier allocations, and models the
boot-time index-load cost that motivates the PCM tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from repro.storage.device import AccessResult, MemoryDevice
from repro.storage.dram import Dram
from repro.storage.flash import NandFlash
from repro.storage.pcm import Pcm


class TierName(Enum):
    DRAM = "dram"
    PCM = "pcm"
    FLASH = "flash"


@dataclass
class Tier:
    """One level of the hierarchy: a device plus allocation bookkeeping."""

    name: TierName
    device: MemoryDevice
    allocated_bytes: int = 0

    @property
    def free_bytes(self) -> int:
        return self.device.capacity_bytes - self.allocated_bytes

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes > self.free_bytes:
            raise MemoryError(
                f"tier {self.name.value}: cannot allocate {nbytes} bytes, "
                f"{self.free_bytes} free"
            )
        self.allocated_bytes += nbytes

    def release(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.allocated_bytes:
            raise ValueError(
                f"tier {self.name.value}: cannot release {nbytes} bytes, "
                f"{self.allocated_bytes} allocated"
            )
        self.allocated_bytes -= nbytes


class MemoryHierarchy:
    """DRAM (+ optional PCM) + NAND flash hierarchy.

    Args:
        dram: volatile index tier.
        flash: bulk data tier.
        pcm: optional intermediate non-volatile index tier.
    """

    def __init__(
        self,
        dram: Optional[Dram] = None,
        flash: Optional[NandFlash] = None,
        pcm: Optional[Pcm] = None,
    ) -> None:
        self.tiers: Dict[TierName, Tier] = {}
        self.tiers[TierName.DRAM] = Tier(TierName.DRAM, dram or Dram())
        self.tiers[TierName.FLASH] = Tier(TierName.FLASH, flash or NandFlash())
        if pcm is not None:
            self.tiers[TierName.PCM] = Tier(TierName.PCM, pcm)

    @property
    def has_pcm(self) -> bool:
        return TierName.PCM in self.tiers

    def tier(self, name: TierName) -> Tier:
        try:
            return self.tiers[name]
        except KeyError:
            raise KeyError(f"hierarchy has no {name.value} tier") from None

    @property
    def index_tier(self) -> Tier:
        """Where cloudlet indexes live: PCM when present, else DRAM."""
        return self.tiers.get(TierName.PCM, self.tiers[TierName.DRAM])

    @property
    def data_tier(self) -> Tier:
        return self.tiers[TierName.FLASH]

    def boot_index_load(self, index_bytes: int) -> AccessResult:
        """Model making an index of ``index_bytes`` available after boot.

        Without PCM the index must be streamed from flash into DRAM (the
        cost the paper calls "extremely time consuming" for GB-scale
        indexes).  With PCM the index is already resident, so only the
        first PCM access is paid.
        """
        if index_bytes < 0:
            raise ValueError(f"index_bytes must be non-negative, got {index_bytes}")
        if self.has_pcm:
            return self.tiers[TierName.PCM].device.read(0)
        flash_cost = self.tiers[TierName.FLASH].device.read(index_bytes)
        dram_cost = self.tiers[TierName.DRAM].device.write(index_bytes)
        return AccessResult(
            latency_s=flash_cost.latency_s + dram_cost.latency_s,
            energy_j=flash_cost.energy_j + dram_cost.energy_j,
            bytes_moved=index_bytes,
        )
