"""NAND flash device model.

Flash is the bulk store of every pocket cloudlet.  The properties the
paper's experiments depend on:

* **Block-granular allocation** (Section 5.2.2): flash is organized in
  fixed-size units (2/4/8 KB depending on chip); a 500-byte file still
  occupies a whole unit, so storing one search result per file wastes
  4-16x its size.  This drives the 32-file database design (Figure 12).
* **Asymmetric latencies**: page reads are tens of microseconds, programs
  hundreds, block erases milliseconds.
* **Energy**: far below the radio's, which is why serving from flash wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.trace import get_tracer
from repro.storage.device import AccessResult, MemoryDevice

KB = 1024
MB = 1024**2
GB = 1024**3


@dataclass(frozen=True)
class FlashGeometry:
    """Physical organization of a NAND flash part.

    Attributes:
        page_bytes: program/read granularity and the filesystem allocation
            unit (the paper's 2-8 KB "block" in Section 5.2.2).
        pages_per_block: pages per erase block.
        total_blocks: number of erase blocks on the device.
    """

    page_bytes: int = 4 * KB
    pages_per_block: int = 64
    total_blocks: int = 4096

    def __post_init__(self) -> None:
        for attr in ("page_bytes", "pages_per_block", "total_blocks"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    @property
    def block_bytes(self) -> int:
        return self.page_bytes * self.pages_per_block

    @property
    def total_pages(self) -> int:
        return self.pages_per_block * self.total_blocks

    @property
    def capacity_bytes(self) -> int:
        return self.block_bytes * self.total_blocks

    def pages_for(self, nbytes: int) -> int:
        """Pages needed to hold ``nbytes`` (ceiling division)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0
        return -(-nbytes // self.page_bytes)


@dataclass
class FlashStats:
    """Cumulative flash operation counters."""

    page_reads: int = 0
    page_programs: int = 0
    block_erases: int = 0


class NandFlash(MemoryDevice):
    """NAND flash with page-granular reads/programs and block erases.

    The :class:`MemoryDevice` byte-level interface is kept (it models the
    bus transfer), while :meth:`read_pages` / :meth:`program_pages` /
    :meth:`erase_blocks` add the page/block command costs a real part
    incurs.
    """

    def __init__(
        self,
        geometry: FlashGeometry = FlashGeometry(),
        read_page_s: float = 25e-6,
        program_page_s: float = 200e-6,
        erase_block_s: float = 1.5e-3,
        read_page_energy_j: float = 2e-6,
        program_page_energy_j: float = 15e-6,
        erase_block_energy_j: float = 50e-6,
    ) -> None:
        super().__init__(
            name="nand-flash",
            capacity_bytes=geometry.capacity_bytes,
            read_latency_s=read_page_s,
            write_latency_s=program_page_s,
            read_bandwidth_bps=40e6,
            write_bandwidth_bps=10e6,
            access_energy_j=read_page_energy_j,
            energy_per_byte_j=5e-12,
            volatile=False,
        )
        self.geometry = geometry
        self.read_page_s = read_page_s
        self.program_page_s = program_page_s
        self.erase_block_s = erase_block_s
        self.read_page_energy_j = read_page_energy_j
        self.program_page_energy_j = program_page_energy_j
        self.erase_block_energy_j = erase_block_energy_j
        self.stats = FlashStats()

    def read_pages(self, npages: int) -> AccessResult:
        """Read ``npages`` whole pages (command + transfer cost)."""
        self._check_pages(npages)
        nbytes = npages * self.geometry.page_bytes
        latency = npages * self.read_page_s + nbytes / self.read_bandwidth_bps
        energy = npages * self.read_page_energy_j + nbytes * self.energy_per_byte_j
        self.stats.page_reads += npages
        return self._log(latency, energy, nbytes, reads=1, bytes_read=nbytes)

    def program_pages(self, npages: int) -> AccessResult:
        """Program ``npages`` whole pages (command + transfer cost)."""
        self._check_pages(npages)
        nbytes = npages * self.geometry.page_bytes
        latency = npages * self.program_page_s + nbytes / self.write_bandwidth_bps
        energy = npages * self.program_page_energy_j + nbytes * self.energy_per_byte_j
        self.stats.page_programs += npages
        return self._log(latency, energy, nbytes, writes=1, bytes_written=nbytes)

    def erase_blocks(self, nblocks: int) -> AccessResult:
        """Erase ``nblocks`` erase blocks."""
        self._check_pages(nblocks)
        latency = nblocks * self.erase_block_s
        energy = nblocks * self.erase_block_energy_j
        self.stats.block_erases += nblocks
        return self._log(latency, energy, 0)

    def _check_pages(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")

    def _log(
        self,
        latency: float,
        energy: float,
        nbytes: int,
        reads: int = 0,
        writes: int = 0,
        bytes_read: int = 0,
        bytes_written: int = 0,
    ) -> AccessResult:
        self.total_time_s += latency
        self.total_energy_j += energy
        self.total_reads += reads
        self.total_writes += writes
        self.total_bytes_read += bytes_read
        self.total_bytes_written += bytes_written
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "device_access",
                device=self.name,
                op="read" if reads else ("write" if writes else "erase"),
                nbytes=nbytes,
                model_latency_s=latency,
                model_energy_j=energy,
            )
        return AccessResult(latency_s=latency, energy_j=energy, bytes_moved=nbytes)
