"""A flat file layer over the NAND flash model.

PocketSearch stores its search-result database as plain files on flash
(Section 5.2.2).  This filesystem models what matters there:

* **page-rounded allocation** — a file's flash footprint is its size
  rounded up to whole pages, so many tiny files fragment the device;
* **open overhead** — locating a file's metadata costs a fixed latency;
* **positioned reads** — reading a byte range touches only the pages that
  cover it;
* **appends** — adding a search result to a database file programs the
  tail page(s).

Contents are modelled as byte *sizes*, not actual bytes: the experiments
care about time, energy and space, and the PocketSearch database keeps its
own logical content in memory structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.storage.device import AccessResult
from repro.storage.flash import NandFlash


class FilesystemError(Exception):
    """Raised on invalid filesystem operations (missing file, full device)."""


@dataclass(frozen=True)
class FlashFile:
    """Read-only snapshot of one file's metadata."""

    name: str
    size_bytes: int
    pages_allocated: int
    allocated_bytes: int


@dataclass
class _FileEntry:
    name: str
    size_bytes: int
    pages_allocated: int


class FlashFilesystem:
    """Flat namespace of files with page-granular allocation on flash.

    Args:
        flash: the underlying :class:`NandFlash` device.
        open_overhead_s: fixed latency to locate a file (directory lookup).
        open_energy_j: energy for the lookup.
    """

    def __init__(
        self,
        flash: NandFlash,
        open_overhead_s: float = 2.5e-3,
        open_energy_j: float = 0.5e-3,
    ) -> None:
        self.flash = flash
        self.open_overhead_s = open_overhead_s
        self.open_energy_j = open_energy_j
        self._files: Dict[str, _FileEntry] = {}
        self._pages_used = 0

    # -- namespace ---------------------------------------------------------

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> List[str]:
        return sorted(self._files)

    def file_size(self, name: str) -> int:
        return self._entry(name).size_bytes

    def file_allocated_bytes(self, name: str) -> int:
        """Physical footprint: pages allocated x page size."""
        return self._entry(name).pages_allocated * self.flash.geometry.page_bytes

    def stat(self, name: str) -> FlashFile:
        """Return a read-only snapshot of a file's metadata."""
        entry = self._entry(name)
        return FlashFile(
            name=entry.name,
            size_bytes=entry.size_bytes,
            pages_allocated=entry.pages_allocated,
            allocated_bytes=entry.pages_allocated * self.flash.geometry.page_bytes,
        )

    # -- capacity accounting ------------------------------------------------

    @property
    def pages_used(self) -> int:
        return self._pages_used

    @property
    def bytes_used(self) -> int:
        """Physical bytes consumed (page-rounded)."""
        return self._pages_used * self.flash.geometry.page_bytes

    @property
    def logical_bytes(self) -> int:
        """Sum of file sizes (what the data actually needs)."""
        return sum(f.size_bytes for f in self._files.values())

    @property
    def fragmentation_bytes(self) -> int:
        """Wasted space: physical footprint minus logical content."""
        return self.bytes_used - self.logical_bytes

    @property
    def free_bytes(self) -> int:
        return self.flash.capacity_bytes - self.bytes_used

    # -- operations ----------------------------------------------------------

    def create(self, name: str, size_bytes: int = 0) -> AccessResult:
        """Create a file, optionally with initial content of ``size_bytes``.

        Returns the modelled cost of programming the initial pages.

        Raises:
            FilesystemError: if the file exists or the device is full.
        """
        if name in self._files:
            raise FilesystemError(f"file exists: {name!r}")
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
        pages = self.flash.geometry.pages_for(size_bytes)
        self._reserve(pages)
        self._files[name] = _FileEntry(name, size_bytes, pages)
        cost = self.flash.program_pages(pages)
        return self._with_open_cost(cost)

    def append(self, name: str, nbytes: int) -> AccessResult:
        """Append ``nbytes`` to a file, programming tail pages as needed.

        The partially filled tail page must be re-programmed (modelled as
        programming it again), plus any new pages the growth requires.
        """
        entry = self._entry(name)
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        geometry = self.flash.geometry
        new_size = entry.size_bytes + nbytes
        new_pages = geometry.pages_for(new_size)
        extra_pages = new_pages - entry.pages_allocated
        if extra_pages > 0:
            self._reserve(extra_pages)
        tail_partial = 1 if entry.size_bytes % geometry.page_bytes else 0
        pages_to_program = max(extra_pages, 0) + tail_partial
        entry.size_bytes = new_size
        entry.pages_allocated = new_pages
        cost = self.flash.program_pages(pages_to_program)
        return self._with_open_cost(cost)

    def read(
        self, name: str, offset: int = 0, length: Optional[int] = None
    ) -> AccessResult:
        """Read ``length`` bytes at ``offset``; costs open + covering pages.

        ``length=None`` reads to end of file.

        Raises:
            FilesystemError: if the file is missing or range out of bounds.
        """
        entry = self._entry(name)
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        if length is None:
            length = entry.size_bytes - offset
        if length < 0 or offset + length > entry.size_bytes:
            raise FilesystemError(
                f"read [{offset}, {offset + length}) out of bounds for "
                f"{name!r} of size {entry.size_bytes}"
            )
        geometry = self.flash.geometry
        if length == 0:
            pages = 0
        else:
            first_page = offset // geometry.page_bytes
            last_page = (offset + length - 1) // geometry.page_bytes
            pages = last_page - first_page + 1
        cost = self.flash.read_pages(pages)
        return self._with_open_cost(cost)

    def delete(self, name: str) -> None:
        """Delete a file and release its pages."""
        entry = self._entry(name)
        self._pages_used -= entry.pages_allocated
        del self._files[name]

    def truncate(self, name: str, size_bytes: int = 0) -> None:
        """Shrink a file to ``size_bytes`` (no-op growth is rejected)."""
        entry = self._entry(name)
        if size_bytes < 0 or size_bytes > entry.size_bytes:
            raise FilesystemError(
                f"truncate size {size_bytes} invalid for file of "
                f"size {entry.size_bytes}"
            )
        new_pages = self.flash.geometry.pages_for(size_bytes)
        self._pages_used -= entry.pages_allocated - new_pages
        entry.size_bytes = size_bytes
        entry.pages_allocated = new_pages

    # -- helpers ---------------------------------------------------------------

    def _entry(self, name: str) -> _FileEntry:
        try:
            return self._files[name]
        except KeyError:
            raise FilesystemError(f"no such file: {name!r}") from None

    def _reserve(self, pages: int) -> None:
        if self._pages_used + pages > self.flash.geometry.total_pages:
            raise FilesystemError(
                f"device full: need {pages} pages, "
                f"{self.flash.geometry.total_pages - self._pages_used} free"
            )
        self._pages_used += pages

    def _with_open_cost(self, cost: AccessResult) -> AccessResult:
        return AccessResult(
            latency_s=cost.latency_s + self.open_overhead_s,
            energy_j=cost.energy_j + self.open_energy_j,
            bytes_moved=cost.bytes_moved,
        )
