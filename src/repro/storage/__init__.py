"""Memory-hierarchy substrate (Section 3.3 of the paper).

Pocket cloudlets store bulk service data in NAND flash, keep indexes in
DRAM, and (as technologies mature) may interpose a PCM tier between the
two.  This subpackage models those devices at the granularity the paper's
experiments need: access latency, energy, capacity, block-granular flash
allocation, and fragmentation accounting.
"""

from repro.storage.flash import FlashGeometry, FlashStats, NandFlash
from repro.storage.dram import Dram
from repro.storage.pcm import Pcm
from repro.storage.device import MemoryDevice, AccessResult
from repro.storage.filesystem import FlashFile, FlashFilesystem, FilesystemError
from repro.storage.hierarchy import MemoryHierarchy, Tier, TierName

__all__ = [
    "AccessResult",
    "Dram",
    "FilesystemError",
    "FlashFile",
    "FlashFilesystem",
    "FlashGeometry",
    "FlashStats",
    "MemoryDevice",
    "MemoryHierarchy",
    "NandFlash",
    "Pcm",
    "Tier",
    "TierName",
]
