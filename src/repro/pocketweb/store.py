"""The on-flash page store with versioning and LRU eviction."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.storage.device import AccessResult
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash


@dataclass
class StoredPage:
    """One cached page: content version plus flash location."""

    url: str
    page_bytes: int
    version: int
    file_name: str


class PageStore:
    """URL -> page content cache on flash, LRU-evicted under a budget.

    Unlike the PocketSearch result database (thousands of ~500 B records
    packed into 32 files), pages are hundreds of kilobytes, so each page
    gets its own file: page-granular eviction matters more than
    fragmentation here.

    Args:
        filesystem: flash filesystem hosting the pages (a private one is
            created when omitted).
        budget_bytes: maximum page bytes cached.
    """

    def __init__(
        self,
        budget_bytes: int,
        filesystem: Optional[FlashFilesystem] = None,
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.filesystem = filesystem or FlashFilesystem(NandFlash())
        self._pages: "OrderedDict[str, StoredPage]" = OrderedDict()
        self._bytes_stored = 0
        self.evictions = 0

    # -- inspection ---------------------------------------------------------

    @property
    def bytes_stored(self) -> int:
        return self._bytes_stored

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    def __contains__(self, url: str) -> bool:
        return url in self._pages

    def cached_version(self, url: str) -> Optional[int]:
        page = self._pages.get(url)
        return page.version if page else None

    def cached_urls(self):
        return list(self._pages)

    # -- mutation ---------------------------------------------------------------

    def put(self, url: str, page_bytes: int, version: int) -> AccessResult:
        """Cache (or refresh) a page, evicting LRU pages to make room.

        Returns the modelled flash write cost.

        Raises:
            ValueError: if the page alone exceeds the whole budget.
        """
        if page_bytes <= 0:
            raise ValueError(f"page_bytes must be positive, got {page_bytes}")
        if page_bytes > self.budget_bytes:
            raise ValueError(
                f"page of {page_bytes} bytes exceeds budget {self.budget_bytes}"
            )
        existing = self._pages.get(url)
        if existing is not None:
            self._drop(url)
        while self._bytes_stored + page_bytes > self.budget_bytes:
            lru_url = next(iter(self._pages))
            self._drop(lru_url)
            self.evictions += 1
        file_name = f"pw:{url}"
        cost = self.filesystem.create(file_name, page_bytes)
        self._pages[url] = StoredPage(
            url=url, page_bytes=page_bytes, version=version, file_name=file_name
        )
        self._bytes_stored += page_bytes
        return cost

    def read(self, url: str) -> AccessResult:
        """Read a cached page (refreshing LRU recency).

        Raises:
            KeyError: if the page is not cached.
        """
        page = self._pages.get(url)
        if page is None:
            raise KeyError(f"page not cached: {url!r}")
        self._pages.move_to_end(url)
        return self.filesystem.read(page.file_name)

    def touch(self, url: str, version: int) -> None:
        """Record a successful revalidation (version bump, no rewrite)."""
        page = self._pages.get(url)
        if page is None:
            raise KeyError(f"page not cached: {url!r}")
        page.version = version
        self._pages.move_to_end(url)

    def _drop(self, url: str) -> None:
        page = self._pages.pop(url)
        self.filesystem.delete(page.file_name)
        self._bytes_stored -= page.page_bytes
