"""PocketWeb: the web-content pocket cloudlet the paper sketches.

The paper's introduction and Section 3.2 describe a second cloudlet next
to PocketSearch: cache the actual web pages users revisit ("web content
that might be of interest to the user could be automatically downloaded
to the user's phone overnight"), refreshing only the small hot set of
dynamic pages over the radio.  The supporting statistic from their log
analysis: 70% of web visits are revisits to fewer than a couple tens of
pages for more than half of the users — exactly the staple behaviour the
log substrate models.

This package builds that cloudlet on the generic architecture:

* :mod:`pages` — a synthetic page model (size, change rate) derived
  deterministically from URLs;
* :mod:`store` — a page store on the flash filesystem with versioning
  and LRU eviction under a byte budget;
* :mod:`cloudlet` — the PocketWeb service path: fresh hits render
  locally, stale hits revalidate with a cheap conditional GET, misses
  download the full page; overnight prefetch fills the store from the
  combined personal + community models (Section 3.1) and the
  :class:`~repro.core.management.UpdateScheduler` keeps hot pages fresh.
"""

from repro.pocketweb.pages import PageModel, PageProfile
from repro.pocketweb.store import PageStore, StoredPage
from repro.pocketweb.cloudlet import BrowseOutcome, PocketWebCloudlet

__all__ = [
    "BrowseOutcome",
    "PageModel",
    "PageProfile",
    "PageStore",
    "PocketWebCloudlet",
    "StoredPage",
]
