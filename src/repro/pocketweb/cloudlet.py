"""The PocketWeb service path, prefetch, and freshness management.

Browsing a URL at time ``t`` takes one of three paths:

* **fresh hit** — the cached copy matches the live version: read from
  flash and render; no radio (the instant experience the paper's intro
  promises);
* **stale hit** — the page changed since caching: a conditional GET over
  the radio revalidates and transfers only the delta (modelled as a
  fraction of the page), far cheaper than a cold load because the radio
  payload is small;
* **miss** — full radio download, then the page is cached
  (personalization path).

Overnight, while charging on WiFi, :meth:`PocketWebCloudlet.overnight_update`
prefetches the pages the combined personal + community models select
(Section 3.1) and refreshes every cached page — free in battery terms.
During the day the :class:`~repro.core.management.UpdateScheduler`
budgets real-time refreshes for the small hot set of dynamic staples
(Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.management import ChargeState, UpdateScheduler
from repro.core.selection import CommunityAccessModel, DataSelector, PersonalAccessModel
from repro.obs.energy import EnergyBreakdown
from repro.pocketweb.pages import PageModel, PageProfile
from repro.pocketweb.store import PageStore
from repro.radio.energy import isolated_request_components, isolated_request_latency
from repro.radio.models import RadioProfile, THREE_G
from repro.sim.browser import Browser

KB = 1024

#: Fraction of a page transferred by a conditional GET on a stale hit.
REVALIDATION_FRACTION = 0.25
#: Request header bytes for a conditional GET.
CONDITIONAL_GET_BYTES = 1 * KB


@dataclass(frozen=True)
class BrowseOutcome:
    """One page visit's result and cost.

    ``energy_breakdown`` splits ``energy_j``'s radio portion into the
    ramp/transfer/tail components the serve layer's attribution needs;
    it is observability metadata and does not affect the model numbers.
    """

    url: str
    path: str  # "fresh-hit", "stale-hit", "stale-served", or "miss"
    latency_s: float
    energy_j: float
    bytes_over_radio: int
    energy_breakdown: Optional[EnergyBreakdown] = field(
        default=None, compare=False
    )

    @property
    def hit(self) -> bool:
        return self.path != "miss"


class PocketWebCloudlet:
    """The web-content cloudlet.

    Args:
        budget_bytes: flash budget for cached pages.
        page_model: URL -> page property mapping.
        radio: fallback radio profile.
        base_power_w: device base power during interaction.
        scheduler: update scheduler (defaults tuned for page refreshes).
    """

    def __init__(
        self,
        budget_bytes: int,
        page_model: Optional[PageModel] = None,
        radio: RadioProfile = THREE_G,
        base_power_w: float = 0.9,
        browser: Optional[Browser] = None,
        scheduler: Optional[UpdateScheduler] = None,
    ) -> None:
        self.store = PageStore(budget_bytes)
        self.page_model = page_model or PageModel()
        self.radio = radio
        self.base_power_w = base_power_w
        self.browser = browser or Browser()
        self.scheduler = scheduler or UpdateScheduler(
            realtime_threshold_per_day=3.0, realtime_budget_per_day=30
        )
        self.personal = PersonalAccessModel(decay_rate=1.0 / (14 * 86400))
        self.community = CommunityAccessModel()
        self.outcomes: list = []
        self._visit_counts: Dict[str, int] = {}
        self._first_visit_t: Dict[str, float] = {}

    # -- browsing ----------------------------------------------------------------

    def browse(self, url: str, t_seconds: float) -> BrowseOutcome:
        """Visit ``url`` at simulated time ``t_seconds``."""
        profile = self.page_model.profile(url)
        live_version = profile.version_at(t_seconds)
        self._observe(url, t_seconds)

        cached_version = self.store.cached_version(url)
        if cached_version is None:
            outcome = self._miss(profile, live_version)
        elif cached_version >= live_version:
            outcome = self._fresh_hit(profile)
        elif self.scheduler.request_realtime_update(url, t_seconds):
            # Hot page: revalidate over the radio, then serve locally.
            outcome = self._stale_hit(profile, live_version)
        else:
            # Cold stale page: not worth a radio refresh mid-day; serve
            # the cached copy (the paper accepts bounded staleness for
            # non-hot content rather than burning radio energy).
            outcome = self._fresh_hit(profile, path="stale-served")
        self.outcomes.append(outcome)
        return outcome

    def _fresh_hit(self, profile: PageProfile, path: str = "fresh-hit") -> BrowseOutcome:
        read = self.store.read(profile.url)
        render_s = self.browser.render(profile.page_bytes)
        latency = read.latency_s + render_s
        energy = (
            latency * self.base_power_w
            + read.energy_j
            + self.browser.render_energy_j(render_s)
        )
        breakdown = EnergyBreakdown(
            storage_j=read.energy_j,
            render_j=self.browser.render_energy_j(render_s),
            base_j=latency * self.base_power_w,
        )
        return BrowseOutcome(profile.url, path, latency, energy, 0, breakdown)

    def _stale_hit(self, profile: PageProfile, live_version: int) -> BrowseOutcome:
        delta_bytes = int(profile.page_bytes * REVALIDATION_FRACTION)
        radio_latency = isolated_request_latency(
            self.radio, CONDITIONAL_GET_BYTES, delta_bytes, 0.1
        )
        radio_parts = isolated_request_components(
            self.radio, CONDITIONAL_GET_BYTES, delta_bytes, 0.1
        )
        radio_energy = (
            radio_parts.ramp_j + radio_parts.transfer_j
        ) + radio_parts.tail_j
        self.store.touch(profile.url, live_version)
        read = self.store.read(profile.url)
        render_s = self.browser.render(profile.page_bytes)
        latency = radio_latency + read.latency_s + render_s
        energy = (
            latency * self.base_power_w
            + radio_energy
            + read.energy_j
            + self.browser.render_energy_j(render_s)
        )
        breakdown = EnergyBreakdown(
            ramp_j=radio_parts.ramp_j,
            transfer_j=radio_parts.transfer_j,
            tail_j=radio_parts.tail_j,
            storage_j=read.energy_j,
            render_j=self.browser.render_energy_j(render_s),
            base_j=latency * self.base_power_w,
        )
        return BrowseOutcome(
            profile.url, "stale-hit", latency, energy, delta_bytes, breakdown
        )

    def _miss(self, profile: PageProfile, live_version: int) -> BrowseOutcome:
        radio_latency = isolated_request_latency(
            self.radio, CONDITIONAL_GET_BYTES, profile.page_bytes, 0.2
        )
        radio_parts = isolated_request_components(
            self.radio, CONDITIONAL_GET_BYTES, profile.page_bytes, 0.2
        )
        radio_energy = (
            radio_parts.ramp_j + radio_parts.transfer_j
        ) + radio_parts.tail_j
        render_s = self.browser.render(profile.page_bytes)
        latency = radio_latency + render_s
        energy = (
            latency * self.base_power_w
            + radio_energy
            + self.browser.render_energy_j(render_s)
        )
        if profile.page_bytes <= self.store.budget_bytes:
            self.store.put(profile.url, profile.page_bytes, live_version)
        breakdown = EnergyBreakdown(
            ramp_j=radio_parts.ramp_j,
            transfer_j=radio_parts.transfer_j,
            tail_j=radio_parts.tail_j,
            render_j=self.browser.render_energy_j(render_s),
            base_j=latency * self.base_power_w,
        )
        return BrowseOutcome(
            profile.url, "miss", latency, energy, profile.page_bytes, breakdown
        )

    def _observe(self, url: str, t_seconds: float) -> None:
        self.personal.record(url, t_seconds)
        self.community.record(url)
        self._visit_counts[url] = self._visit_counts.get(url, 0) + 1
        first = self._first_visit_t.setdefault(url, t_seconds)
        span_days = max((t_seconds - first) / 86400.0, 1.0)
        self.scheduler.observe_daily_rate(url, self._visit_counts[url] / span_days)

    # -- overnight maintenance ------------------------------------------------------

    def overnight_update(
        self,
        t_seconds: float,
        charge: ChargeState,
        community_hints: Optional[CommunityAccessModel] = None,
    ) -> Dict[str, int]:
        """Charge-time bulk update: refresh cached pages and prefetch.

        Refreshes every stale cached page and prefetches the top pages
        selected by the combined personal + community models into the
        remaining budget.  Only runs when the device is charging on a
        fast link (Section 3.2); returns counters.

        Args:
            t_seconds: current simulated time.
            charge: device charge/link state.
            community_hints: optional server-provided popularity model
                (e.g. what other users read); defaults to the locally
                observed one.
        """
        if not self.scheduler.run_bulk_update(t_seconds, charge):
            return {"refreshed": 0, "prefetched": 0}
        refreshed = 0
        for url in self.store.cached_urls():
            profile = self.page_model.profile(url)
            live = profile.version_at(t_seconds)
            if (self.store.cached_version(url) or 0) < live:
                self.store.put(url, profile.page_bytes, live)
                refreshed += 1

        community = community_hints or self.community
        selector = DataSelector(community, self.personal)
        candidates = {
            url
            for url, _ in community.top_items(200)
        } | {url for url, _ in self.personal.top_items(50)}
        item_bytes = {
            url: self.page_model.profile(url).page_bytes for url in candidates
        }
        free = self.store.budget_bytes - self.store.bytes_stored
        prefetched = 0
        for selected in selector.select(free, item_bytes):
            if selected.item in self.store:
                continue
            profile = self.page_model.profile(selected.item)
            self.store.put(
                profile.url, profile.page_bytes, profile.version_at(t_seconds)
            )
            prefetched += 1
        return {"refreshed": refreshed, "prefetched": prefetched}

    # -- stats -----------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.hit) / len(self.outcomes)

    @property
    def bytes_over_radio(self) -> int:
        return sum(o.bytes_over_radio for o in self.outcomes)
