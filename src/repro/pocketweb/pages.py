"""Synthetic web-page properties.

Every URL maps deterministically (by hash) to a page profile: its
transfer size and how often its content changes.  The distribution
follows the paper's discussion:

* most pages are effectively static between visits (search results,
  reference pages, site front doors whose *route* is stable);
* a small fraction (news, stocks) changes many times per day — these are
  the pages that need real-time refresh rather than charge-time bulk
  updates (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pocketsearch.hashtable import hash64

KB = 1024
MB = 1024**2

#: Fraction of URLs that are highly dynamic (news/stocks-like).
DYNAMIC_URL_FRACTION = 0.12
#: Content changes per day for dynamic pages.
DYNAMIC_CHANGES_PER_DAY = 24.0
#: Content changes per day for ordinary pages (roughly weekly).
STATIC_CHANGES_PER_DAY = 1.0 / 7.0


@dataclass(frozen=True)
class PageProfile:
    """Immutable properties of one web page."""

    url: str
    page_bytes: int
    changes_per_day: float

    @property
    def is_dynamic(self) -> bool:
        return self.changes_per_day >= 1.0

    def version_at(self, t_seconds: float) -> int:
        """The content version live at time ``t`` (monotone counter)."""
        if t_seconds < 0:
            raise ValueError(f"t_seconds must be non-negative, got {t_seconds}")
        return int(t_seconds / 86400.0 * self.changes_per_day)


class PageModel:
    """Deterministic URL -> :class:`PageProfile` mapping.

    Args:
        mean_page_bytes: average transfer size (the paper's Table 2 uses
            1.5 MB for a desktop-class page; mobile pages of the era were
            smaller, so the default is 300 KB).
        dynamic_fraction: share of URLs that are highly dynamic.
    """

    def __init__(
        self,
        mean_page_bytes: int = 300 * KB,
        dynamic_fraction: float = DYNAMIC_URL_FRACTION,
    ) -> None:
        if mean_page_bytes <= 0:
            raise ValueError("mean_page_bytes must be positive")
        if not 0 <= dynamic_fraction <= 1:
            raise ValueError("dynamic_fraction must be in [0, 1]")
        self.mean_page_bytes = mean_page_bytes
        self.dynamic_fraction = dynamic_fraction

    def profile(self, url: str) -> PageProfile:
        """The (stable) profile of ``url``."""
        h = hash64(url)
        # Size: 0.25x to 4x the mean, skewed small, derived from hash bits.
        size_factor = 0.25 + ((h >> 8) % 1000) / 1000.0 * 3.75
        size_weight = 1.0 - 0.5 * (((h >> 20) % 100) / 100.0)
        page_bytes = max(20 * KB, int(self.mean_page_bytes * size_factor * size_weight))
        dynamic = ((h % 10_000) / 10_000.0) < self.dynamic_fraction
        changes = DYNAMIC_CHANGES_PER_DAY if dynamic else STATIC_CHANGES_PER_DAY
        return PageProfile(url=url, page_bytes=page_bytes, changes_per_day=changes)
