"""PocketYellow: the yellow-pages (local business) pocket cloudlet.

Table 2 budgets this service at 5 KB per item — "map tile with business
info" — and Section 7 sizes the full product: "storing information about
23 million businesses across the United States ... corresponds to
approximately 100 GB".  Like mapping, business data is static: bulk
updates while charging, no radio refreshes.

* :mod:`directory` — a synthetic business directory laid out on the
  PocketMaps tile grid, with density varying by area (downtown vs
  rural) and deterministic per-tile content;
* :mod:`cloudlet` — the cached directory: business-info tiles packed on
  flash, category search over a radius served locally when the covering
  tiles are cached, radio fallback otherwise.
"""

from repro.pocketyellow.directory import (
    Business,
    BusinessDirectory,
    CATEGORIES,
    US_BUSINESS_COUNT,
    national_directory_bytes,
)
from repro.pocketyellow.cloudlet import SearchOutcome, YellowPagesCloudlet

__all__ = [
    "Business",
    "BusinessDirectory",
    "CATEGORIES",
    "SearchOutcome",
    "US_BUSINESS_COUNT",
    "YellowPagesCloudlet",
    "national_directory_bytes",
]
