"""A synthetic local-business directory on the map tile grid."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.pocketmaps.grid import TILE_BYTES, TileId
from repro.pocketsearch.hashtable import hash64

#: Section 7: businesses across the United States.
US_BUSINESS_COUNT = 23_000_000
#: Table 2: one business-info tile is ~5 KB.
BUSINESS_TILE_BYTES = TILE_BYTES

CATEGORIES = (
    "restaurant",
    "coffee",
    "pharmacy",
    "gas station",
    "grocery",
    "bank",
    "salon",
    "hardware",
)


@dataclass(frozen=True)
class Business:
    """One directory entry."""

    business_id: int
    name: str
    category: str
    tile: TileId


def national_directory_bytes(
    businesses: int = US_BUSINESS_COUNT, bytes_per_item: int = BUSINESS_TILE_BYTES
) -> int:
    """Section 7's arithmetic: the full US directory's footprint.

    23 million businesses at ~5 KB each is ~110 GB — the paper rounds to
    "approximately 100 GB", putting a national yellow-pages cloudlet
    beyond near-term low-end budgets but within the 256 GB generation.
    """
    if businesses < 0 or bytes_per_item < 0:
        raise ValueError("counts must be non-negative")
    return businesses * bytes_per_item


class BusinessDirectory:
    """Deterministic tile -> businesses mapping.

    Business density follows a downtown gradient: tiles near the origin
    of each 64-tile "city" cell are dense, the periphery sparse — so a
    metro-area cache holds most of what a user searches for.

    Args:
        mean_density: average businesses per tile across the map.
    """

    def __init__(self, mean_density: float = 2.0) -> None:
        if mean_density <= 0:
            raise ValueError("mean_density must be positive")
        self.mean_density = mean_density

    def density_at(self, tile: TileId) -> int:
        """Businesses on one tile (deterministic in the tile id)."""
        cell_x, cell_y = tile.x % 64, tile.y % 64
        # Distance from the cell's "downtown" corner drives density.
        distance = (cell_x**2 + cell_y**2) ** 0.5
        downtown_boost = max(0.0, 1.0 - distance / 32.0)
        h = hash64(f"density:{tile.x}:{tile.y}")
        jitter = (h % 1000) / 1000.0
        value = self.mean_density * (0.25 + 3.0 * downtown_boost) * (0.5 + jitter)
        return int(value)

    def businesses_at(self, tile: TileId) -> List[Business]:
        """The businesses on one tile."""
        out = []
        for i in range(self.density_at(tile)):
            h = hash64(f"biz:{tile.x}:{tile.y}:{i}")
            category = CATEGORIES[h % len(CATEGORIES)]
            out.append(
                Business(
                    business_id=h,
                    name=f"{category.title()} #{h % 10_000}",
                    category=category,
                    tile=tile,
                )
            )
        return out

    def tile_bytes(self, tile: TileId) -> int:
        """Stored size of one tile's business info (0 if empty)."""
        if self.density_at(tile) == 0:
            return 0
        return BUSINESS_TILE_BYTES
