"""The yellow-pages cloudlet: cached business-info tiles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.pocketmaps.grid import Region, TileId
from repro.pocketyellow.directory import (
    BUSINESS_TILE_BYTES,
    Business,
    BusinessDirectory,
)
from repro.radio.energy import isolated_request_energy, isolated_request_latency
from repro.radio.models import RadioProfile, THREE_G
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash

KB = 1024
#: Business-info tiles packed per flash file (same fragmentation logic
#: as PocketMaps region files).
PACK_TILES = 64


@dataclass(frozen=True)
class SearchOutcome:
    """One local-business search."""

    category: str
    businesses: List[Business]
    tiles_needed: int
    tiles_hit: int
    latency_s: float
    energy_j: float
    bytes_over_radio: int

    @property
    def hit(self) -> bool:
        return self.tiles_hit == self.tiles_needed


class YellowPagesCloudlet:
    """Cached business directory with radius search.

    Args:
        budget_bytes: flash budget for business-info tiles.
        directory: the underlying (synthetic) national directory.
        radio: fallback link.
    """

    def __init__(
        self,
        budget_bytes: int,
        directory: Optional[BusinessDirectory] = None,
        radio: RadioProfile = THREE_G,
        base_power_w: float = 0.9,
        filesystem: Optional[FlashFilesystem] = None,
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        self.budget_bytes = budget_bytes
        self.directory = directory or BusinessDirectory()
        self.radio = radio
        self.base_power_w = base_power_w
        self.filesystem = filesystem or FlashFilesystem(NandFlash())
        self._tiles: Set[TileId] = set()
        self._pack_counts: dict = {}
        self.outcomes: List[SearchOutcome] = []

    # -- storage ------------------------------------------------------------

    @property
    def bytes_stored(self) -> int:
        return len(self._tiles) * BUSINESS_TILE_BYTES

    def has_tile(self, tile: TileId) -> bool:
        return tile in self._tiles

    @staticmethod
    def _pack_key(tile: TileId) -> tuple:
        return (tile.x // 8, tile.y // 8)

    def _pack_file(self, key: tuple) -> str:
        return f"yp:{key[0]}:{key[1]}"

    def prefetch_region(self, region: Region) -> int:
        """Charge-time bulk load of a metro area's business tiles.

        Empty tiles (no businesses) are skipped — rural coverage is
        nearly free, which is why a metro prefetch goes so far.
        """
        stored = 0
        for tile in region.tiles():
            if tile in self._tiles:
                continue
            if self.directory.tile_bytes(tile) == 0:
                continue
            if self.bytes_stored + BUSINESS_TILE_BYTES > self.budget_bytes:
                break
            key = self._pack_key(tile)
            name = self._pack_file(key)
            if key not in self._pack_counts:
                self.filesystem.create(name)
                self._pack_counts[key] = 0
            self.filesystem.append(name, BUSINESS_TILE_BYTES)
            self._pack_counts[key] += 1
            self._tiles.add(tile)
            stored += 1
        return stored

    # -- service ----------------------------------------------------------------

    def search(
        self, category: str, center_x_m: float, center_y_m: float, radius_m: float = 1500.0
    ) -> SearchOutcome:
        """Find businesses of a category within a radius.

        Served locally when every covering business tile is cached; a
        single batched radio request fetches (and caches) the missing
        tiles otherwise.
        """
        if radius_m <= 0:
            raise ValueError("radius_m must be positive")
        area = Region(
            center_x_m - radius_m, center_y_m - radius_m, 2 * radius_m, 2 * radius_m
        )
        needed = [
            t for t in area.tiles() if self.directory.tile_bytes(t) > 0
        ]
        hits = [t for t in needed if t in self._tiles]
        misses = [t for t in needed if t not in self._tiles]

        latency = 0.0
        energy = 0.0
        # Sorted: float latency/energy sums must not depend on set order.
        for key in sorted({self._pack_key(t) for t in hits}):
            cost = self.filesystem.read(
                self._pack_file(key), 0, self._pack_counts[key] * BUSINESS_TILE_BYTES
            )
            latency += cost.latency_s
            energy += cost.energy_j

        radio_bytes = 0
        if misses:
            radio_bytes = len(misses) * BUSINESS_TILE_BYTES
            latency += isolated_request_latency(self.radio, 512, radio_bytes, 0.15)
            energy += isolated_request_energy(self.radio, 512, radio_bytes, 0.15)
            self.prefetch_region(area)

        businesses = [
            b
            for t in needed
            for b in self.directory.businesses_at(t)
            if b.category == category
        ]
        energy += latency * self.base_power_w
        outcome = SearchOutcome(
            category=category,
            businesses=businesses,
            tiles_needed=len(needed),
            tiles_hit=len(hits),
            latency_s=latency,
            energy_j=energy,
            bytes_over_radio=radio_bytes,
        )
        self.outcomes.append(outcome)
        return outcome

    # -- stats --------------------------------------------------------------------

    @property
    def search_hit_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.hit) / len(self.outcomes)
