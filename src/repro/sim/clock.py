"""Simulation clock: monotonically advancing simulated seconds."""

from __future__ import annotations


class SimClock:
    """A simple forward-only simulated clock.

    Time is a float number of seconds since simulation start.  Components
    advance it as they model latency; tests can also jump it forward to
    model think-time between user actions.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        self._now = start

    @property
    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance by negative dt {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance to absolute time ``t`` (must not move backwards)."""
        if t < self._now:
            raise ValueError(f"cannot move clock backwards: {t} < {self._now}")
        self._now = t
        return self._now
