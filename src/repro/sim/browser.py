"""Browser rendering-latency model.

Table 4 of the paper shows that with PocketSearch the dominant cost of
serving a query is the embedded browser rendering the results page: 361 ms
of a 378 ms total (96.7%).  Rendering cost is modelled as a fixed engine
start-up/layout cost plus a per-byte parse/paint cost, fitted so a typical
mobile search-result page renders in ~361 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

KB = 1024

#: Size of the local search-result page PocketSearch renders (two results
#: plus markup).
SERP_BYTES = 24 * KB

#: Size of a full server search-result page fetched over a radio link —
#: larger than the local page because it carries images and ads, but of
#: comparable rendered DOM complexity.
RADIO_SERP_BYTES = 64 * KB


@dataclass(frozen=True)
class RenderModel:
    """Parameters of the rendering cost model.

    ``render_s = base_s + page_bytes / parse_bandwidth_bps``
    """

    base_s: float = 0.120
    parse_bandwidth_bps: float = 102_000.0

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ValueError(f"base_s must be non-negative, got {self.base_s}")
        if self.parse_bandwidth_bps <= 0:
            raise ValueError("parse_bandwidth_bps must be positive")

    def render_seconds(self, page_bytes: int) -> float:
        if page_bytes < 0:
            raise ValueError(f"page_bytes must be non-negative, got {page_bytes}")
        return self.base_s + page_bytes / self.parse_bandwidth_bps


class Browser:
    """An embedded browser object with render-time and power accounting."""

    def __init__(
        self, model: RenderModel = RenderModel(), render_power_w: float = 0.35
    ) -> None:
        if render_power_w < 0:
            raise ValueError("render_power_w must be non-negative")
        self.model = model
        self.render_power_w = render_power_w
        self.pages_rendered = 0
        self.total_render_s = 0.0

    def render(self, page_bytes: int = SERP_BYTES) -> float:
        """Render a page; returns elapsed seconds and logs stats."""
        elapsed = self.model.render_seconds(page_bytes)
        self.pages_rendered += 1
        self.total_render_s += elapsed
        return elapsed

    def render_energy_j(self, render_s: float) -> float:
        """Incremental CPU/GPU energy of rendering for ``render_s``."""
        if render_s < 0:
            raise ValueError(f"render_s must be non-negative, got {render_s}")
        return render_s * self.render_power_w
