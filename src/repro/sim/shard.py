"""Sharded parallel dispatch for the replay harness.

:func:`run_sharded_mode` partitions the (user class, user id) work list
of one cache mode into contiguous shards and replays them on a
``multiprocessing`` pool.  Design constraints:

* **Bit-identical results.**  Workers run the exact same per-user
  function as the serial path (:func:`repro.sim.replay.replay_one_user`)
  with per-user seeds derived from the user id, and the parent
  reassembles shard outputs in shard order (``Pool.map`` preserves task
  order), so the merged user list is byte-for-byte the serial list no
  matter how the OS schedules workers.
* **One payload per worker, not per shard.**  The log, cache content,
  and pre-mined daily contents are pickled once into each worker via the
  pool initializer; shard tasks carry only index lists.
* **Observability.**  Each shard reports its wall time; the parent
  emits a ``replay_shard`` trace event per shard and a ``merge_shards``
  span, and returns summary stats for the mode span / run manifests.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.logs.generator import SearchLog
from repro.logs.schema import UserClass
from repro.obs.trace import get_tracer
from repro.pocketsearch.content import CacheContent
from repro.sim.replay import ReplayConfig, UserReplayResult, replay_one_user

#: Auto-sized shards per worker: small enough to balance load across the
#: pool, large enough to amortize per-task dispatch.
SHARDS_PER_WORKER = 4

#: Worker-process state installed by :func:`_init_worker`.
_WORKER_STATE: Dict[str, Any] = {}


def partition_shards(
    work: Sequence[Tuple[UserClass, int]], shard_size: int
) -> List[List[Tuple[UserClass, int]]]:
    """Split the work list into contiguous shards of ``shard_size``."""
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    work = list(work)
    return [work[i: i + shard_size] for i in range(0, len(work), shard_size)]


def resolve_shard_size(
    n_work: int, workers: int, shard_size: Optional[int]
) -> int:
    """The configured shard size, or the load-balancing default."""
    if shard_size is not None:
        return shard_size
    return max(1, math.ceil(n_work / (workers * SHARDS_PER_WORKER)))


def _init_worker(
    log: SearchLog,
    content: Optional[CacheContent],
    daily_contents: List[CacheContent],
    config: ReplayConfig,
    t_start: float,
    t_end: float,
) -> None:
    """Install the read-only replay inputs in a pool worker.

    Also forces the no-op tracer: a forked worker would otherwise inherit
    the parent's recording tracer and accumulate spans that die with the
    process.
    """
    from repro.obs import trace

    trace.set_tracer(trace.NULL_TRACER)
    _WORKER_STATE.update(
        log=log,
        content=content,
        daily_contents=daily_contents,
        config=config,
        t_start=t_start,
        t_end=t_end,
    )


def _run_shard(
    task: Tuple[int, str, List[Tuple[UserClass, int]]],
) -> Tuple[int, float, List[UserReplayResult]]:
    """Replay one shard in a worker; returns (index, wall seconds, users)."""
    shard_index, mode, pairs = task
    state = _WORKER_STATE
    t0 = time.perf_counter()
    users = [
        replay_one_user(
            state["log"],
            state["content"],
            state["daily_contents"],
            state["config"],
            mode,
            user_class,
            uid,
            state["t_start"],
            state["t_end"],
        )
        for user_class, uid in pairs
    ]
    return shard_index, time.perf_counter() - t0, users


def run_sharded_mode(
    log: SearchLog,
    content: Optional[CacheContent],
    daily_contents: List[CacheContent],
    config: ReplayConfig,
    mode: str,
    work: Sequence[Tuple[UserClass, int]],
    t_start: float,
    t_end: float,
) -> Tuple[List[UserReplayResult], Dict[str, Any]]:
    """Replay one mode's users across a worker pool.

    Returns the per-user results in the exact order of ``work`` plus a
    stats dict (shard count/sizes, per-shard wall times, merge overhead)
    for the mode span and run manifests.
    """
    tracer = get_tracer()
    shard_size = resolve_shard_size(len(work), config.workers, config.shard_size)
    shards = partition_shards(work, shard_size)
    tasks = [(i, mode, shard) for i, shard in enumerate(shards)]
    n_procs = min(config.workers, len(shards))

    t0 = time.perf_counter()
    ctx = multiprocessing.get_context()
    with ctx.Pool(
        processes=n_procs,
        initializer=_init_worker,
        initargs=(log, content, daily_contents, config, t_start, t_end),
    ) as pool:
        shard_results = pool.map(_run_shard, tasks, chunksize=1)
    pool_wall_s = time.perf_counter() - t0

    shard_wall_s: List[float] = []
    users: List[UserReplayResult] = []
    merge_t0 = time.perf_counter()
    with tracer.span("merge_shards", mode=mode, n_shards=len(shards)) as span:
        # Pool.map returns results in task order; the index is kept as a
        # belt-and-braces invariant check on the deterministic merge.
        for expected, (shard_index, wall_s, shard_users) in enumerate(
            shard_results
        ):
            if shard_index != expected:
                raise RuntimeError(
                    f"shard results arrived out of order: got {shard_index}, "
                    f"expected {expected}"
                )
            shard_wall_s.append(wall_s)
            tracer.event(
                "replay_shard",
                mode=mode,
                shard=shard_index,
                n_users=len(shard_users),
                wall_s=wall_s,
            )
            users.extend(shard_users)
        merge_s = time.perf_counter() - merge_t0
        span.set_attr("merge_s", merge_s)

    stats = {
        "workers": n_procs,
        "n_shards": len(shards),
        "shard_size": shard_size,
        "shard_wall_s": [round(w, 6) for w in shard_wall_s],
        "pool_wall_s": round(pool_wall_s, 6),
        "merge_s": round(merge_s, 6),
    }
    return users, stats
