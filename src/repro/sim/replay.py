"""Query-stream replay harness (Section 6.2).

Reproduces the paper's hit-rate methodology:

1. build the community cache content from one month of logs;
2. randomly select N users per Table 6 class based on their *replay*
   month volume;
3. replay each user's next-month query stream against a fresh
   PocketSearch cache (each user has their own phone), in one of three
   modes: full, community-only (personalization off), or
   personalization-only (community content empty);
4. aggregate hit rates per class, per week, and by navigational split.

Optionally applies daily server updates during the replay (Section
6.2.2), refreshing the community component from a trailing log window.

Each user's replay is independent (one phone per user), so the harness
is embarrassingly parallel: ``ReplayConfig(workers=N)`` partitions the
selected users into shards dispatched to a ``multiprocessing`` pool (see
:mod:`repro.sim.shard`).  All randomness is derived per user from
``np.random.SeedSequence`` spawn keys over the user id — never from a
shared stream — so results are bit-identical regardless of worker count,
shard size, or scheduling order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.logs.generator import SearchLog
from repro.logs.schema import MONTH_SECONDS, UserClass, classify_user
from repro.obs.trace import get_tracer
from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import (
    CacheContent,
    ContentPolicy,
    PAPER_OPERATING_POINT,
    build_cache_content,
)
from repro.pocketsearch.database import ResultDatabase
from repro.pocketsearch.engine import PocketSearchEngine
from repro.pocketsearch.manager import CacheUpdateServer
from repro.sim.metrics import MetricsCollector
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash

DAY_SECONDS = 24 * 3600


class CacheMode:
    """The three Figure 17 cache configurations."""

    FULL = "full"
    COMMUNITY_ONLY = "community"
    PERSONALIZATION_ONLY = "personalization"

    ALL = (FULL, COMMUNITY_ONLY, PERSONALIZATION_ONLY)


@dataclass(frozen=True)
class ReplayConfig:
    """Replay experiment parameters."""

    build_month: int = 0
    replay_month: int = 1
    users_per_class: int = 100
    policy: ContentPolicy = PAPER_OPERATING_POINT
    seed: int = 97
    daily_updates: bool = False
    #: Use bounded-memory streaming collectors instead of retaining every
    #: QueryOutcome (see :class:`repro.sim.metrics.MetricsCollector`).
    bounded_metrics: bool = False
    #: Worker processes for the replay fan-out.  1 (the default) keeps
    #: the exact in-process serial path; N > 1 dispatches user shards to
    #: a multiprocessing pool.  Results are bit-identical either way.
    workers: int = 1
    #: Users per shard when ``workers > 1``.  ``None`` auto-sizes to
    #: roughly four shards per worker (load balancing without excessive
    #: per-shard dispatch overhead).  Affects scheduling only, never
    #: results.
    shard_size: Optional[int] = None
    #: Replay engine: ``"scalar"`` is the per-event
    #: :class:`PocketSearchEngine` loop; ``"vectorized"`` batch-evaluates
    #: each user's stream (:mod:`repro.sim.vectorized`).  Results are
    #: bit-identical; composes with ``workers`` sharding.
    engine: str = "scalar"

    ENGINES = ("scalar", "vectorized")

    def __post_init__(self) -> None:
        if self.users_per_class <= 0:
            raise ValueError("users_per_class must be positive")
        if self.build_month == self.replay_month:
            raise ValueError("build and replay months must differ")
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.shard_size is not None and self.shard_size <= 0:
            raise ValueError("shard_size must be positive when given")
        if self.engine not in self.ENGINES:
            raise ValueError(
                f"engine must be one of {self.ENGINES}, got {self.engine!r}"
            )


@dataclass
class UserReplayResult:
    """Outcome of one user's month-long replay."""

    user_id: int
    user_class: UserClass
    metrics: MetricsCollector


@dataclass
class ReplayResult:
    """All user replays of one mode."""

    mode: str
    users: List[UserReplayResult] = field(default_factory=list)

    def _mean_rate_by_class(self, user_rate) -> Dict[UserClass, float]:
        """Bucket per-user rates by class and average each bucket.

        ``user_rate`` maps a :class:`UserReplayResult` to a rate or
        ``None`` (user excluded from their class bucket).  Classes with
        no contributing users yield NaN.
        """
        rates: Dict[UserClass, List[float]] = {c: [] for c in UserClass}
        for user in self.users:
            rate = user_rate(user)
            if rate is not None:
                rates[user.user_class].append(rate)
        return {
            c: float(np.mean(v)) if v else float("nan")
            for c, v in rates.items()
        }

    def hit_rate_by_class(self) -> Dict[UserClass, float]:
        """Mean per-user hit rate for each class (the Figure 17 bars)."""
        return self._mean_rate_by_class(lambda user: user.metrics.hit_rate)

    def overall_hit_rate(self) -> float:
        """Mean per-user hit rate across all replayed users."""
        if not self.users:
            return 0.0
        return float(np.mean([u.metrics.hit_rate for u in self.users]))

    def hit_rate_by_class_windowed(
        self, t_start: float, t_end: float
    ) -> Dict[UserClass, float]:
        """Figure 18: per-class hit rate restricted to a time window."""

        def windowed_rate(user: UserReplayResult) -> Optional[float]:
            window = user.metrics.window(t_start, t_end)
            return window.hit_rate if window.count else None

        return self._mean_rate_by_class(windowed_rate)

    def navigational_breakdown(self) -> Dict[UserClass, Dict[str, float]]:
        """Figure 19: cache-hit split into nav / non-nav per class."""
        bounded = any(u.metrics.bounded for u in self.users)
        out: Dict[UserClass, Dict[str, float]] = {}
        for user_class in UserClass:
            merged = MetricsCollector(bounded=bounded)
            for user in self.users:
                if user.user_class is user_class:
                    merged.merge(user.metrics)
            out[user_class] = merged.hit_breakdown_navigational()
        return out


# Spawn-key domains partitioning the per-user seed space: the selection
# lottery and the replay itself must draw from unrelated streams.
_SELECTION_DOMAIN = 0
_REPLAY_DOMAIN = 1


def derive_user_seed(seed: int, user_id: int) -> int:
    """Deterministic per-user replay seed, keyed by (seed, user id).

    Derived through ``np.random.SeedSequence`` spawn keys rather than a
    shared stream, so a user's seed never depends on how many draws other
    users consumed — the property that makes sharded replays bit-identical
    to serial ones regardless of scheduling order.
    """
    seq = np.random.SeedSequence(seed, spawn_key=(_REPLAY_DOMAIN, user_id))
    return int(seq.generate_state(1, dtype=np.uint64)[0])


def _selection_priority(seed: int, user_id: int) -> int:
    """Per-user lottery ticket for :func:`select_replay_users`."""
    seq = np.random.SeedSequence(seed, spawn_key=(_SELECTION_DOMAIN, user_id))
    return int(seq.generate_state(1, dtype=np.uint64)[0])


def select_replay_users(
    log: SearchLog,
    month: int,
    users_per_class: int,
    seed: int = 97,
) -> Dict[UserClass, List[int]]:
    """Randomly pick ``users_per_class`` users per Table 6 class.

    Classification uses the user's volume in the replay month, and users
    below the 20-queries/month floor are excluded, as in the paper.

    Selection is a per-user lottery keyed by ``(seed, user_id)``: each
    eligible user draws an independent priority and the
    ``users_per_class`` lowest tickets win.  Because no shared RNG stream
    is consumed, one class's candidate pool never perturbs another
    class's selection, and adding or removing unrelated users leaves
    existing picks stable (no draw-order coupling).
    """
    volumes = log.user_monthly_volumes(month=month)
    buckets: Dict[UserClass, List[int]] = {c: [] for c in UserClass}
    for uid, volume in volumes.items():
        user_class = classify_user(volume)
        if user_class is not None:
            buckets[user_class].append(uid)
    selected = {}
    for user_class, uids in buckets.items():
        if len(uids) > users_per_class:
            ranked = sorted(
                uids, key=lambda uid: (_selection_priority(seed, uid), uid)
            )
            uids = ranked[:users_per_class]
        selected[user_class] = sorted(uids)
    return selected


def make_cache(
    content: Optional[CacheContent],
    mode: str,
    results_per_entry: int = 2,
) -> PocketSearchCache:
    """A fresh per-user cache in the given mode."""
    from repro.pocketsearch.hashtable import QueryHashTable

    database = ResultDatabase(FlashFilesystem(NandFlash()))
    cache = PocketSearchCache(
        hashtable=QueryHashTable(results_per_entry=results_per_entry),
        database=database,
        personalization_enabled=(mode != CacheMode.COMMUNITY_ONLY),
    )
    if mode != CacheMode.PERSONALIZATION_ONLY and content is not None:
        cache.load_community(content)
    return cache


def replay_user(
    engine: PocketSearchEngine,
    log: SearchLog,
    user_id: int,
    t_start: float,
    t_end: float,
    metrics: Optional[MetricsCollector] = None,
) -> MetricsCollector:
    """Replay one user's events in [t_start, t_end) through an engine."""
    stream = log.for_user(user_id).window(t_start, t_end)
    if metrics is None:
        metrics = MetricsCollector()
    with get_tracer().span(
        "replay_user", user_id=user_id, n_events=stream.n_events
    ) as span:
        for i in range(stream.n_events):
            qkey = int(stream.query_keys[i])
            rkey = int(stream.result_keys[i])
            result = engine.serve_query(
                query=stream.query_string(qkey),
                clicked_url=stream.result_url(rkey),
                record_bytes=_record_bytes(stream, rkey),
                navigational=bool(stream.navigational[i]),
                timestamp=float(stream.timestamps[i]),
            )
            metrics.record(result.outcome)
        span.set_attr("hit_rate", metrics.hit_rate)
    return metrics


def _record_bytes(stream: SearchLog, result_key: int) -> int:
    """Stored size of a clicked result in a per-user windowed stream.

    ``stream`` is the per-user, time-windowed :class:`SearchLog` view the
    replay loop iterates (not the full multi-user log); community results
    carry their mined record size, unique (personal) results use a
    nominal 500 bytes.
    """
    community = stream.community
    if result_key < community.n_results:
        return community.result_records[result_key].record_bytes
    return 500


def run_replay(
    log: SearchLog,
    config: ReplayConfig = ReplayConfig(),
    modes: Iterable[str] = CacheMode.ALL,
    selected_users: Optional[Dict[UserClass, List[int]]] = None,
) -> Dict[str, ReplayResult]:
    """The full Section 6.2 experiment.

    Args:
        log: a log spanning at least the build and replay months.
        config: experiment parameters.
        modes: which cache modes to run.
        selected_users: pre-selected users (else sampled per Table 6).

    Returns:
        mode -> :class:`ReplayResult`.
    """
    tracer = get_tracer()
    with tracer.span("build_cache_content", month=config.build_month):
        build_log = log.month(config.build_month)
        content = build_cache_content(build_log, config.policy)
    if selected_users is None:
        selected_users = select_replay_users(
            log, config.replay_month, config.users_per_class, config.seed
        )
    t_start = config.replay_month * MONTH_SECONDS
    t_end = t_start + MONTH_SECONDS

    daily_contents: List[CacheContent] = []
    if config.daily_updates:
        with tracer.span("mine_daily_contents"):
            daily_contents = _daily_contents(log, config)

    work: List[Tuple[UserClass, int]] = [
        (user_class, uid)
        for user_class, uids in selected_users.items()
        for uid in uids
    ]

    results: Dict[str, ReplayResult] = {}
    for mode in modes:
        with tracer.span("replay_mode", mode=mode) as mode_span:
            if config.workers > 1 and len(work) > 1:
                from repro.sim.shard import run_sharded_mode

                users, stats = run_sharded_mode(
                    log, content, daily_contents, config, mode, work,
                    t_start, t_end,
                )
                mode_span.set_attrs(**stats)
            else:
                users = [
                    replay_one_user(
                        log, content, daily_contents, config, mode,
                        user_class, uid, t_start, t_end,
                    )
                    for user_class, uid in work
                ]
            result = ReplayResult(mode=mode, users=users)
            mode_span.set_attrs(
                n_users=len(result.users),
                overall_hit_rate=result.overall_hit_rate(),
            )
        results[mode] = result
    return results


def replay_one_user(
    log: SearchLog,
    content: Optional[CacheContent],
    daily_contents: List[CacheContent],
    config: ReplayConfig,
    mode: str,
    user_class: UserClass,
    user_id: int,
    t_start: float,
    t_end: float,
) -> UserReplayResult:
    """Replay a single user on a fresh phone (shared by serial/sharded paths).

    Everything a user's outcome depends on — the cache content, the log
    window, and the per-user seed — is passed in explicitly, so the
    result is identical whether this runs inline or in a worker process.
    """
    if config.engine == "vectorized":
        from repro.sim.vectorized import replay_one_user_vectorized

        return replay_one_user_vectorized(
            log, content, daily_contents, config, mode,
            user_class, user_id, t_start, t_end,
        )
    cache = make_cache(content, mode)
    engine = PocketSearchEngine(cache)
    metrics = _new_collector(config, user_id)
    if config.daily_updates and mode != CacheMode.PERSONALIZATION_ONLY:
        _replay_user_with_updates(
            engine, log, user_id, t_start, t_end, daily_contents, metrics
        )
    else:
        replay_user(engine, log, user_id, t_start, t_end, metrics)
    return UserReplayResult(
        user_id=user_id, user_class=user_class, metrics=metrics
    )


def _new_collector(config: ReplayConfig, user_id: int) -> MetricsCollector:
    """A per-user collector honouring the config's memory mode.

    Bounded collectors get a reservoir seed derived from the user id so
    percentile estimates are reproducible across serial and sharded runs.
    """
    if not config.bounded_metrics:
        return MetricsCollector()
    return MetricsCollector(
        bounded=True, reservoir_seed=derive_user_seed(config.seed, user_id)
    )


def _daily_contents(log: SearchLog, config: ReplayConfig) -> List[CacheContent]:
    """Pre-mine the popular set once per replay day (trailing 30 days)."""
    t_replay = config.replay_month * MONTH_SECONDS
    contents = []
    for day in range(30):
        t_end = t_replay + day * DAY_SECONDS
        window = log.window(t_end - MONTH_SECONDS, t_end)
        contents.append(build_cache_content(window, config.policy))
    return contents


def _replay_user_with_updates(
    engine: PocketSearchEngine,
    log: SearchLog,
    user_id: int,
    t_start: float,
    t_end: float,
    daily_contents: List[CacheContent],
    metrics: Optional[MetricsCollector] = None,
) -> MetricsCollector:
    """Replay with a nightly community refresh (Section 6.2.2)."""
    server = CacheUpdateServer()
    stream = log.for_user(user_id).window(t_start, t_end)
    if metrics is None:
        metrics = MetricsCollector()
    tracer = get_tracer()
    with tracer.span(
        "replay_user", user_id=user_id, n_events=stream.n_events,
        daily_updates=True,
    ) as span:
        day = 0
        for i in range(stream.n_events):
            t = float(stream.timestamps[i])
            event_day = min(
                int((t - t_start) // DAY_SECONDS), len(daily_contents) - 1
            )
            while day <= event_day:
                with tracer.span("community_refresh", day=day):
                    server.refresh_with_content(engine.cache, daily_contents[day])
                day += 1
            qkey = int(stream.query_keys[i])
            rkey = int(stream.result_keys[i])
            result = engine.serve_query(
                query=stream.query_string(qkey),
                clicked_url=stream.result_url(rkey),
                record_bytes=_record_bytes(stream, rkey),
                navigational=bool(stream.navigational[i]),
                timestamp=t,
            )
            metrics.record(result.outcome)
        span.set_attr("hit_rate", metrics.hit_rate)
    return metrics
