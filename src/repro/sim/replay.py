"""Query-stream replay harness (Section 6.2).

Reproduces the paper's hit-rate methodology:

1. build the community cache content from one month of logs;
2. randomly select N users per Table 6 class based on their *replay*
   month volume;
3. replay each user's next-month query stream against a fresh
   PocketSearch cache (each user has their own phone), in one of three
   modes: full, community-only (personalization off), or
   personalization-only (community content empty);
4. aggregate hit rates per class, per week, and by navigational split.

Optionally applies daily server updates during the replay (Section
6.2.2), refreshing the community component from a trailing log window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.logs.generator import SearchLog
from repro.logs.schema import MONTH_SECONDS, UserClass, classify_user
from repro.obs.trace import get_tracer
from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import (
    CacheContent,
    ContentPolicy,
    PAPER_OPERATING_POINT,
    build_cache_content,
)
from repro.pocketsearch.database import ResultDatabase
from repro.pocketsearch.engine import PocketSearchEngine
from repro.pocketsearch.manager import CacheUpdateServer
from repro.sim.metrics import MetricsCollector
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash

DAY_SECONDS = 24 * 3600


class CacheMode:
    """The three Figure 17 cache configurations."""

    FULL = "full"
    COMMUNITY_ONLY = "community"
    PERSONALIZATION_ONLY = "personalization"

    ALL = (FULL, COMMUNITY_ONLY, PERSONALIZATION_ONLY)


@dataclass(frozen=True)
class ReplayConfig:
    """Replay experiment parameters."""

    build_month: int = 0
    replay_month: int = 1
    users_per_class: int = 100
    policy: ContentPolicy = PAPER_OPERATING_POINT
    seed: int = 97
    daily_updates: bool = False
    #: Use bounded-memory streaming collectors instead of retaining every
    #: QueryOutcome (see :class:`repro.sim.metrics.MetricsCollector`).
    bounded_metrics: bool = False

    def __post_init__(self) -> None:
        if self.users_per_class <= 0:
            raise ValueError("users_per_class must be positive")
        if self.build_month == self.replay_month:
            raise ValueError("build and replay months must differ")


@dataclass
class UserReplayResult:
    """Outcome of one user's month-long replay."""

    user_id: int
    user_class: UserClass
    metrics: MetricsCollector


@dataclass
class ReplayResult:
    """All user replays of one mode."""

    mode: str
    users: List[UserReplayResult] = field(default_factory=list)

    def hit_rate_by_class(self) -> Dict[UserClass, float]:
        """Mean per-user hit rate for each class (the Figure 17 bars)."""
        rates: Dict[UserClass, List[float]] = {c: [] for c in UserClass}
        for user in self.users:
            rates[user.user_class].append(user.metrics.hit_rate)
        return {
            c: float(np.mean(v)) if v else float("nan")
            for c, v in rates.items()
        }

    def overall_hit_rate(self) -> float:
        """Mean per-user hit rate across all replayed users."""
        if not self.users:
            return 0.0
        return float(np.mean([u.metrics.hit_rate for u in self.users]))

    def hit_rate_by_class_windowed(
        self, t_start: float, t_end: float
    ) -> Dict[UserClass, float]:
        """Figure 18: per-class hit rate restricted to a time window."""
        rates: Dict[UserClass, List[float]] = {c: [] for c in UserClass}
        for user in self.users:
            window = user.metrics.window(t_start, t_end)
            if window.count:
                rates[user.user_class].append(window.hit_rate)
        return {
            c: float(np.mean(v)) if v else float("nan")
            for c, v in rates.items()
        }

    def navigational_breakdown(self) -> Dict[UserClass, Dict[str, float]]:
        """Figure 19: cache-hit split into nav / non-nav per class."""
        bounded = any(u.metrics.bounded for u in self.users)
        out: Dict[UserClass, Dict[str, float]] = {}
        for user_class in UserClass:
            merged = MetricsCollector(bounded=bounded)
            for user in self.users:
                if user.user_class is user_class:
                    merged.merge(user.metrics)
            out[user_class] = merged.hit_breakdown_navigational()
        return out


def select_replay_users(
    log: SearchLog,
    month: int,
    users_per_class: int,
    seed: int = 97,
) -> Dict[UserClass, List[int]]:
    """Randomly pick ``users_per_class`` users per Table 6 class.

    Classification uses the user's volume in the replay month, and users
    below the 20-queries/month floor are excluded, as in the paper.
    """
    rng = np.random.default_rng(seed)
    volumes = log.user_monthly_volumes(month=month)
    buckets: Dict[UserClass, List[int]] = {c: [] for c in UserClass}
    for uid, volume in volumes.items():
        user_class = classify_user(volume)
        if user_class is not None:
            buckets[user_class].append(uid)
    selected = {}
    for user_class, uids in buckets.items():
        uids = sorted(uids)
        if len(uids) > users_per_class:
            chosen = rng.choice(len(uids), size=users_per_class, replace=False)
            uids = [uids[i] for i in sorted(chosen.tolist())]
        selected[user_class] = uids
    return selected


def make_cache(
    content: Optional[CacheContent],
    mode: str,
    results_per_entry: int = 2,
) -> PocketSearchCache:
    """A fresh per-user cache in the given mode."""
    from repro.pocketsearch.hashtable import QueryHashTable

    database = ResultDatabase(FlashFilesystem(NandFlash()))
    cache = PocketSearchCache(
        hashtable=QueryHashTable(results_per_entry=results_per_entry),
        database=database,
        personalization_enabled=(mode != CacheMode.COMMUNITY_ONLY),
    )
    if mode != CacheMode.PERSONALIZATION_ONLY and content is not None:
        cache.load_community(content)
    return cache


def replay_user(
    engine: PocketSearchEngine,
    log: SearchLog,
    user_id: int,
    t_start: float,
    t_end: float,
    metrics: Optional[MetricsCollector] = None,
) -> MetricsCollector:
    """Replay one user's events in [t_start, t_end) through an engine."""
    stream = log.for_user(user_id).window(t_start, t_end)
    if metrics is None:
        metrics = MetricsCollector()
    with get_tracer().span(
        "replay_user", user_id=user_id, n_events=stream.n_events
    ) as span:
        for i in range(stream.n_events):
            qkey = int(stream.query_keys[i])
            rkey = int(stream.result_keys[i])
            result = engine.serve_query(
                query=stream.query_string(qkey),
                clicked_url=stream.result_url(rkey),
                record_bytes=_record_bytes(stream, rkey),
                navigational=bool(stream.navigational[i]),
                timestamp=float(stream.timestamps[i]),
            )
            metrics.record(result.outcome)
        span.set_attr("hit_rate", metrics.hit_rate)
    return metrics


def _record_bytes(stream: SearchLog, result_key: int) -> int:
    """Stored size of a clicked result in a per-user windowed stream.

    ``stream`` is the per-user, time-windowed :class:`SearchLog` view the
    replay loop iterates (not the full multi-user log); community results
    carry their mined record size, unique (personal) results use a
    nominal 500 bytes.
    """
    community = stream.community
    if result_key < community.n_results:
        return community.result_records[result_key].record_bytes
    return 500


def run_replay(
    log: SearchLog,
    config: ReplayConfig = ReplayConfig(),
    modes: Iterable[str] = CacheMode.ALL,
    selected_users: Optional[Dict[UserClass, List[int]]] = None,
) -> Dict[str, ReplayResult]:
    """The full Section 6.2 experiment.

    Args:
        log: a log spanning at least the build and replay months.
        config: experiment parameters.
        modes: which cache modes to run.
        selected_users: pre-selected users (else sampled per Table 6).

    Returns:
        mode -> :class:`ReplayResult`.
    """
    tracer = get_tracer()
    with tracer.span("build_cache_content", month=config.build_month):
        build_log = log.month(config.build_month)
        content = build_cache_content(build_log, config.policy)
    if selected_users is None:
        selected_users = select_replay_users(
            log, config.replay_month, config.users_per_class, config.seed
        )
    t_start = config.replay_month * MONTH_SECONDS
    t_end = t_start + MONTH_SECONDS

    daily_contents: List[CacheContent] = []
    if config.daily_updates:
        with tracer.span("mine_daily_contents"):
            daily_contents = _daily_contents(log, config)

    results: Dict[str, ReplayResult] = {}
    for mode in modes:
        result = ReplayResult(mode=mode)
        with tracer.span("replay_mode", mode=mode) as mode_span:
            for user_class, uids in selected_users.items():
                for uid in uids:
                    cache = make_cache(content, mode)
                    engine = PocketSearchEngine(cache)
                    metrics = _new_collector(config)
                    if (
                        config.daily_updates
                        and mode != CacheMode.PERSONALIZATION_ONLY
                    ):
                        _replay_user_with_updates(
                            engine, log, uid, t_start, t_end, daily_contents,
                            metrics,
                        )
                    else:
                        replay_user(
                            engine, log, uid, t_start, t_end, metrics
                        )
                    result.users.append(
                        UserReplayResult(
                            user_id=uid, user_class=user_class, metrics=metrics
                        )
                    )
            mode_span.set_attrs(
                n_users=len(result.users),
                overall_hit_rate=result.overall_hit_rate(),
            )
        results[mode] = result
    return results


def _new_collector(config: ReplayConfig) -> MetricsCollector:
    """A per-user collector honouring the config's memory mode."""
    return MetricsCollector(bounded=config.bounded_metrics)


def _daily_contents(log: SearchLog, config: ReplayConfig) -> List[CacheContent]:
    """Pre-mine the popular set once per replay day (trailing 30 days)."""
    t_replay = config.replay_month * MONTH_SECONDS
    contents = []
    for day in range(30):
        t_end = t_replay + day * DAY_SECONDS
        window = log.window(t_end - MONTH_SECONDS, t_end)
        contents.append(build_cache_content(window, config.policy))
    return contents


def _replay_user_with_updates(
    engine: PocketSearchEngine,
    log: SearchLog,
    user_id: int,
    t_start: float,
    t_end: float,
    daily_contents: List[CacheContent],
    metrics: Optional[MetricsCollector] = None,
) -> MetricsCollector:
    """Replay with a nightly community refresh (Section 6.2.2)."""
    server = CacheUpdateServer()
    stream = log.for_user(user_id).window(t_start, t_end)
    if metrics is None:
        metrics = MetricsCollector()
    tracer = get_tracer()
    with tracer.span(
        "replay_user", user_id=user_id, n_events=stream.n_events,
        daily_updates=True,
    ) as span:
        day = 0
        for i in range(stream.n_events):
            t = float(stream.timestamps[i])
            event_day = min(
                int((t - t_start) // DAY_SECONDS), len(daily_contents) - 1
            )
            while day <= event_day:
                with tracer.span("community_refresh", day=day):
                    server.refresh_with_content(engine.cache, daily_contents[day])
                day += 1
            qkey = int(stream.query_keys[i])
            rkey = int(stream.result_keys[i])
            result = engine.serve_query(
                query=stream.query_string(qkey),
                clicked_url=stream.result_url(rkey),
                record_bytes=_record_bytes(stream, rkey),
                navigational=bool(stream.navigational[i]),
                timestamp=t,
            )
            metrics.record(result.outcome)
        span.set_attr("hit_rate", metrics.hit_rate)
    return metrics
