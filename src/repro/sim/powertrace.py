"""ASCII rendering of radio power timelines (Figure 16's trace).

Turns a list of :class:`~repro.radio.states.PowerSegment` into a
fixed-width text chart — enough to *see* the paper's Figure 16: the long
high-power plateau of the radio run versus the short low bumps of
PocketSearch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.radio.states import PowerSegment, RadioState

#: Glyph per chart row, bottom to top.
_FILL = "#"
_EMPTY = " "


def sample_power(
    segments: Sequence[PowerSegment],
    n_samples: int,
    base_power_w: float = 0.0,
    t_end: Optional[float] = None,
) -> List[float]:
    """Sample total power (radio + base) at ``n_samples`` even points."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    if not segments:
        return [base_power_w] * n_samples
    end = t_end if t_end is not None else segments[-1].t_end
    if end <= 0:
        raise ValueError("timeline must cover positive time")
    samples = []
    idx = 0
    for i in range(n_samples):
        t = (i + 0.5) / n_samples * end
        while idx < len(segments) and segments[idx].t_end <= t:
            idx += 1
        if idx < len(segments) and segments[idx].t_start <= t:
            samples.append(segments[idx].power_w + base_power_w)
        else:
            samples.append(base_power_w)
    return samples


def segments_from_buckets(
    rows: Sequence[Dict[str, Any]],
    width_s: float,
    power_key: str = "power_w",
) -> List[PowerSegment]:
    """Turn windowed per-bucket power rows into a renderable timeline.

    Each row (as produced by
    :meth:`repro.obs.energy.EnergyWindows.per_bucket`) becomes one
    constant-power segment of ``width_s`` seconds.  Bucket starts are
    shifted so the window begins at t=0, which is what
    :func:`render_trace` samples over — the live power trace of the
    ``repro top`` energy panel.
    """
    if width_s <= 0:
        raise ValueError(f"width_s must be positive, got {width_s}")
    if not rows:
        return []
    origin = float(rows[0]["t_start"])
    return [
        PowerSegment(
            t_start=float(row["t_start"]) - origin,
            duration_s=width_s,
            power_w=float(row.get(power_key) or 0.0),
            state=RadioState.ACTIVE,
        )
        for row in rows
    ]


def render_trace(
    segments: Sequence[PowerSegment],
    width: int = 72,
    height: int = 8,
    base_power_w: float = 0.0,
    max_power_w: Optional[float] = None,
    title: str = "",
) -> str:
    """Render a power timeline as an ASCII chart.

    Args:
        segments: the radio timeline (from ``RadioLink.drain``).
        width: chart columns (time samples).
        height: chart rows (power resolution).
        base_power_w: constant device power added to every sample.
        max_power_w: y-axis ceiling (auto from the data when omitted).
        title: optional chart caption.

    Returns:
        A multi-line string; the left gutter labels power in watts.
    """
    if width <= 0 or height <= 0:
        raise ValueError("width and height must be positive")
    samples = sample_power(segments, width, base_power_w)
    ceiling = max_power_w if max_power_w is not None else max(samples) or 1.0
    if ceiling <= 0:
        raise ValueError("max_power_w must be positive")
    rows = []
    for level in range(height, 0, -1):
        threshold = ceiling * (level - 0.5) / height
        row = "".join(_FILL if s >= threshold else _EMPTY for s in samples)
        label = f"{ceiling * level / height:5.2f}W"
        rows.append(f"{label} |{row}|")
    duration = segments[-1].t_end if segments else 0.0
    axis = f"{'':6} +{'-' * width}+"
    time_line = f"{'':6}  0s{'':{max(width - 10, 1)}}{duration:.0f}s"
    out = [axis, *rows, axis, time_line]
    if title:
        out.insert(0, title)
    return "\n".join(out)
