"""Device simulation substrate.

Composes the storage and radio substrates into a mobile device with a
browser-rendering model and energy accounting, plus the metrics and
trace-replay harnesses the evaluation benchmarks are built on.
"""

from repro.sim.battery import Battery
from repro.sim.clock import SimClock
from repro.sim.browser import Browser, RenderModel
from repro.sim.device import DeviceConfig, MobileDevice
from repro.sim.metrics import MetricsCollector, QueryOutcome, ServiceSource

__all__ = [
    "Battery",
    "Browser",
    "DeviceConfig",
    "MetricsCollector",
    "MobileDevice",
    "QueryOutcome",
    "RenderModel",
    "ServiceSource",
    "SimClock",
]
