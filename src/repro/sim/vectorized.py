"""Vectorized replay engine: batch-evaluated cache service, bit-identical
to the scalar :class:`~repro.pocketsearch.engine.PocketSearchEngine` path.

The scalar harness serves one event at a time: each
``engine.serve_query`` call performs multiple MD5-based ``hash64``
lookups, builds dataclasses, and walks the hash-table/ranker/database
object graph.  All of that work is *deterministic arithmetic* over the
event stream — the cost model is pure page math, the miss cost is a
constant, and hit/miss classification is a membership function — so a
whole user's stream can be evaluated as numpy array operations plus a
small per-query "mini-sim" for ranking state.

Bit-identity, not approximation:

* every float is accumulated in exactly the scalar engine's association
  order (IEEE-754 addition is commutative but not associative, so the
  expressions here mirror the scalar code's left-to-right grouping);
* flash read costs are replicated from the page arithmetic of
  :class:`~repro.storage.filesystem.FlashFilesystem` /
  :class:`~repro.pocketsearch.database.ResultDatabase`;
* ranking-score evolution (Equations 1-2) is replayed per (user, query)
  group with the same ``math.exp`` decay and stable top-2 sort;
* outcomes are fed to the same :class:`MetricsCollector` in stream
  order, so bounded-mode reservoirs draw the identical RNG sequence.

Events that mutate cross-batch state — the nightly community refresh of
Section 6.2.2 — fall back to an exact scalar mirror of
:meth:`CacheUpdateServer.refresh_with_content` applied between
day-segments of the batch, including :class:`UpdatePatch` accounting and
database compaction costs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.logs.generator import SearchLog
from repro.logs.schema import UserClass
from repro.pocketsearch.content import CacheContent
from repro.pocketsearch.database import (
    DEFAULT_N_FILES,
    DIRECTORY_SCAN_S_PER_FILE,
    HEADER_ENTRY_BYTES,
    HEADER_PARSE_S_PER_ENTRY,
    CompactionResult,
)
from repro.pocketsearch.engine import (
    KB,
    MISC_LATENCY_S,
    RESULTS_PER_PAGE,
    _SOURCE_BY_RADIO,
)
from repro.pocketsearch.hashtable import QueryHashTable, hash64
from repro.pocketsearch.manager import CacheUpdateServer, UpdatePatch
from repro.pocketsearch.ranking import PersonalizedRanker
from repro.radio.energy import (
    isolated_request_components,
    isolated_request_latency,
)
from repro.radio.models import THREE_G
from repro.sim.browser import RADIO_SERP_BYTES, SERP_BYTES, Browser
from repro.sim.metrics import MetricsCollector, QueryOutcome, ServiceSource
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash

__all__ = [
    "EngineCostModel",
    "replay_one_user_vectorized",
    "replay_user_vectorized",
]

DAY_SECONDS = 24 * 3600


class EngineCostModel:
    """Constants of the default serving stack, pulled from the real models.

    Instantiating the same default objects the scalar path uses keeps the
    vectorized engine in lockstep with any future change to the model
    defaults (rather than hard-coding today's numbers).
    """

    def __init__(self) -> None:
        table = QueryHashTable()
        browser = Browser()
        flash = NandFlash()
        fs = FlashFilesystem(flash)
        server = CacheUpdateServer()

        self.lookup_s = table.lookup_latency_s
        self.results_per_entry = table.results_per_entry
        self.render_s = browser.model.render_seconds(SERP_BYTES)
        self.render_energy_j = browser.render_energy_j(self.render_s)
        self.base_power_w = 0.9  # PocketSearchEngine default
        self.misc_s = MISC_LATENCY_S
        self.top_k = RESULTS_PER_PAGE

        radio_latency = isolated_request_latency(
            THREE_G, 1 * KB, RADIO_SERP_BYTES, 0.35
        )
        parts = isolated_request_components(
            THREE_G, 1 * KB, RADIO_SERP_BYTES, 0.35
        )
        radio_energy = (parts.ramp_j + parts.transfer_j) + parts.tail_j
        self.miss_latency_s = (
            self.lookup_s + radio_latency
        ) + self.render_s
        self.miss_energy_j = (
            self.miss_latency_s * self.base_power_w + radio_energy
        ) + self.render_energy_j
        self.miss_source = _SOURCE_BY_RADIO[THREE_G.name]

        # Flash / database read-cost components.
        self.n_files = DEFAULT_N_FILES
        self.page_bytes = flash.geometry.page_bytes
        self.read_page_s = flash.read_page_s
        self.read_bw_bps = flash.read_bandwidth_bps
        self.read_page_energy_j = flash.read_page_energy_j
        self.energy_per_byte_j = flash.energy_per_byte_j
        self.open_s = fs.open_overhead_s
        self.open_j = fs.open_energy_j
        self.dir_scan_s = DIRECTORY_SCAN_S_PER_FILE * self.n_files
        self.header_entry_bytes = HEADER_ENTRY_BYTES
        self.header_parse_s = HEADER_PARSE_S_PER_ENTRY

        # Personalization decay factor (Equation 2), evaluated once: the
        # scalar ranker calls math.exp per click, which is deterministic.
        self.decay = math.exp(-PersonalizedRanker().decay_lambda)

        # Update-protocol constants (Section 5.4).
        self.retention_min_score = server.retention_min_score
        self.compaction_threshold = server.compaction_threshold
        self.header_len = QueryHashTable._HEADER.size
        self.entry_head_len = QueryHashTable._ENTRY_HEAD.size
        self.slot_len = QueryHashTable._SLOT.size

    def read_cost(self, offset: int, nbytes: int) -> Tuple[float, float]:
        """(latency, energy) of one positioned file read, scalar path."""
        page = self.page_bytes
        first = offset // page
        last = (offset + nbytes - 1) // page
        pages = last - first + 1
        moved = pages * page
        latency = (
            pages * self.read_page_s + moved / self.read_bw_bps
        ) + self.open_s
        energy = (
            pages * self.read_page_energy_j + moved * self.energy_per_byte_j
        ) + self.open_j
        return latency, energy

    def fetch_cost(
        self, entries: int, offset: int, nbytes: int
    ) -> Tuple[float, float]:
        """(latency, energy) of one database fetch, scalar path.

        Mirrors :meth:`ResultDatabase.fetch` exactly, including the
        skipped header read on an empty file.
        """
        latency = self.dir_scan_s
        energy = 0.0
        if entries > 0:
            h_lat, h_en = self.read_cost(0, entries * self.header_entry_bytes)
            latency += h_lat
            energy += h_en
        latency += entries * self.header_parse_s
        r_lat, r_en = self.read_cost(offset, nbytes)
        latency += r_lat
        energy += r_en
        return latency, energy

    def fetch_cost_arrays(
        self, entries: np.ndarray, offsets: np.ndarray, nbytes: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`fetch_cost` over int64 arrays.

        Every intermediate mirrors the scalar association order; adding a
        0.0 header term for empty files is exact (x + 0.0 == x for the
        finite non-negative costs involved), so results are bitwise equal
        to the scalar path.
        """
        page = self.page_bytes
        header_bytes = entries * self.header_entry_bytes
        h_pages = np.where(entries > 0, (header_bytes - 1) // page + 1, 0)
        h_moved = h_pages * page
        h_lat = (
            h_pages * self.read_page_s + h_moved / self.read_bw_bps
        ) + self.open_s
        h_en = (
            h_pages * self.read_page_energy_j
            + h_moved * self.energy_per_byte_j
        ) + self.open_j
        empty = entries == 0
        h_lat = np.where(empty, 0.0, h_lat)
        h_en = np.where(empty, 0.0, h_en)

        first = offsets // page
        last = (offsets + nbytes - 1) // page
        r_pages = last - first + 1
        r_moved = r_pages * page
        r_lat = (
            r_pages * self.read_page_s + r_moved / self.read_bw_bps
        ) + self.open_s
        r_en = (
            r_pages * self.read_page_energy_j
            + r_moved * self.energy_per_byte_j
        ) + self.open_j

        latency = (
            (self.dir_scan_s + h_lat) + entries * self.header_parse_s
        ) + r_lat
        energy = h_en + r_en
        return latency, energy

    def hit_cost_arrays(
        self, fetch_lat: np.ndarray, fetch_en: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Hit latency/energy from summed fetch costs (scalar grouping)."""
        latency = (
            (self.lookup_s + fetch_lat) + self.render_s
        ) + self.misc_s
        energy = (
            latency * self.base_power_w + fetch_en
        ) + self.render_energy_j
        return latency, energy


_COST_MODEL: Optional[EngineCostModel] = None


def _cost_model() -> EngineCostModel:
    global _COST_MODEL
    if _COST_MODEL is None:
        _COST_MODEL = EngineCostModel()
    return _COST_MODEL


def _canonical_ids(strings: List[str]):
    """(string -> first id) map plus an id -> canonical-id array.

    Two keys with identical text are one entry to the MD5-keyed hash
    table, so they must collapse to one canonical id.  The common case —
    all strings distinct — resolves at C speed; duplicates take a slow
    first-occurrence-wins pass.
    """
    n = len(strings)
    mapping = dict(zip(strings, range(n)))
    if len(mapping) == n:
        return mapping, np.arange(n, dtype=np.int64)
    mapping = {}
    canonical = np.empty(n, dtype=np.int64)
    for key, text in enumerate(strings):
        canonical[key] = mapping.setdefault(text, key)
    return mapping, canonical


class ReplayUniverse:
    """Per-(log, content, mode) immutable mirror of the initial cache.

    Maps the log's string universe into canonical integer ids (two query
    keys with the same string collapse to one id, exactly as their MD5
    hashes collide in the real hash table) and mirrors the community
    bulk-load: initial hash-table slots, result-database layout, and
    query registry.  Shared read-only across all users of a shard.
    """

    def __init__(
        self, log: SearchLog, content: Optional[CacheContent], mode: str
    ) -> None:
        self.costs = _cost_model()
        self.log = log
        self.mode = mode
        community = log.community
        self.n_queries = community.n_queries
        self.n_results = community.n_results

        # Canonical ids: first key with a given string wins, matching the
        # hash table keying entries by the string's hash.
        self._qid_of_str, self.qid_by_ckey = _canonical_ids(
            community.query_strings
        )
        self._rid_of_url, self.rid_by_ckey = _canonical_ids(
            community.result_urls
        )
        # Personal (unique) pair strings are mapped lazily: content almost
        # never references them, and the full pass over _unique_names is
        # measurable at paper scale.
        self._personal_mapped = False
        self._rb_of_rkey: Dict[int, int] = {}

        # Mirror of the community bulk-load (make_cache + load_community).
        self.slots0: Dict[int, List[List]] = {}
        self.db0: Dict[int, Tuple[int, int, int]] = {}
        self.file_sizes0 = [0] * self.costs.n_files
        self.file_entries0 = [0] * self.costs.n_files
        self.registry0: Dict[int, bool] = {}
        self._file_of: Dict[int, int] = {}
        self._qstr: Dict[int, str] = {}
        self._static_cost: Dict[int, Tuple[float, float]] = {}
        self._mapped: Dict[int, Tuple[CacheContent, List[Tuple]]] = {}
        from repro.sim.replay import CacheMode

        if mode == CacheMode.PERSONALIZATION_ONLY:
            content = None  # scalar make_cache never loads community here
        if content is not None:
            for qid, rid, score, record_bytes in self.map_content(content):
                self._load_pair(qid, rid, score, record_bytes)

    # -- construction helpers ------------------------------------------------

    def _load_pair(
        self, qid: int, rid: int, score: float, record_bytes: int
    ) -> None:
        if rid not in self.db0:
            file_index = self.file_of(rid)
            self.db0[rid] = (
                file_index, self.file_sizes0[file_index], record_bytes
            )
            self.file_sizes0[file_index] += (
                record_bytes + self.costs.header_entry_bytes
            )
            self.file_entries0[file_index] += 1
        _insert_slot(self.slots0.setdefault(qid, []), rid, score, False)
        self.registry0[qid] = True

    def map_content(self, content: CacheContent) -> List[Tuple]:
        """Content entries as (qid, rid, score, record_bytes) tuples.

        Cached per content object (daily-update experiments reuse each
        day's mined content across every user).
        """
        cached = self._mapped.get(id(content))
        if cached is not None and cached[0] is content:
            return cached[1]
        entries = []
        for entry in content.entries:
            qid = self._qid_of_str.get(entry.query)
            rid = self._rid_of_url.get(entry.url)
            if qid is None or rid is None:
                self._ensure_personal_maps()
                qid = self._qid_of_str.get(entry.query)
                rid = self._rid_of_url.get(entry.url)
            if qid is None or rid is None:
                raise ValueError(
                    "cache content refers to strings outside this log's "
                    "universe; vectorized replay requires content mined "
                    "from the replayed log"
                )
            entries.append((qid, rid, entry.score, entry.record_bytes))
        self._mapped[id(content)] = (content, entries)
        return entries

    def _ensure_personal_maps(self) -> None:
        """Extend the string maps with the log's unique (personal) pairs.

        Deferred until a content entry actually references one — cache
        content is community-dominated, and a full pass over the unique
        table is measurable at paper scale.
        """
        if self._personal_mapped:
            return
        self._personal_mapped = True
        for qkey, (text, url) in self.log._unique_names.items():
            self._qid_of_str.setdefault(text, int(qkey))
            rid = self.n_results + (int(qkey) - self.n_queries)
            self._rid_of_url.setdefault(url, rid)

    # -- key-space helpers ----------------------------------------------------

    def map_qkeys(self, qkeys: np.ndarray) -> np.ndarray:
        qid = qkeys.astype(np.int64, copy=True)
        mask = qid < self.n_queries
        if mask.any():
            qid[mask] = self.qid_by_ckey[qid[mask]]
        return qid

    def map_rkeys(self, rkeys: np.ndarray) -> np.ndarray:
        rid = rkeys.astype(np.int64, copy=True)
        mask = rid < self.n_results
        if mask.any():
            rid[mask] = self.rid_by_ckey[rid[mask]]
        return rid

    def record_bytes_of(self, rkeys: np.ndarray) -> np.ndarray:
        """Stored size per clicked result (community mined size, else 500).

        Resolved per distinct result key through a cache: community sizes
        are a computed property of ~1M records at paper scale, so an
        eager table would cost more than every replay that uses it.
        """
        records = self.log.community.result_records
        n_results = self.n_results
        cache = self._rb_of_rkey
        out = np.empty(len(rkeys), dtype=np.int64)
        for i, rkey in enumerate(rkeys.tolist()):
            rb = cache.get(rkey)
            if rb is None:
                rb = (
                    records[rkey].record_bytes if rkey < n_results else 500
                )
                cache[rkey] = rb
            out[i] = rb
        return out

    def file_of(self, rid: int) -> int:
        """Database file index of a result: hash64(url) % n_files."""
        cached = self._file_of.get(rid)
        if cached is None:
            cached = hash64(self.log.result_url(rid)) % self.costs.n_files
            self._file_of[rid] = cached
        return cached

    def qstr(self, qkey: int) -> str:
        cached = self._qstr.get(qkey)
        if cached is None:
            cached = self.log.query_string(qkey)
            self._qstr[qkey] = cached
        return cached


def _insert_slot(
    slots: List[List], rid: int, score: float, accessed: bool
) -> None:
    """Mirror of :meth:`QueryHashTable.insert` on a flat slot list."""
    for slot in slots:
        if slot[0] == rid:
            slot[1] = max(slot[1], score)
            slot[2] = slot[2] or accessed
            return
    slots.append([rid, score, accessed])


class _UserCacheState:
    """Mutable per-user cache mirror: slots, registry, result database.

    Two construction modes: a *full* deep copy (daily updates mutate
    global state) or a copy-on-write overlay over the shared
    :class:`ReplayUniverse` (the common no-update path, where only
    queries the user actually touches are ever copied).
    """

    __slots__ = (
        "universe", "full", "slots", "base_slots", "db", "base_db",
        "file_sizes", "file_entries", "garbage", "registry",
    )

    def __init__(self, universe: ReplayUniverse, full: bool) -> None:
        self.universe = universe
        self.full = full
        if full:
            self.slots = {
                qid: [list(slot) for slot in slots]
                for qid, slots in universe.slots0.items()
            }
            self.base_slots: Dict[int, List[List]] = {}
            self.db = dict(universe.db0)
            self.base_db: Dict[int, Tuple[int, int, int]] = {}
            self.registry = dict(universe.registry0)
        else:
            self.slots = {}
            self.base_slots = universe.slots0
            self.db = {}
            self.base_db = universe.db0
            self.registry = {}
        self.file_sizes = list(universe.file_sizes0)
        self.file_entries = list(universe.file_entries0)
        self.garbage = 0

    def has_query(self, qid: int) -> bool:
        return qid in self.slots or qid in self.base_slots

    def slots_of(self, qid: int) -> Optional[List[List]]:
        found = self.slots.get(qid)
        if found is not None:
            return found
        return self.base_slots.get(qid)

    def mutable_slots(self, qid: int) -> List[List]:
        found = self.slots.get(qid)
        if found is None:
            base = self.base_slots.get(qid)
            found = [list(slot) for slot in base] if base else []
            self.slots[qid] = found
        return found

    def contains_result(self, rid: int) -> bool:
        return rid in self.db or rid in self.base_db

    def locate(self, rid: int) -> Tuple[int, int, int]:
        found = self.db.get(rid)
        if found is not None:
            return found
        return self.base_db[rid]

    def add_result(self, rid: int, record_bytes: int) -> Tuple[int, int, int]:
        file_index = self.universe.file_of(rid)
        stored = (file_index, self.file_sizes[file_index], record_bytes)
        self.db[rid] = stored
        self.file_sizes[file_index] += (
            record_bytes + self.universe.costs.header_entry_bytes
        )
        self.file_entries[file_index] += 1
        return stored


# -- batch service ----------------------------------------------------------


def _serve_segment(
    state: _UserCacheState,
    qid: np.ndarray,
    rid: np.ndarray,
    rkeys: np.ndarray,
    personalized: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batch-serve one refresh-free segment of a user's stream.

    Returns (hit, latency, energy) arrays.  Mutates ``state`` exactly as
    the scalar engine's click path would (personalized mode only).
    """
    costs = state.universe.costs
    n = len(qid)
    unique_q, first_q_idx, inv_q = np.unique(
        qid, return_index=True, return_inverse=True
    )
    present0 = np.fromiter(
        (state.has_query(int(u)) for u in unique_q),
        dtype=bool,
        count=len(unique_q),
    )
    if personalized:
        first_mask = np.zeros(n, dtype=bool)
        first_mask[first_q_idx] = True
        hit = present0[inv_q] | ~first_mask
    else:
        hit = present0[inv_q]

    if not personalized:
        latency = np.full(n, costs.miss_latency_s)
        energy = np.full(n, costs.miss_energy_j)
        static = state.universe._static_cost if not state.full else None
        for g, u in enumerate(unique_q.tolist()):
            if not present0[g]:
                continue
            cost = static.get(u) if static is not None else None
            if cost is None:
                cost = _static_hit_cost(state, u)
                if static is not None:
                    static[u] = cost
            rows = inv_q == g
            latency[rows] = cost[0]
            energy[rows] = cost[1]
        return hit, latency, energy

    # Personalization on: the click path adds clicked results to the
    # database (first click of a result not yet stored).
    record_bytes = state.universe.record_bytes_of(rkeys)
    _unique_r, first_r_idx = np.unique(rid, return_index=True)
    added_rows = sorted(
        int(i) for i in first_r_idx.tolist()
        if not state.contains_result(int(rid[i]))
    )
    n_files = costs.n_files
    sizes_delta = np.zeros((n + 1, n_files), dtype=np.int64)
    counts_delta = np.zeros((n + 1, n_files), dtype=np.int64)
    add_files = [state.universe.file_of(int(rid[i])) for i in added_rows]
    for i, file_index in zip(added_rows, add_files):
        sizes_delta[i + 1, file_index] = (
            int(record_bytes[i]) + costs.header_entry_bytes
        )
        counts_delta[i + 1, file_index] = 1
    base_sizes = np.asarray(state.file_sizes, dtype=np.int64)
    base_counts = np.asarray(state.file_entries, dtype=np.int64)
    sizes_before = base_sizes + np.cumsum(sizes_delta, axis=0)[:n]
    counts_before = base_counts + np.cumsum(counts_delta, axis=0)[:n]
    # Register the adds (stream order keeps the database's insertion
    # order identical to the scalar path, which compaction depends on).
    for i, file_index in zip(added_rows, add_files):
        state.db[int(rid[i])] = (
            file_index,
            int(sizes_before[i, file_index]),
            int(record_bytes[i]),
        )
    state.file_sizes = (
        base_sizes + np.sum(sizes_delta, axis=0)
    ).tolist()
    state.file_entries = (
        base_counts + np.sum(counts_delta, axis=0)
    ).tolist()

    # Ranking mini-sim per query group: stable top-2 selection before
    # each click, then the Equations (1)-(2) score updates.
    top1 = np.full(n, -1, dtype=np.int64)
    top2 = np.full(n, -1, dtype=np.int64)
    decay = costs.decay
    order = np.argsort(inv_q, kind="stable")
    counts = np.bincount(inv_q, minlength=len(unique_q))
    boundaries = np.cumsum(counts)
    start = 0
    rid_list = rid.tolist()
    hit_list = hit.tolist()
    for g, stop in enumerate(boundaries.tolist()):
        rows = order[start:stop]
        start = stop
        slots = state.mutable_slots(int(unique_q[g]))
        for i in rows.tolist():
            if hit_list[i]:
                if len(slots) == 1:
                    top1[i] = slots[0][0]
                elif len(slots) == 2:
                    a, b = slots
                    if b[1] > a[1]:
                        top1[i], top2[i] = b[0], a[0]
                    else:
                        top1[i], top2[i] = a[0], b[0]
                else:
                    ranked = sorted(
                        slots, key=lambda slot: slot[1], reverse=True
                    )
                    top1[i] = ranked[0][0]
                    top2[i] = ranked[1][0]
            clicked = rid_list[i]
            clicked_slot = None
            for slot in slots:
                if slot[0] == clicked:
                    clicked_slot = slot
                else:
                    slot[1] = slot[1] * decay
            if clicked_slot is not None:
                clicked_slot[1] = clicked_slot[1] + 1.0
                clicked_slot[2] = True
            else:
                slots.append([clicked, 1.0, True])
    for i in sorted(int(j) for j in first_q_idx.tolist()):
        state.registry[int(qid[i])] = True

    # Vectorized fetch costing over the hit rows.
    latency = np.full(n, costs.miss_latency_s)
    energy = np.full(n, costs.miss_energy_j)
    hit_rows = np.flatnonzero(hit)
    if len(hit_rows):
        n_hits = len(hit_rows)
        f1 = np.empty(n_hits, dtype=np.int64)
        o1 = np.empty(n_hits, dtype=np.int64)
        b1 = np.empty(n_hits, dtype=np.int64)
        f2 = np.zeros(n_hits, dtype=np.int64)
        o2 = np.zeros(n_hits, dtype=np.int64)
        b2 = np.zeros(n_hits, dtype=np.int64)
        locate = state.locate
        top1_list = top1.tolist()
        top2_list = top2.tolist()
        for k, i in enumerate(hit_rows.tolist()):
            f1[k], o1[k], b1[k] = locate(top1_list[i])
            second = top2_list[i]
            if second >= 0:
                f2[k], o2[k], b2[k] = locate(second)
        e1 = counts_before[hit_rows, f1]
        lat1, en1 = costs.fetch_cost_arrays(e1, o1, b1)
        has2 = top2[hit_rows] >= 0
        e2 = counts_before[hit_rows, f2]
        lat2, en2 = costs.fetch_cost_arrays(e2, o2, b2)
        fetch_lat = lat1 + np.where(has2, lat2, 0.0)
        fetch_en = en1 + np.where(has2, en2, 0.0)
        hit_lat, hit_en = costs.hit_cost_arrays(fetch_lat, fetch_en)
        latency[hit_rows] = hit_lat
        energy[hit_rows] = hit_en
    return hit, latency, energy


def _static_hit_cost(
    state: _UserCacheState, qid: int
) -> Tuple[float, float]:
    """Hit cost of a query whose slots and database are static.

    Community-only mode never mutates scores or the database between
    refreshes, so each cached query has one constant (latency, energy).
    """
    costs = state.universe.costs
    slots = state.slots_of(qid)
    ranked = sorted(slots, key=lambda slot: slot[1], reverse=True)
    fetch_lat = 0.0
    fetch_en = 0.0
    for slot in ranked[: costs.top_k]:
        file_index, offset, record_bytes = state.locate(slot[0])
        lat, en = costs.fetch_cost(
            state.file_entries[file_index], offset, record_bytes
        )
        fetch_lat += lat
        fetch_en += en
    latency = ((costs.lookup_s + fetch_lat) + costs.render_s) + costs.misc_s
    energy = (
        latency * costs.base_power_w + fetch_en
    ) + costs.render_energy_j
    return latency, energy


# -- daily-update fallback seam ---------------------------------------------


def _serialized_table_len(state: _UserCacheState, costs) -> int:
    """Wire-format length of the mirrored hash table (Section 5.4)."""
    width = costs.results_per_entry
    n_slots = 0
    n_entries = 0
    for slots in state.slots.values():
        n_slots += len(slots)
        n_entries += -(-len(slots) // width)
    return (
        costs.header_len
        + costs.entry_head_len * n_entries
        + costs.slot_len * n_slots
    )


def _refresh_state(
    state: _UserCacheState, entries: List[Tuple]
) -> UpdatePatch:
    """Exact mirror of :meth:`CacheUpdateServer.refresh_with_content`.

    Operates on the user's state between batch segments — the scalar
    fallback seam for events that mutate cross-batch state.
    """
    costs = state.universe.costs
    bytes_uploaded = _serialized_table_len(state, costs)

    # Step 2: prune never-accessed and decayed pairs.
    pairs_removed = 0
    retained = set()
    removals: Dict[int, set] = {}
    for qid in list(state.registry):
        slots = state.slots.get(qid)
        if not slots:
            continue
        for rid, score, accessed in slots:
            if not accessed or score < costs.retention_min_score:
                removals.setdefault(qid, set()).add(rid)
                pairs_removed += 1
            else:
                retained.add((qid, rid))
    for qid, dropped in removals.items():
        kept = [slot for slot in state.slots[qid] if slot[0] not in dropped]
        if kept:
            state.slots[qid] = kept
        else:
            del state.slots[qid]

    # Step 3: merge the fresh popular set (max score wins).
    pairs_added = 0
    results_added = 0
    patch_files: Dict[int, int] = {}
    for qid, rid, score, record_bytes in entries:
        if rid not in state.db:
            stored = state.add_result(rid, record_bytes)
            results_added += 1
            patch_files[stored[0]] = (
                patch_files.get(stored[0], 0)
                + record_bytes
                + costs.header_entry_bytes
            )
        if (qid, rid) not in retained:
            pairs_added += 1
        _insert_slot(state.slots.setdefault(qid, []), rid, score, False)
        state.registry[qid] = True

    # Step 4: garbage-collect the registry and database, then compact.
    queries_pruned = 0
    for qid in list(state.registry):
        if not state.slots.get(qid):
            del state.registry[qid]
            queries_pruned += 1
    referenced = set()
    for slots in state.slots.values():
        for slot in slots:
            referenced.add(slot[0])
    results_removed = 0
    for rid in list(state.db):
        if rid not in referenced:
            file_index, _offset, record_bytes = state.db.pop(rid)
            state.file_entries[file_index] -= 1
            state.garbage += record_bytes + costs.header_entry_bytes
            results_removed += 1
    compacted = None
    if state.garbage > costs.compaction_threshold * max(
        sum(state.file_sizes), 1
    ):
        compacted = _compact_state(state)

    bytes_downloaded = _serialized_table_len(state, costs) + sum(
        patch_files.values()
    )
    return UpdatePatch(
        bytes_uploaded=bytes_uploaded,
        bytes_downloaded=bytes_downloaded,
        pairs_added=pairs_added,
        pairs_removed=pairs_removed,
        results_added=results_added,
        results_removed=results_removed,
        queries_pruned=queries_pruned,
        compaction=compacted,
        patch_files=patch_files,
    )


def _compact_state(state: _UserCacheState) -> CompactionResult:
    """Exact mirror of :meth:`ResultDatabase.compact` on the state."""
    costs = state.universe.costs
    live = sorted(state.db.items(), key=lambda kv: (kv[1][0], kv[1][1]))
    latency = 0.0
    energy = 0.0
    for _rid, (_file, offset, record_bytes) in live:
        lat, en = costs.read_cost(offset, record_bytes)
        latency += lat
        energy += en
    reclaimed = state.garbage
    state.garbage = 0
    old = list(state.db.items())  # preserves _index insertion order
    state.file_sizes = [0] * costs.n_files
    state.file_entries = [0] * costs.n_files
    state.db = {}
    for rid, (_file, _offset, record_bytes) in old:
        state.add_result(rid, record_bytes)
        latency += costs.open_s
        energy += costs.open_j
    return CompactionResult(
        reclaimed_bytes=reclaimed,
        live_results=len(old),
        latency_s=latency,
        energy_j=energy,
    )


# -- user-level entry points -------------------------------------------------


def _replay_user_arrays(
    universe: ReplayUniverse,
    events: np.ndarray,
    mode: str,
    daily_contents: Optional[List[CacheContent]],
    t_start: float,
    patches_out: Optional[List[UpdatePatch]] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(hit, latency, energy) arrays of one user's replay."""
    from repro.sim.replay import CacheMode

    personalized = mode != CacheMode.COMMUNITY_ONLY
    n = len(events)
    if n == 0:
        empty = np.zeros(0)
        return empty.astype(bool), empty, empty
    qid = universe.map_qkeys(events["query_key"])
    rid = universe.map_rkeys(events["result_key"])
    rkeys = events["result_key"]

    if not daily_contents:
        state = _UserCacheState(universe, full=False)
        return _serve_segment(state, qid, rid, rkeys, personalized)

    # Daily updates: split the stream into day segments, applying the
    # refresh mirror between them (including skipped days, in order),
    # exactly as the scalar loop does.
    mapped = [universe.map_content(c) for c in daily_contents]
    state = _UserCacheState(universe, full=True)
    timestamps = events["timestamp"]
    event_day = np.minimum(
        ((timestamps - t_start) // DAY_SECONDS).astype(np.int64),
        len(daily_contents) - 1,
    )
    hits: List[np.ndarray] = []
    lats: List[np.ndarray] = []
    ens: List[np.ndarray] = []
    day = 0
    boundaries = np.flatnonzero(np.diff(event_day)) + 1
    starts = np.concatenate(([0], boundaries)).tolist()
    stops = np.concatenate((boundaries, [n])).tolist()
    for lo, hi in zip(starts, stops):
        segment_day = int(event_day[lo])
        while day <= segment_day:
            patch = _refresh_state(state, mapped[day])
            if patches_out is not None:
                patches_out.append(patch)
            day += 1
        hit, lat, en = _serve_segment(
            state, qid[lo:hi], rid[lo:hi], rkeys[lo:hi], personalized
        )
        hits.append(hit)
        lats.append(lat)
        ens.append(en)
    return np.concatenate(hits), np.concatenate(lats), np.concatenate(ens)


def _emit_outcomes(
    universe: ReplayUniverse,
    events: np.ndarray,
    hit: np.ndarray,
    latency: np.ndarray,
    energy: np.ndarray,
) -> List[QueryOutcome]:
    """Materialize per-event outcomes in stream order.

    Outcomes are built by populating each instance's ``__dict__``
    directly: the frozen-dataclass ``__init__`` routes every field
    through ``object.__setattr__``, which profiles as the single largest
    per-event cost in the batch path.  Field values and equality
    semantics are unchanged (dataclass ``__eq__`` compares fields).
    """
    cache_source = ServiceSource.CACHE
    miss_source = universe.costs.miss_source
    qstr = universe.qstr
    new = object.__new__
    out = []
    append = out.append
    for qkey, h, lat, en, ts, nav in zip(
        events["query_key"].tolist(),
        hit.tolist(),
        latency.tolist(),
        energy.tolist(),
        events["timestamp"].tolist(),
        events["navigational"].tolist(),
    ):
        outcome = new(QueryOutcome)
        outcome.__dict__.update(
            query=qstr(qkey),
            hit=h,
            source=cache_source if h else miss_source,
            latency_s=lat,
            energy_j=en,
            timestamp=ts,
            navigational=nav,
        )
        append(outcome)
    return out


# Process-level caches: shards replay many users against the same log /
# content, and the mirrors are immutable, so they are built once per
# worker.  Strong references are kept alongside so id() keys can never
# alias a collected object.
_UNIVERSE_CACHE: Dict[Tuple[int, int, str], ReplayUniverse] = {}
_BATCH_CACHE: Dict[Tuple[int, float, float, int], object] = {}
_CACHE_LIMIT = 8


def _universe_for(
    log: SearchLog, content: Optional[CacheContent], mode: str
) -> ReplayUniverse:
    key = (id(log), id(content), mode)
    found = _UNIVERSE_CACHE.get(key)
    if found is not None and found.log is log:
        return found
    if len(_UNIVERSE_CACHE) >= _CACHE_LIMIT:
        _UNIVERSE_CACHE.clear()
    universe = ReplayUniverse(log, content, mode)
    _UNIVERSE_CACHE[key] = universe
    return universe


def _batch_for(log: SearchLog, t_start: float, t_end: float, seed: int):
    from repro.logs.columnar import ColumnarEventBatch

    key = (id(log), t_start, t_end, seed)
    found = _BATCH_CACHE.get(key)
    if found is not None and found[0] is log:
        return found[1]
    if len(_BATCH_CACHE) >= _CACHE_LIMIT:
        _BATCH_CACHE.clear()
    batch = ColumnarEventBatch.from_log(
        log, t_start=t_start, t_end=t_end, seed=seed
    )
    _BATCH_CACHE[key] = (log, batch)
    return batch


def replay_user_vectorized(
    log: SearchLog,
    content: Optional[CacheContent],
    daily_contents: Optional[List[CacheContent]],
    mode: str,
    user_id: int,
    t_start: float,
    t_end: float,
    metrics: Optional[MetricsCollector] = None,
    seed: int = 0,
    collect_patches: bool = False,
):
    """Vectorized replay of one user; returns (metrics, patches).

    ``patches`` is the per-refresh :class:`UpdatePatch` list when
    ``collect_patches`` and daily contents are given, else ``None`` —
    the hook the fallback-seam tests use to compare update accounting
    against the scalar :class:`CacheUpdateServer`.
    """
    universe = _universe_for(log, content, mode)
    batch = _batch_for(log, t_start, t_end, seed)
    events = batch.for_user(user_id)
    patches: Optional[List[UpdatePatch]] = (
        [] if (collect_patches and daily_contents) else None
    )
    hit, latency, energy = _replay_user_arrays(
        universe, events, mode, daily_contents, t_start, patches
    )
    if metrics is None:
        metrics = MetricsCollector()
    metrics.extend(_emit_outcomes(universe, events, hit, latency, energy))
    return metrics, patches


def replay_one_user_vectorized(
    log: SearchLog,
    content: Optional[CacheContent],
    daily_contents: List[CacheContent],
    config,
    mode: str,
    user_class: UserClass,
    user_id: int,
    t_start: float,
    t_end: float,
):
    """Vectorized counterpart of :func:`repro.sim.replay.replay_one_user`."""
    from repro.sim.replay import CacheMode, UserReplayResult, _new_collector

    use_daily = (
        config.daily_updates and mode != CacheMode.PERSONALIZATION_ONLY
    )
    metrics = _new_collector(config, user_id)
    replay_user_vectorized(
        log,
        content,
        daily_contents if use_daily else None,
        mode,
        user_id,
        t_start,
        t_end,
        metrics=metrics,
        seed=config.seed,
    )
    return UserReplayResult(
        user_id=user_id, user_class=user_class, metrics=metrics
    )


def clear_caches() -> None:
    """Drop the process-level universe/batch caches (test hygiene)."""
    _UNIVERSE_CACHE.clear()
    _BATCH_CACHE.clear()
