"""The simulated mobile device.

Integrates the memory hierarchy, flash filesystem, radio links, browser,
and an interaction-power model into one object that services (whether a
query is served locally or over a radio is decided by the cloudlet layered
on top, e.g. :class:`repro.pocketsearch.engine.PocketSearchEngine`).

Energy accounting follows the paper's measurement setup (Figure 16): while
the user is being served, the device draws a *base* power (screen + SoC,
~900 mW on the Xperia X1a), and the radio adds its own state-dependent
power on top — which is why a cache hit at ~900 mW for 0.4 s beats a 3G
query at ~1500 mW for several seconds by more in energy than in time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.radio.models import RadioProfile, THREE_G, EDGE, WIFI_80211G
from repro.radio.states import RadioLink, RequestResult
from repro.sim.browser import Browser, RADIO_SERP_BYTES, SERP_BYTES
from repro.sim.clock import SimClock
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash
from repro.storage.hierarchy import MemoryHierarchy

KB = 1024


@dataclass(frozen=True)
class DeviceConfig:
    """Tunable device parameters."""

    base_power_w: float = 0.9
    default_radio: str = THREE_G.name
    query_bytes_up: int = 1 * KB
    serp_bytes_down: int = RADIO_SERP_BYTES
    server_time_s: float = 0.35

    def __post_init__(self) -> None:
        if self.base_power_w < 0:
            raise ValueError("base_power_w must be non-negative")
        if self.query_bytes_up < 0 or self.serp_bytes_down < 0:
            raise ValueError("transfer sizes must be non-negative")


@dataclass(frozen=True)
class RadioServiceResult:
    """Latency/energy of one radio-served request, including base power."""

    latency_s: float
    energy_j: float
    radio: str
    woke: bool


class MobileDevice:
    """A smartphone with storage, radios, a browser, and energy accounting."""

    def __init__(
        self,
        config: DeviceConfig = DeviceConfig(),
        hierarchy: Optional[MemoryHierarchy] = None,
        browser: Optional[Browser] = None,
        radios: Optional[Dict[str, RadioLink]] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy or MemoryHierarchy()
        self.browser = browser or Browser()
        self.clock = clock or SimClock()
        if radios is None:
            radios = {
                p.name: RadioLink(p) for p in (THREE_G, EDGE, WIFI_80211G)
            }
        self.radios = radios
        flash = self.hierarchy.data_tier.device
        if not isinstance(flash, NandFlash):
            raise TypeError("hierarchy data tier must be NandFlash")
        self.filesystem = FlashFilesystem(flash)
        self.total_energy_j = 0.0

    # -- energy accounting ---------------------------------------------------

    def account_interaction(self, duration_s: float, extra_j: float = 0.0) -> float:
        """Charge base power for ``duration_s`` plus component energy.

        Returns the total energy charged.
        """
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if extra_j < 0:
            raise ValueError("extra_j must be non-negative")
        energy = duration_s * self.config.base_power_w + extra_j
        self.total_energy_j += energy
        return energy

    # -- radio path ----------------------------------------------------------

    def radio_link(self, name: Optional[str] = None) -> RadioLink:
        name = name or self.config.default_radio
        try:
            return self.radios[name]
        except KeyError:
            raise KeyError(
                f"device has no radio {name!r}; available: {sorted(self.radios)}"
            ) from None

    def radio_request(
        self,
        radio: Optional[str] = None,
        bytes_up: Optional[int] = None,
        bytes_down: Optional[int] = None,
        server_s: Optional[float] = None,
        advance_clock: bool = True,
    ) -> RadioServiceResult:
        """Issue one request over a radio and account its energy.

        The returned energy covers base device power for the request
        duration plus the radio's wake+active energy.  (Tail energy is
        accrued on the link's timeline and can be drained separately for
        trace experiments; for per-query accounting use
        :func:`repro.radio.energy.isolated_request_energy`.)
        """
        link = self.radio_link(radio)
        result: RequestResult = link.request(
            now=self.clock.now,
            bytes_up=self.config.query_bytes_up if bytes_up is None else bytes_up,
            bytes_down=(
                self.config.serp_bytes_down if bytes_down is None else bytes_down
            ),
            server_s=self.config.server_time_s if server_s is None else server_s,
        )
        profile: RadioProfile = link.profile
        radio_energy = 0.0
        if result.woke:
            radio_energy += profile.wakeup_s * profile.ramp_power_w
        active_s = result.latency_s - (profile.wakeup_s if result.woke else 0.0)
        radio_energy += active_s * profile.active_power_w
        energy = self.account_interaction(result.latency_s, radio_energy)
        if advance_clock:
            self.clock.advance(result.latency_s)
        return RadioServiceResult(
            latency_s=result.latency_s,
            energy_j=energy,
            radio=link.profile.name,
            woke=result.woke,
        )

    # -- browser path ------------------------------------------------------------

    def render_page(self, page_bytes: int = SERP_BYTES) -> tuple:
        """Render a page; returns (latency_s, energy_j) and advances clock."""
        render_s = self.browser.render(page_bytes)
        energy = self.account_interaction(
            render_s, self.browser.render_energy_j(render_s)
        )
        self.clock.advance(render_s)
        return render_s, energy
