"""Latency / energy / hit-rate metric aggregation for replay experiments.

Two storage modes, one interface:

* **exact** (default) — every :class:`QueryOutcome` is retained;
  aggregates and percentiles are computed from the full list.
* **bounded** (``MetricsCollector(bounded=True)``) — outcomes are folded
  into O(1)-memory streaming state (counts, sums, a reservoir-backed
  :class:`~repro.obs.registry.StreamingHistogram` for latency, and
  per-bucket hit counts for time windows), so replays over thousands of
  users never hold per-query objects.  Percentiles become estimates
  (exact at q=0/q=100); ``window()`` boundaries are resolved at
  ``window_bucket_s`` granularity.

Empty-state contract: counting aggregates (``count``, ``hits``,
``total_*``) are 0 and ``hit_rate`` is 0.0 on an empty collector, while
*undefined* statistics — ``mean_latency_s``, ``mean_energy_j``, and
``latency_percentile`` — return ``nan`` rather than raising, so callers
can aggregate sparse user buckets without guarding every access.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.obs.registry import StreamingHistogram

#: Default bounded-mode window resolution: one day of simulated time.
DEFAULT_WINDOW_BUCKET_S = 24 * 3600.0

_NAN = float("nan")


class ServiceSource(Enum):
    """How a query was ultimately served."""

    CACHE = "cache"
    RADIO_3G = "3g"
    RADIO_EDGE = "edge"
    RADIO_WIFI = "802.11g"

    @property
    def is_local(self) -> bool:
        return self is ServiceSource.CACHE


@dataclass(frozen=True)
class QueryOutcome:
    """The measured outcome of serving one query."""

    query: str
    hit: bool
    source: ServiceSource
    latency_s: float
    energy_j: float
    timestamp: float = 0.0
    navigational: Optional[bool] = None


@dataclass
class MetricsCollector:
    """Accumulates :class:`QueryOutcome` records and computes aggregates.

    Args:
        outcomes: pre-existing outcome list (exact mode only).
        bounded: fold outcomes into streaming state instead of retaining
            them (see module docstring for the accuracy trade-offs).
        reservoir_size: latency-histogram reservoir size in bounded mode.
        window_bucket_s: time-bucket width for bounded ``window()``.
        reservoir_seed: seed of the bounded-mode latency reservoir.
            ``None`` keeps the histogram's fixed default; the replay
            harness derives one per user (keyed by user id) so reservoir
            contents are reproducible independently of which worker
            process or shard replays the user.
    """

    outcomes: List[QueryOutcome] = field(default_factory=list)
    bounded: bool = False
    reservoir_size: int = 1024
    window_bucket_s: float = DEFAULT_WINDOW_BUCKET_S
    reservoir_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window_bucket_s <= 0:
            raise ValueError(
                f"window_bucket_s must be positive, got {self.window_bucket_s}"
            )
        self._count = 0
        self._hits = 0
        self._latency_total = 0.0
        self._energy_total = 0.0
        self._nav_hits = 0
        self._flagged_hits = 0  # hits with a non-None navigational flag
        self._latency_hist: Optional[StreamingHistogram] = None
        self._buckets: Dict[int, List[int]] = {}  # bucket -> [count, hits]
        if self.bounded:
            if self.reservoir_seed is None:
                self._latency_hist = StreamingHistogram(
                    reservoir_size=self.reservoir_size
                )
            else:
                self._latency_hist = StreamingHistogram(
                    reservoir_size=self.reservoir_size,
                    seed=self.reservoir_seed,
                )
            if self.outcomes:
                preload, self.outcomes = self.outcomes, []
                for outcome in preload:
                    self.record(outcome)

    # -- recording ----------------------------------------------------------

    def record(self, outcome: QueryOutcome) -> None:
        if not self.bounded:
            self.outcomes.append(outcome)
            return
        self._count += 1
        self._latency_total += outcome.latency_s
        self._energy_total += outcome.energy_j
        self._latency_hist.add(outcome.latency_s)
        bucket = self._buckets.setdefault(
            int(outcome.timestamp // self.window_bucket_s), [0, 0]
        )
        bucket[0] += 1
        if outcome.hit:
            self._hits += 1
            bucket[1] += 1
            if outcome.navigational is not None:
                self._flagged_hits += 1
                if outcome.navigational:
                    self._nav_hits += 1

    def extend(self, outcomes: List[QueryOutcome]) -> None:
        if not self.bounded:
            self.outcomes.extend(outcomes)
            return
        for outcome in outcomes:
            self.record(outcome)

    def merge(self, other: "MetricsCollector") -> None:
        """Fold another collector's outcomes into this one.

        A bounded collector can absorb either mode (absorbing an exact
        collector replays its outcome list; absorbing a bounded one
        combines streaming state, with the reservoir merge documented in
        :meth:`StreamingHistogram.merge`).  An exact collector can only
        absorb another exact collector — the per-outcome records a
        bounded source discarded cannot be reconstructed.
        """
        if not self.bounded:
            if other.bounded:
                raise ValueError(
                    "cannot merge a bounded collector into an exact one; "
                    "merge in the other direction"
                )
            self.outcomes.extend(other.outcomes)
            return
        if not other.bounded:
            self.extend(other.outcomes)
            return
        self._count += other._count
        self._hits += other._hits
        self._latency_total += other._latency_total
        self._energy_total += other._energy_total
        self._nav_hits += other._nav_hits
        self._flagged_hits += other._flagged_hits
        self._latency_hist.merge(other._latency_hist)
        for bucket_id, (count, hits) in other._buckets.items():
            bucket = self._buckets.setdefault(bucket_id, [0, 0])
            bucket[0] += count
            bucket[1] += hits

    # -- aggregates ---------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count if self.bounded else len(self.outcomes)

    @property
    def hits(self) -> int:
        if self.bounded:
            return self._hits
        return sum(1 for o in self.outcomes if o.hit)

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from the cache (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.hits / self.count

    @property
    def mean_latency_s(self) -> float:
        """Mean per-query latency (``nan`` when empty)."""
        if self.count == 0:
            return _NAN
        return self.total_latency_s / self.count

    @property
    def mean_energy_j(self) -> float:
        """Mean per-query energy (``nan`` when empty)."""
        if self.count == 0:
            return _NAN
        return self.total_energy_j / self.count

    @property
    def total_energy_j(self) -> float:
        if self.bounded:
            return self._energy_total
        return sum(o.energy_j for o in self.outcomes)

    @property
    def total_latency_s(self) -> float:
        if self.bounded:
            return self._latency_total
        return sum(o.latency_s for o in self.outcomes)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] (``nan`` when empty).

        Exact (nearest-rank) in exact mode; in bounded mode a reservoir
        estimate, except q=0 and q=100 which report the exact extremes.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return _NAN
        if self.bounded:
            return self._latency_hist.quantile(q)
        ordered = sorted(o.latency_s for o in self.outcomes)
        rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
        return ordered[rank]

    def hit_rate_by(self, predicate) -> float:
        """Hit rate restricted to outcomes matching ``predicate``.

        Exact mode only: bounded collectors do not retain outcomes.
        """
        self._require_exact("hit_rate_by")
        subset = [o for o in self.outcomes if predicate(o)]
        if not subset:
            return 0.0
        return sum(1 for o in subset if o.hit) / len(subset)

    def hit_breakdown_navigational(self) -> Dict[str, float]:
        """Of all cache hits, the fraction that were navigational queries.

        Outcomes without a navigational flag are excluded.  Reproduces the
        split of Figure 19.
        """
        if self.bounded:
            flagged, nav = self._flagged_hits, self._nav_hits
        else:
            hits = [
                o
                for o in self.outcomes
                if o.hit and o.navigational is not None
            ]
            flagged, nav = len(hits), sum(1 for o in hits if o.navigational)
        if not flagged:
            return {"navigational": 0.0, "non_navigational": 0.0}
        return {
            "navigational": nav / flagged,
            "non_navigational": 1 - nav / flagged,
        }

    def window(self, t_start: float, t_end: float) -> "MetricsCollector":
        """Sub-collector of outcomes with timestamp in [t_start, t_end).

        Exact mode filters outcomes directly (start inclusive, end
        exclusive).  Bounded mode returns only the whole
        ``window_bucket_s`` buckets contained in the interval, carrying
        count/hit-rate aggregates; latency/energy statistics of a bounded
        window are ``nan``/0 because per-bucket distributions are not
        retained.  Boundaries aligned to the bucket width are therefore
        exact in both modes.
        """
        if not self.bounded:
            sub = MetricsCollector()
            sub.extend(
                [o for o in self.outcomes if t_start <= o.timestamp < t_end]
            )
            return sub
        sub = MetricsCollector(
            bounded=True,
            reservoir_size=self.reservoir_size,
            window_bucket_s=self.window_bucket_s,
            reservoir_seed=self.reservoir_seed,
        )
        width = self.window_bucket_s
        for bucket_id, (count, hits) in self._buckets.items():
            if bucket_id * width >= t_start and (bucket_id + 1) * width <= t_end:
                sub._buckets[bucket_id] = [count, hits]
                sub._count += count
                sub._hits += hits
        return sub

    def _require_exact(self, operation: str) -> None:
        if self.bounded:
            raise RuntimeError(
                f"{operation} requires per-outcome records; this collector "
                "is bounded (bounded=True) and only keeps streaming aggregates"
            )
