"""Latency / energy / hit-rate metric aggregation for replay experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class ServiceSource(Enum):
    """How a query was ultimately served."""

    CACHE = "cache"
    RADIO_3G = "3g"
    RADIO_EDGE = "edge"
    RADIO_WIFI = "802.11g"

    @property
    def is_local(self) -> bool:
        return self is ServiceSource.CACHE


@dataclass(frozen=True)
class QueryOutcome:
    """The measured outcome of serving one query."""

    query: str
    hit: bool
    source: ServiceSource
    latency_s: float
    energy_j: float
    timestamp: float = 0.0
    navigational: Optional[bool] = None


@dataclass
class MetricsCollector:
    """Accumulates :class:`QueryOutcome` records and computes aggregates."""

    outcomes: List[QueryOutcome] = field(default_factory=list)

    def record(self, outcome: QueryOutcome) -> None:
        self.outcomes.append(outcome)

    def extend(self, outcomes: List[QueryOutcome]) -> None:
        self.outcomes.extend(outcomes)

    # -- aggregates ---------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.outcomes)

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.hit)

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from the cache (0 when empty)."""
        if not self.outcomes:
            return 0.0
        return self.hits / len(self.outcomes)

    @property
    def mean_latency_s(self) -> float:
        self._require_data()
        return sum(o.latency_s for o in self.outcomes) / len(self.outcomes)

    @property
    def mean_energy_j(self) -> float:
        self._require_data()
        return sum(o.energy_j for o in self.outcomes) / len(self.outcomes)

    @property
    def total_energy_j(self) -> float:
        return sum(o.energy_j for o in self.outcomes)

    @property
    def total_latency_s(self) -> float:
        return sum(o.latency_s for o in self.outcomes)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100] (nearest-rank)."""
        self._require_data()
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(o.latency_s for o in self.outcomes)
        rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
        return ordered[rank]

    def hit_rate_by(self, predicate) -> float:
        """Hit rate restricted to outcomes matching ``predicate``."""
        subset = [o for o in self.outcomes if predicate(o)]
        if not subset:
            return 0.0
        return sum(1 for o in subset if o.hit) / len(subset)

    def hit_breakdown_navigational(self) -> Dict[str, float]:
        """Of all cache hits, the fraction that were navigational queries.

        Outcomes without a navigational flag are excluded.  Reproduces the
        split of Figure 19.
        """
        hits = [
            o for o in self.outcomes if o.hit and o.navigational is not None
        ]
        if not hits:
            return {"navigational": 0.0, "non_navigational": 0.0}
        nav = sum(1 for o in hits if o.navigational)
        return {
            "navigational": nav / len(hits),
            "non_navigational": 1 - nav / len(hits),
        }

    def window(self, t_start: float, t_end: float) -> "MetricsCollector":
        """Sub-collector of outcomes with timestamp in [t_start, t_end)."""
        sub = MetricsCollector()
        sub.extend(
            [o for o in self.outcomes if t_start <= o.timestamp < t_end]
        )
        return sub

    def _require_data(self) -> None:
        if not self.outcomes:
            raise ValueError("no outcomes recorded")
