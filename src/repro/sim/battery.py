"""Battery model: turning per-query joules into battery-life impact.

The paper motivates pocket cloudlets with battery lifetime ("the more
time the radio link is active, the lower the battery lifetime of the
mobile device becomes").  This model converts the per-query energy of
the service paths into the quantity a user feels: how much of a charge a
day of searching consumes, and how many queries one charge sustains.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The Xperia X1a-era battery: 1500 mAh at a nominal 3.7 V.
DEFAULT_CAPACITY_J = 1.5 * 3.7 * 3600  # amp-hours x volts x seconds


@dataclass
class Battery:
    """A simple energy-reservoir battery.

    Attributes:
        capacity_j: full-charge energy.
        charge_j: remaining energy.
    """

    capacity_j: float = DEFAULT_CAPACITY_J

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError(f"capacity_j must be positive, got {self.capacity_j}")
        self.charge_j = self.capacity_j

    @property
    def level(self) -> float:
        """Remaining charge fraction in [0, 1]."""
        return self.charge_j / self.capacity_j

    def drain(self, energy_j: float) -> bool:
        """Consume energy; returns False when the battery is exhausted.

        An exhausted battery clamps to zero (the device dies; it does not
        go negative).
        """
        if energy_j < 0:
            raise ValueError(f"energy_j must be non-negative, got {energy_j}")
        if energy_j > self.charge_j:
            self.charge_j = 0.0
            return False
        self.charge_j -= energy_j
        return True

    def recharge(self) -> None:
        self.charge_j = self.capacity_j

    def queries_per_charge(self, energy_per_query_j: float) -> int:
        """Queries a full charge sustains at a given per-query energy."""
        if energy_per_query_j <= 0:
            raise ValueError("energy_per_query_j must be positive")
        return int(self.capacity_j // energy_per_query_j)

    def daily_budget_share(
        self, energy_per_query_j: float, queries_per_day: float
    ) -> float:
        """Fraction of one charge a day's query volume consumes."""
        if queries_per_day < 0:
            raise ValueError("queries_per_day must be non-negative")
        return energy_per_query_j * queries_per_day / self.capacity_j
