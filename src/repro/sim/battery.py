"""Battery model: turning per-query joules into battery-life impact.

The paper motivates pocket cloudlets with battery lifetime ("the more
time the radio link is active, the lower the battery lifetime of the
mobile device becomes").  This model converts the per-query energy of
the service paths into the quantity a user feels: how much of a charge a
day of searching consumes, and how many queries one charge sustains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: The Xperia X1a-era battery: 1500 mAh at a nominal 3.7 V.
DEFAULT_CAPACITY_J = 1.5 * 3.7 * 3600  # amp-hours x volts x seconds

DAY_SECONDS = 86_400.0

#: Minimum observation span (simulated s) a burn-rate projection is
#: extrapolated over; shorter spans would project one query's joules
#: into an absurd %/day figure.
MIN_BURN_SPAN_S = 60.0


@dataclass
class Battery:
    """A simple energy-reservoir battery.

    Attributes:
        capacity_j: full-charge energy.
        charge_j: remaining energy.
    """

    capacity_j: float = DEFAULT_CAPACITY_J

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError(f"capacity_j must be positive, got {self.capacity_j}")
        self.charge_j = self.capacity_j

    @property
    def level(self) -> float:
        """Remaining charge fraction in [0, 1]."""
        return self.charge_j / self.capacity_j

    def drain(self, energy_j: float) -> bool:
        """Consume energy; returns False when the battery is exhausted.

        An exhausted battery clamps to zero (the device dies; it does not
        go negative).
        """
        if energy_j < 0:
            raise ValueError(f"energy_j must be non-negative, got {energy_j}")
        if energy_j > self.charge_j:
            self.charge_j = 0.0
            return False
        self.charge_j -= energy_j
        return True

    def recharge(self) -> None:
        self.charge_j = self.capacity_j

    def queries_per_charge(self, energy_per_query_j: float) -> int:
        """Queries a full charge sustains at a given per-query energy."""
        if energy_per_query_j <= 0:
            raise ValueError("energy_per_query_j must be positive")
        return int(self.capacity_j // energy_per_query_j)

    def daily_budget_share(
        self, energy_per_query_j: float, queries_per_day: float
    ) -> float:
        """Fraction of one charge a day's query volume consumes."""
        if queries_per_day < 0:
            raise ValueError("queries_per_day must be non-negative")
        return energy_per_query_j * queries_per_day / self.capacity_j


class _DeviceDrain:
    """One device's battery plus its drain history."""

    __slots__ = ("battery", "drained_j", "queries", "t_first", "t_last")

    def __init__(self, capacity_j: float, t: float) -> None:
        self.battery = Battery(capacity_j=capacity_j)
        self.drained_j = 0.0
        self.queries = 0
        self.t_first = t
        self.t_last = t


class FleetBatteries:
    """Per-device battery drain tracking for a fleet of phones.

    The serving telemetry drains one :class:`Battery` per device as
    responses complete, turning attributed joules into the quantity the
    paper argues about: battery life.  Projections are extrapolations of
    each device's *observed* average power onto a full charge / a full
    simulated day.

    Args:
        capacity_j: full-charge energy of every device's battery.
    """

    def __init__(self, capacity_j: float = DEFAULT_CAPACITY_J) -> None:
        if capacity_j <= 0:
            raise ValueError(f"capacity_j must be positive, got {capacity_j}")
        self.capacity_j = capacity_j
        self._devices: Dict[int, _DeviceDrain] = {}

    def __len__(self) -> int:
        return len(self._devices)

    def drain(self, device_id: int, energy_j: float, t: float) -> bool:
        """Drain ``device_id``'s battery; returns the battery's verdict
        (``False`` once the device would be dead)."""
        state = self._devices.get(device_id)
        if state is None:
            state = _DeviceDrain(self.capacity_j, t)
            self._devices[device_id] = state
        state.drained_j += energy_j
        state.queries += 1
        state.t_last = max(state.t_last, t)
        return state.battery.drain(energy_j)

    def level(self, device_id: int) -> float:
        """Remaining charge fraction (1.0 for an unseen device)."""
        state = self._devices.get(device_id)
        return state.battery.level if state is not None else 1.0

    def burn_per_day(self, device_id: int, t: float) -> float:
        """Projected charge fraction per simulated day at the device's
        observed average power (0.0 for an unseen device)."""
        state = self._devices.get(device_id)
        if state is None:
            return 0.0
        span = max(t - state.t_first, MIN_BURN_SPAN_S)
        return (state.drained_j / self.capacity_j) * (DAY_SECONDS / span)

    def queries_per_charge(self, device_id: int) -> Optional[int]:
        """Projected queries a full charge sustains at the device's
        observed mean joules/query (None before any drain)."""
        state = self._devices.get(device_id)
        if state is None or state.queries == 0 or state.drained_j <= 0:
            return None
        return state.battery.queries_per_charge(
            state.drained_j / state.queries
        )

    def snapshot(self, t: float, worst_k: int = 8) -> Dict[str, Any]:
        """Fleet aggregates plus the ``worst_k`` most-drained devices."""
        devices = self._devices
        if not devices:
            return {
                "capacity_j": self.capacity_j,
                "n_devices": 0,
                "min_level": None,
                "mean_level": None,
                "exhausted": 0,
                "drained_j": 0.0,
                "energy_j_per_query": None,
                "queries_per_charge": None,
                "mean_burn_per_day": None,
                "worst": [],
            }
        levels = [s.battery.level for s in devices.values()]
        drained = sum(s.drained_j for s in devices.values())
        queries = sum(s.queries for s in devices.values())
        per_query = drained / queries if queries else None
        burns = [self.burn_per_day(d, t) for d in devices]
        worst: List[Dict[str, Any]] = [
            {
                "device_id": device_id,
                "level": state.battery.level,
                "drained_j": state.drained_j,
                "queries": state.queries,
                "burn_per_day": self.burn_per_day(device_id, t),
                "queries_per_charge": self.queries_per_charge(device_id),
            }
            for device_id, state in sorted(
                devices.items(), key=lambda kv: (kv[1].battery.level, kv[0])
            )[:worst_k]
        ]
        return {
            "capacity_j": self.capacity_j,
            "n_devices": len(devices),
            "min_level": min(levels),
            "mean_level": sum(levels) / len(levels),
            "exhausted": sum(1 for lv in levels if lv == 0.0),
            "drained_j": drained,
            "energy_j_per_query": per_query,
            "queries_per_charge": (
                int(self.capacity_j // per_query) if per_query else None
            ),
            "mean_burn_per_day": sum(burns) / len(burns),
            "worst": worst,
        }
