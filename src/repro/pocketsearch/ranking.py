"""Personalized ranking (Section 5.3, Equations 1 and 2).

Every time the user submits query Q and clicks result R1 among cached
results {R1, R2, ...}:

* the clicked result's score is increased by 1 (Equation 1) — the maximum
  possible log-derived score, so user-selected results always float up;
* every unselected result's score decays by ``exp(-lambda)`` (Equation 2),
  so staleness pushes old favourites down.

The scores live in the query hash table; this module only encapsulates the
update rule so alternative personalization algorithms can be swapped in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.pocketsearch.hashtable import QueryHashTable


@dataclass(frozen=True)
class PersonalizedRanker:
    """Click-driven score updates.

    Attributes:
        decay_lambda: the freshness decay rate (the paper's lambda).
    """

    decay_lambda: float = 0.1

    def __post_init__(self) -> None:
        if self.decay_lambda < 0:
            raise ValueError(
                f"decay_lambda must be non-negative, got {self.decay_lambda}"
            )

    def record_click(
        self, table: QueryHashTable, query: str, clicked_result_hash: int
    ) -> None:
        """Apply Equations (1)-(2) after a click on a cached query.

        If the clicked result is not yet linked to the query (a click
        following a cache miss), a new pair is inserted with score 1, as
        Section 5.3 specifies.
        """
        slots = table.slots_for(query)
        clicked_present = any(h == clicked_result_hash for h, _, _ in slots)
        for result_hash, score, _ in slots:
            if result_hash == clicked_result_hash:
                table.set_score(query, result_hash, score + 1.0)
            else:
                table.set_score(
                    query, result_hash, score * math.exp(-self.decay_lambda)
                )
        if not clicked_present:
            table.insert(query, clicked_result_hash, 1.0, accessed=True)
        else:
            table.mark_accessed(query, clicked_result_hash)

    def decayed_score(self, score: float, idle_updates: int) -> float:
        """Score after ``idle_updates`` unselected updates (closed form)."""
        if idle_updates < 0:
            raise ValueError("idle_updates must be non-negative")
        return score * math.exp(-self.decay_lambda * idle_updates)
