"""Cache management: the server-side update protocol (Section 5.4,
Figure 14).

Periodically (e.g. nightly, while the phone charges):

1. the phone uploads its current hash table;
2. the server drops every query-result pair the user has never accessed
   (community content that will be re-added only if still popular) and
   every user-accessed pair whose ranking score has decayed below a
   retention threshold;
3. the server mines the latest logs for the fresh popular set and merges
   it in, resolving score conflicts by keeping the maximum;
4. the server ships the new hash table plus per-file patch files for the
   result database.

The paper notes the whole exchange is usually under ~1.5 MB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.logs.generator import SearchLog
from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import (
    CacheContent,
    ContentPolicy,
    PAPER_OPERATING_POINT,
    build_cache_content,
)
from repro.pocketsearch.database import CompactionResult, HEADER_ENTRY_BYTES
from repro.pocketsearch.hashtable import hash64


@dataclass(frozen=True)
class UpdatePatch:
    """What one update round shipped and changed."""

    bytes_uploaded: int  # phone -> server: the hash table
    bytes_downloaded: int  # server -> phone: new table + DB patches
    pairs_added: int
    pairs_removed: int
    results_added: int
    results_removed: int = 0
    #: query strings dropped from the phone's registry because the
    #: update left them with no cached pairs.
    queries_pruned: int = 0
    compaction: Optional[CompactionResult] = None
    patch_files: Dict[int, int] = field(default_factory=dict)  # file -> bytes


class CacheUpdateServer:
    """The server half of the update protocol.

    Args:
        policy: content-selection policy for the fresh popular set.
        retention_min_score: user-accessed pairs whose score fell below
            this are dropped (the paper's "not accessed over the last 3
            months" rule, expressed through score decay).
    """

    def __init__(
        self,
        policy: ContentPolicy = PAPER_OPERATING_POINT,
        retention_min_score: float = 0.05,
        compaction_threshold: float = 0.25,
    ) -> None:
        if retention_min_score < 0:
            raise ValueError("retention_min_score must be non-negative")
        if compaction_threshold < 0:
            raise ValueError("compaction_threshold must be non-negative")
        self.policy = policy
        self.retention_min_score = retention_min_score
        #: compact when garbage exceeds this fraction of live data
        self.compaction_threshold = compaction_threshold

    def refresh(self, cache: PocketSearchCache, fresh_log: SearchLog) -> UpdatePatch:
        """Run one update round against ``cache`` in place, mining the
        fresh popular set from ``fresh_log``."""
        content = build_cache_content(fresh_log, self.policy)
        return self.refresh_with_content(cache, content)

    def refresh_with_content(
        self, cache: PocketSearchCache, content: CacheContent
    ) -> UpdatePatch:
        """Run one update round with a pre-mined popular set.

        Split out so daily-update experiments can mine each day's content
        once and apply it to many users' caches.
        """
        table = cache.hashtable
        bytes_uploaded = len(table.serialize())

        # Step 2: prune. Collect pairs to drop without mutating mid-walk.
        to_remove: List[Tuple[str, int]] = []
        query_by_slot: Dict[int, str] = {}
        retained_pairs: Set[Tuple[str, int]] = set()
        for query, slots in self._table_pairs(cache):
            for result_hash, score, accessed in slots:
                if not accessed or score < self.retention_min_score:
                    to_remove.append((query, result_hash))
                else:
                    retained_pairs.add((query, result_hash))
        for query, result_hash in to_remove:
            table.remove(query, result_hash)

        # Step 3: merge the fresh popular content (max score wins —
        # QueryHashTable.insert already keeps the higher score).
        pairs_added = 0
        results_added = 0
        patch_files: Dict[int, int] = {}
        for entry in content.entries:
            result_hash = hash64(entry.url)
            if not cache.database.contains(result_hash):
                stored = cache.database.add_result(entry.url, entry.record_bytes)
                results_added += 1
                patch_files[stored.file_index] = (
                    patch_files.get(stored.file_index, 0)
                    + entry.record_bytes
                    + HEADER_ENTRY_BYTES
                )
            if (entry.query, result_hash) not in retained_pairs:
                pairs_added += 1
            table.insert(entry.query, result_hash, entry.score, accessed=False)
            cache.query_registry[hash64(entry.query)] = entry.query

        # Step 4: garbage-collect the phone-side string registry and the
        # result database, then compact the database files if enough
        # garbage accumulated (a charge-time maintenance pass, free in
        # battery terms).  Queries whose pairs were all dropped must not
        # linger in the registry: the suggest index would keep offering
        # them, and the strings are dead weight in DRAM.
        queries_pruned = 0
        for query_hash, query in list(cache.query_registry.items()):
            if not table.slots_for(query):
                del cache.query_registry[query_hash]
                queries_pruned += 1
        referenced = set()
        for _query, slots in self._table_pairs(cache):
            for result_hash, _score, _accessed in slots:
                referenced.add(result_hash)
        results_removed = 0
        for result_hash in list(cache.database._index):
            if result_hash not in referenced:
                cache.database.remove_result(result_hash)
                results_removed += 1
        compacted = None
        if (
            cache.database.garbage_bytes
            > self.compaction_threshold * max(cache.database.logical_bytes, 1)
        ):
            compacted = cache.database.compact()

        bytes_downloaded = len(table.serialize()) + sum(patch_files.values())
        return UpdatePatch(
            bytes_uploaded=bytes_uploaded,
            bytes_downloaded=bytes_downloaded,
            pairs_added=pairs_added,
            pairs_removed=len(to_remove),
            results_added=results_added,
            results_removed=results_removed,
            queries_pruned=queries_pruned,
            compaction=compacted,
            patch_files=patch_files,
        )

    @staticmethod
    def _table_pairs(cache: PocketSearchCache):
        """Yield (query, slots) for every cached query.

        The hash table stores only hashes (Figure 10); the query strings
        come from the cache's query registry, mirroring the real system
        where the server knows the strings it mined from logs and the
        phone keeps the strings the user typed.
        """
        for query in list(cache.query_registry.values()):
            slots = cache.hashtable.slots_for(query)
            if slots:
                yield query, slots
