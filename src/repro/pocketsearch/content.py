"""Cache content generation (Section 5.1).

From the mobile search logs, extract <query, search result, volume>
triplets sorted by volume (Table 3), then walk down the list adding pairs
until either a memory threshold (flash or DRAM bytes) or the cache
saturation threshold (normalized pair volume below ``Vth``) is reached.
Each selected pair gets a ranking score: its volume normalized across all
results clicked for the same query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.logs.generator import SearchLog
from repro.logs.schema import Triplet

#: Bytes one cached search result occupies in the flash database, on
#: average, when no explicit record size is known (the paper: ~500 B).
DEFAULT_RECORD_BYTES = 500


@dataclass(frozen=True)
class CacheEntry:
    """One selected (query, result) pair with its ranking score."""

    query: str
    url: str
    volume: int
    score: float
    navigational: bool
    record_bytes: int = DEFAULT_RECORD_BYTES

    def __post_init__(self) -> None:
        if self.volume < 0:
            raise ValueError("volume must be non-negative")
        if not 0 <= self.score <= 1.0000001:
            raise ValueError(f"score must be in [0, 1], got {self.score}")


@dataclass(frozen=True)
class ContentPolicy:
    """Which threshold stops the selection walk (Section 5.1).

    Exactly one of the thresholds may be set; when several are given, the
    walk stops at the first one reached — mirroring the paper, where the
    saturation threshold is in practice reached long before memory limits.

    Attributes:
        saturation_volume: stop when a pair's normalized volume drops
            below this fraction of total volume (``Vth``).
        max_flash_bytes: stop before exceeding this flash budget.
        max_dram_bytes: stop before exceeding this DRAM (hash table) budget.
        max_pairs: hard cap on the number of pairs (for sweeps).
        target_coverage: stop once cumulative volume coverage reaches this
            fraction (convenience used by the paper's "55% of cumulative
            volume" operating point).
    """

    saturation_volume: Optional[float] = None
    max_flash_bytes: Optional[int] = None
    max_dram_bytes: Optional[int] = None
    max_pairs: Optional[int] = None
    target_coverage: Optional[float] = None

    def __post_init__(self) -> None:
        if all(
            v is None
            for v in (
                self.saturation_volume,
                self.max_flash_bytes,
                self.max_dram_bytes,
                self.max_pairs,
                self.target_coverage,
            )
        ):
            raise ValueError("at least one threshold must be set")
        if self.saturation_volume is not None and self.saturation_volume <= 0:
            raise ValueError("saturation_volume must be positive")
        if self.target_coverage is not None and not 0 < self.target_coverage <= 1:
            raise ValueError("target_coverage must be in (0, 1]")


#: The paper's operating point: pairs covering ~55% of cumulative volume.
PAPER_OPERATING_POINT = ContentPolicy(target_coverage=0.55)

#: Approximate DRAM hash-table bytes per cached pair (used for the DRAM
#: threshold during the selection walk; the exact figure comes from
#: :class:`repro.pocketsearch.hashtable.QueryHashTable`).
APPROX_DRAM_BYTES_PER_PAIR = 40


@dataclass
class CacheContent:
    """The outcome of cache content generation."""

    entries: List[CacheEntry]
    total_log_volume: int
    covered_volume: int = field(init=False)

    def __post_init__(self) -> None:
        self.covered_volume = sum(e.volume for e in self.entries)

    @property
    def n_pairs(self) -> int:
        return len(self.entries)

    @property
    def n_unique_queries(self) -> int:
        return len({e.query for e in self.entries})

    @property
    def n_unique_results(self) -> int:
        return len({e.url for e in self.entries})

    @property
    def coverage(self) -> float:
        """Fraction of log volume the cached pairs account for."""
        if self.total_log_volume == 0:
            return 0.0
        return self.covered_volume / self.total_log_volume

    @property
    def flash_bytes(self) -> int:
        """Flash footprint with shared result storage (each URL once)."""
        seen: Dict[str, int] = {}
        for e in self.entries:
            seen.setdefault(e.url, e.record_bytes)
        return sum(seen.values())

    @property
    def flash_bytes_unshared(self) -> int:
        """Flash footprint if every pair stored its own result page
        (the design the paper rejects; ~8x larger in their data)."""
        return sum(e.record_bytes for e in self.entries)

    @property
    def approx_dram_bytes(self) -> int:
        return self.n_pairs * APPROX_DRAM_BYTES_PER_PAIR


def triplets_from_log(log: SearchLog) -> List[Triplet]:
    """Extract Table 3: (query, result, volume) sorted by volume desc."""
    if log.n_events == 0:
        return []
    pair_ids, volumes, first_idx = _pair_stats(log)
    return [
        Triplet(
            query=log.query_string(int(log.query_keys[idx])),
            url=log.result_url(int(log.result_keys[idx])),
            volume=int(volume),
        )
        for idx, volume in zip(first_idx.tolist(), volumes.tolist())
    ]


def _pair_stats(log: SearchLog) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(pair_ids desc by volume, volumes, first event index per pair)."""
    pair_ids, first_idx, counts = np.unique(
        log.pair_ids, return_index=True, return_counts=True
    )
    order = np.argsort(counts)[::-1]
    return pair_ids[order], counts[order], first_idx[order]


def build_cache_content(
    log: SearchLog,
    policy: ContentPolicy = PAPER_OPERATING_POINT,
) -> CacheContent:
    """Run the Section 5.1 selection walk over a log.

    Ranking scores are computed per query: each pair's volume divided by
    the total volume of all *selected-universe* results for that query
    (the paper normalizes across the results that correspond to the
    query).

    Args:
        log: the (typically one-month) search log to mine.
        policy: the stopping rule.

    Returns:
        A :class:`CacheContent` with entries in descending volume order.
    """
    if log.n_events == 0:
        return CacheContent(entries=[], total_log_volume=0)

    pair_ids, volumes, first_idx = _pair_stats(log)
    total_volume = int(volumes.sum())

    # Per-query total volume for ranking-score normalization.
    qkeys = log.query_keys[first_idx]
    rkeys = log.result_keys[first_idx]
    nav = log.navigational[first_idx]
    query_totals: Dict[int, int] = {}
    for q, v in zip(qkeys.tolist(), volumes.tolist()):
        query_totals[q] = query_totals.get(q, 0) + v

    entries: List[CacheEntry] = []
    covered = 0
    flash_bytes = 0
    seen_urls: Dict[str, bool] = {}
    for i in range(len(pair_ids)):
        volume = int(volumes[i])
        normalized = volume / total_volume
        if (
            policy.saturation_volume is not None
            and normalized < policy.saturation_volume
        ):
            break
        if policy.max_pairs is not None and len(entries) >= policy.max_pairs:
            break
        if (
            policy.target_coverage is not None
            and covered / total_volume >= policy.target_coverage
        ):
            break
        url = log.result_url(int(rkeys[i]))
        record_bytes = _record_bytes(log, int(rkeys[i]))
        added_flash = 0 if url in seen_urls else record_bytes
        if (
            policy.max_flash_bytes is not None
            and flash_bytes + added_flash > policy.max_flash_bytes
        ):
            break
        if (
            policy.max_dram_bytes is not None
            and (len(entries) + 1) * APPROX_DRAM_BYTES_PER_PAIR
            > policy.max_dram_bytes
        ):
            break
        query = log.query_string(int(qkeys[i]))
        entries.append(
            CacheEntry(
                query=query,
                url=url,
                volume=volume,
                score=volume / query_totals[int(qkeys[i])],
                navigational=bool(nav[i]),
                record_bytes=record_bytes,
            )
        )
        covered += volume
        flash_bytes += added_flash
        seen_urls[url] = True

    return CacheContent(entries=entries, total_log_volume=total_volume)


def _record_bytes(log: SearchLog, result_key: int) -> int:
    """Stored size of a result: from the vocabulary when known."""
    community = log.community
    if result_key < community.n_results:
        return community.result_records[result_key].record_bytes
    return DEFAULT_RECORD_BYTES


def build_cache_content_from_model(
    community,
    policy: ContentPolicy = PAPER_OPERATING_POINT,
    total_volume: int = 10_000_000,
) -> CacheContent:
    """Selection walk over the *ideal* community distribution.

    The server aggregates many months of logs, so its triplet table
    approaches the underlying popularity model; design-space studies
    (e.g. the Figure 11 hash-table sweep) use this long-horizon view
    rather than a single sampled month.

    Args:
        community: a :class:`repro.logs.popularity.CommunityModel`.
        policy: stopping rule (same semantics as :func:`build_cache_content`).
        total_volume: nominal volume to apportion into triplet counts.
    """
    order = community.rank_order
    probs = community.pair_prob
    query_totals: Dict[int, float] = {}
    for pair in order:
        q = int(community.pair_query[pair])
        query_totals[q] = query_totals.get(q, 0.0) + float(probs[pair])

    entries: List[CacheEntry] = []
    covered = 0.0
    flash_bytes = 0
    seen_urls: Dict[str, bool] = {}
    for pair in order:
        pair = int(pair)
        normalized = float(probs[pair])
        if (
            policy.saturation_volume is not None
            and normalized < policy.saturation_volume
        ):
            break
        if policy.max_pairs is not None and len(entries) >= policy.max_pairs:
            break
        if (
            policy.target_coverage is not None
            and covered >= policy.target_coverage
        ):
            break
        q = int(community.pair_query[pair])
        r = int(community.pair_result[pair])
        url = community.result_urls[r]
        record_bytes = community.result_records[r].record_bytes
        added_flash = 0 if url in seen_urls else record_bytes
        if (
            policy.max_flash_bytes is not None
            and flash_bytes + added_flash > policy.max_flash_bytes
        ):
            break
        if (
            policy.max_dram_bytes is not None
            and (len(entries) + 1) * APPROX_DRAM_BYTES_PER_PAIR
            > policy.max_dram_bytes
        ):
            break
        entries.append(
            CacheEntry(
                query=community.query_strings[q],
                url=url,
                volume=int(round(normalized * total_volume)),
                score=min(normalized / query_totals[q], 1.0),
                navigational=bool(community.query_navigational[q]),
                record_bytes=record_bytes,
            )
        )
        covered += normalized
        flash_bytes += added_flash
        seen_urls[url] = True
    return CacheContent(entries=entries, total_log_volume=total_volume)


def coverage_curve(
    log: SearchLog, pair_counts: List[int]
) -> List[Tuple[int, float]]:
    """Figure 7: cumulative volume coverage at each cache size."""
    if log.n_events == 0:
        return [(k, 0.0) for k in pair_counts]
    _, volumes, _ = _pair_stats(log)
    cum = np.cumsum(volumes) / volumes.sum()
    out = []
    for k in pair_counts:
        if k <= 0:
            out.append((k, 0.0))
        else:
            out.append((k, float(cum[min(k, len(cum)) - 1])))
    return out
