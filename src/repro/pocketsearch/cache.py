"""The PocketSearch cache: community + personalization composition
(Section 5, Figure 6).

* The **community** component is bulk-loaded from the popular
  query-result pairs mined from the search logs (Section 5.1) and gives
  the cache a warm start for users it knows nothing about.
* The **personalization** component watches the user's own queries and
  clicks: it expands the cache with pairs the community part lacks and
  re-ranks cached results with the click history (Section 5.3).

Either component can be disabled to reproduce the decompositions of
Figure 17.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.pocketsearch.content import CacheContent, DEFAULT_RECORD_BYTES
from repro.pocketsearch.database import ResultDatabase
from repro.pocketsearch.hashtable import QueryHashTable, hash64
from repro.pocketsearch.ranking import PersonalizedRanker
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash


class VersionedRegistry(dict):
    """A dict with a monotonically increasing mutation version.

    The suggest index uses the version as a cheap change token: comparing
    the registry's *length* misses updates that replace N entries with N
    different ones (a nightly refresh that swaps the popular set), which
    would leave the auto-suggest box serving stale queries.
    """

    __slots__ = ("version",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.version = 0

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.version += 1

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self.version += 1

    def pop(self, *args):
        self.version += 1
        return super().pop(*args)

    def popitem(self):
        self.version += 1
        return super().popitem()

    def clear(self) -> None:
        super().clear()
        self.version += 1

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self.version += 1

    def setdefault(self, key, default=None):
        self.version += 1
        return super().setdefault(key, default)


@dataclass(frozen=True)
class CacheLookup:
    """Outcome of a cache lookup."""

    query: str
    hit: bool
    results: List[Tuple[int, float]]  # (result hash, score), ranked
    lookup_latency_s: float


class PocketSearchCache:
    """Hash table + result database with the two cache components."""

    def __init__(
        self,
        hashtable: Optional[QueryHashTable] = None,
        database: Optional[ResultDatabase] = None,
        ranker: Optional[PersonalizedRanker] = None,
        personalization_enabled: bool = True,
    ) -> None:
        self.hashtable = hashtable or QueryHashTable()
        if database is None:
            database = ResultDatabase(FlashFilesystem(NandFlash()))
        self.database = database
        self.ranker = ranker or PersonalizedRanker()
        self.personalization_enabled = personalization_enabled
        #: query hash -> query string, for every query currently cached.
        #: The hash table itself stores only hashes (Figure 10); the
        #: strings live with the app (and the server) and are needed to
        #: enumerate the table during updates.  The registry's mutation
        #: version lets the suggest index detect content swaps.
        self.query_registry: VersionedRegistry = VersionedRegistry()
        self.hits = 0
        self.misses = 0

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_content(
        cls,
        content: CacheContent,
        database: Optional[ResultDatabase] = None,
        results_per_entry: int = 2,
        personalization_enabled: bool = True,
        ranker: Optional[PersonalizedRanker] = None,
    ) -> "PocketSearchCache":
        """Bulk-load the community component from generated content."""
        cache = cls(
            hashtable=QueryHashTable(results_per_entry=results_per_entry),
            database=database,
            ranker=ranker,
            personalization_enabled=personalization_enabled,
        )
        cache.load_community(content)
        return cache

    def load_community(self, content: CacheContent) -> None:
        """Insert community pairs (flags clear: not user-accessed)."""
        for entry in content.entries:
            stored = self.database.add_result(entry.url, entry.record_bytes)
            self.hashtable.insert(
                entry.query, stored.result_hash, entry.score, accessed=False
            )
            self.query_registry[hash64(entry.query)] = entry.query

    # -- service path ------------------------------------------------------------

    def lookup(self, query: str) -> CacheLookup:
        """Check the hash table for locally available results."""
        results = self.hashtable.lookup(query)
        hit = results is not None
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return CacheLookup(
            query=query,
            hit=hit,
            results=results or [],
            lookup_latency_s=self.hashtable.lookup_latency_s,
        )

    def record_click(
        self,
        query: str,
        clicked_url: str,
        record_bytes: int = DEFAULT_RECORD_BYTES,
    ) -> None:
        """Feed one user interaction to the personalization component.

        On a previously unseen pair this caches the query and result so
        the next submission is a hit; on a cached pair it applies the
        Equations (1)-(2) score updates.  No-op when personalization is
        disabled (community-only mode).
        """
        if not self.personalization_enabled:
            return
        clicked_hash = hash64(clicked_url)
        if not self.database.contains(clicked_hash):
            self.database.add_result(clicked_url, record_bytes)
        self.ranker.record_click(self.hashtable, query, clicked_hash)
        self.query_registry[hash64(query)] = query

    # -- stats -------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def dram_bytes(self) -> int:
        return self.hashtable.footprint_bytes

    @property
    def flash_bytes(self) -> int:
        return self.database.logical_bytes

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0
