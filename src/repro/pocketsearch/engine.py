"""The on-device PocketSearch service path (Section 6.1, Table 4).

Serving a query:

* **hit** — hash-table lookup (~10 us in DRAM), fetch the top results
  from the flash database (~10 ms), render the results page in the
  embedded browser (~361 ms), plus miscellaneous glue (~7 ms): ~378 ms
  total, of which rendering is 96.7%.
* **miss** — the same 10 us lookup, then the full radio round trip (wake
  + handshake + transfer + server time) and rendering of the server's
  results page: seconds, not milliseconds.

Each query is costed in isolation (the radio starts asleep), matching the
paper's measurement methodology for Figures 15a/15b; consecutive-query
traces (Figure 16) drive the radio timeline directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.energy import EnergyBreakdown
from repro.obs.trace import get_tracer
from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import DEFAULT_RECORD_BYTES
from repro.radio.energy import (
    isolated_request_components,
    isolated_request_energy,
    isolated_request_latency,
)
from repro.radio.models import RadioProfile, THREE_G
from repro.sim.browser import Browser, RADIO_SERP_BYTES, SERP_BYTES
from repro.sim.metrics import QueryOutcome, ServiceSource

#: Miscellaneous service-path overhead (Table 4: ~7 ms).
MISC_LATENCY_S = 7e-3

#: How many results a hit fetches from flash for the instant results page
#: (the auto-suggest box of Figure 1 shows two).
RESULTS_PER_PAGE = 2

KB = 1024

_SOURCE_BY_RADIO = {
    "3g": ServiceSource.RADIO_3G,
    "edge": ServiceSource.RADIO_EDGE,
    "802.11g": ServiceSource.RADIO_WIFI,
}


@dataclass(frozen=True)
class ServeResult:
    """Full accounting of one served query.

    Attributes:
        outcome: the model outcome (latency, energy, source).
        breakdown: latency components, keyed by stage name.
        energy: per-component energy breakdown of the same query; its
            radio components are what miss batching re-attributes.
    """

    outcome: QueryOutcome
    breakdown: Dict[str, float] = field(default_factory=dict)
    energy: Optional[EnergyBreakdown] = None


class PocketSearchEngine:
    """Serves queries from the cache, falling back to a radio link.

    Args:
        cache: the PocketSearch cache.
        browser: rendering model (defaults to the Table 4 fit).
        radio: fallback radio profile (the paper's default is 3G).
        base_power_w: device base power while the user is served.
        query_bytes_up: uplink payload of a search request.
        serp_bytes_down: downlink payload of the server results page.
        server_time_s: search-engine processing time.
    """

    def __init__(
        self,
        cache: PocketSearchCache,
        browser: Optional[Browser] = None,
        radio: RadioProfile = THREE_G,
        base_power_w: float = 0.9,
        query_bytes_up: int = 1 * KB,
        serp_bytes_down: int = RADIO_SERP_BYTES,
        server_time_s: float = 0.35,
    ) -> None:
        self.cache = cache
        self.browser = browser or Browser()
        self.radio = radio
        self.base_power_w = base_power_w
        self.query_bytes_up = query_bytes_up
        self.serp_bytes_down = serp_bytes_down
        self.server_time_s = server_time_s
        self._suggest_index = None

    # -- service ---------------------------------------------------------------

    def serve_query(
        self,
        query: str,
        clicked_url: str,
        record_bytes: int = DEFAULT_RECORD_BYTES,
        navigational: Optional[bool] = None,
        timestamp: float = 0.0,
    ) -> ServeResult:
        """Serve one query and feed the click to personalization.

        Args:
            query: the submitted query string.
            clicked_url: the result the user selects (drives ranking and
                personal caching).
            record_bytes: stored size of the clicked result.
            navigational: optional nav flag recorded in the outcome.
            timestamp: optional event time recorded in the outcome.
        """
        tracer = get_tracer()
        with tracer.span("serve_query", timestamp=timestamp) as span:
            with tracer.span("cache_lookup"):
                lookup = self.cache.lookup(query)
            if lookup.hit:
                result = self._serve_hit(lookup, query, navigational, timestamp)
            else:
                result = self._serve_miss(query, navigational, timestamp)
            with tracer.span("record_click"):
                self.cache.record_click(query, clicked_url, record_bytes)
            if tracer.enabled:
                span.set_attrs(
                    hit=result.outcome.hit,
                    source=result.outcome.source.value,
                    model_latency_s=result.outcome.latency_s,
                    model_energy_j=result.outcome.energy_j,
                )
        return result

    def suggest(self, partial_query: str, k: int = 5):
        """Instant suggestions for a partially typed query (Figure 1).

        Returns (suggestions, latency_s).  The latency is microseconds —
        the point of the prototype's auto-suggest box: real results
        appear as the user types, no radio involved.

        The index is re-synced with the cache registry on every call (a
        version-token compare, free when nothing changed), so
        suggestions reflect server updates applied since the last
        keystroke — not the cache content the index was built from.
        """
        from repro.pocketsearch.suggest import SuggestIndex

        if self._suggest_index is None:
            self._suggest_index = SuggestIndex(self.cache)
        self._suggest_index.refresh()
        suggestions = self._suggest_index.complete(partial_query, k)
        return suggestions, self._suggest_index.lookup_latency_s()

    def measure_hit(self, query: str) -> ServeResult:
        """Serve a known-cached query without a click (measurement path).

        Used by the Section 6.1 experiments, which repeatedly serve the
        same cached queries and must not perturb personalization state.

        Raises:
            KeyError: if the query is not cached.
        """
        results = self.cache.hashtable.lookup(query)
        if results is None:
            raise KeyError(f"query {query!r} is not cached")
        from repro.pocketsearch.cache import CacheLookup

        lookup = CacheLookup(
            query=query,
            hit=True,
            results=results,
            lookup_latency_s=self.cache.hashtable.lookup_latency_s,
        )
        return self._serve_hit(lookup, query, None, 0.0)

    def _serve_hit(self, lookup, query, navigational, timestamp) -> ServeResult:
        tracer = get_tracer()
        fetch_latency = 0.0
        fetch_energy = 0.0
        with tracer.span("database_read") as fetch_span:
            for result_hash, _score in lookup.results[:RESULTS_PER_PAGE]:
                fetch = self.cache.database.fetch(result_hash)
                fetch_latency += fetch.latency_s
                fetch_energy += fetch.energy_j
            if tracer.enabled:
                fetch_span.set_attrs(
                    n_results=len(lookup.results[:RESULTS_PER_PAGE]),
                    model_latency_s=fetch_latency,
                    model_energy_j=fetch_energy,
                )
        with tracer.span("browser_render"):
            render_s = self.browser.render(SERP_BYTES)
        latency = (
            lookup.lookup_latency_s + fetch_latency + render_s + MISC_LATENCY_S
        )
        energy = (
            latency * self.base_power_w
            + fetch_energy
            + self.browser.render_energy_j(render_s)
        )
        breakdown = {
            "hash_table_lookup_s": lookup.lookup_latency_s,
            "fetch_search_results_s": fetch_latency,
            "browser_rendering_s": render_s,
            "miscellaneous_s": MISC_LATENCY_S,
        }
        outcome = QueryOutcome(
            query=query,
            hit=True,
            source=ServiceSource.CACHE,
            latency_s=latency,
            energy_j=energy,
            timestamp=timestamp,
            navigational=navigational,
        )
        energy_breakdown = EnergyBreakdown(
            storage_j=fetch_energy,
            render_j=self.browser.render_energy_j(render_s),
            base_j=latency * self.base_power_w,
        )
        return ServeResult(
            outcome=outcome, breakdown=breakdown, energy=energy_breakdown
        )

    def _serve_miss(self, query, navigational, timestamp) -> ServeResult:
        tracer = get_tracer()
        with tracer.span("radio_fetch", radio=self.radio.name) as radio_span:
            radio_latency = isolated_request_latency(
                self.radio, self.query_bytes_up, self.serp_bytes_down,
                self.server_time_s,
            )
            radio_parts = isolated_request_components(
                self.radio, self.query_bytes_up, self.serp_bytes_down,
                self.server_time_s,
            )
            radio_energy = (
                radio_parts.ramp_j + radio_parts.transfer_j
            ) + radio_parts.tail_j
            if tracer.enabled:
                radio_span.set_attrs(
                    model_latency_s=radio_latency, model_energy_j=radio_energy
                )
                self._trace_radio_states(tracer, timestamp)
        with tracer.span("browser_render"):
            render_s = self.browser.render(SERP_BYTES)
        lookup_s = self.cache.hashtable.lookup_latency_s
        latency = lookup_s + radio_latency + render_s
        energy = (
            latency * self.base_power_w
            + radio_energy
            + self.browser.render_energy_j(render_s)
        )
        breakdown = {
            "hash_table_lookup_s": lookup_s,
            "radio_s": radio_latency,
            "browser_rendering_s": render_s,
        }
        outcome = QueryOutcome(
            query=query,
            hit=False,
            source=_SOURCE_BY_RADIO[self.radio.name],
            latency_s=latency,
            energy_j=energy,
            timestamp=timestamp,
            navigational=navigational,
        )
        energy_breakdown = EnergyBreakdown(
            ramp_j=radio_parts.ramp_j,
            transfer_j=radio_parts.transfer_j,
            tail_j=radio_parts.tail_j,
            render_j=self.browser.render_energy_j(render_s),
            base_j=latency * self.base_power_w,
        )
        return ServeResult(
            outcome=outcome, breakdown=breakdown, energy=energy_breakdown
        )

    def _trace_radio_states(self, tracer, timestamp: float) -> None:
        """Emit the implied radio state sequence of one isolated request.

        Each miss is costed with the radio starting asleep (the Figure
        15 methodology), so the state machine deterministically walks
        SLEEP -> RAMP -> ACTIVE -> TAIL; the events attribute dwell time
        and energy to each state for trace analysis.
        """
        profile = self.radio
        transfer_s = (
            profile.request_rtt_s()
            + self.query_bytes_up / profile.uplink_bps
            + self.server_time_s
            + self.serp_bytes_down / profile.downlink_bps
        )
        t = timestamp
        for state, dwell_s, power_w in (
            ("ramp", profile.wakeup_s, profile.ramp_power_w),
            ("active", transfer_s, profile.active_power_w),
            ("tail", profile.tail_s, profile.tail_power_w),
        ):
            tracer.event(
                "radio_state",
                state=state,
                t_model=t,
                dwell_s=dwell_s,
                energy_j=dwell_s * power_w,
            )
            t += dwell_s

    # -- reference costs ------------------------------------------------------------

    def radio_only_cost(self, radio: Optional[RadioProfile] = None) -> tuple:
        """(latency, energy) of serving one query purely over a radio.

        This is the Figure 15 baseline: the same query served without
        PocketSearch, including page rendering and base device power.
        """
        profile = radio or self.radio
        radio_latency = isolated_request_latency(
            profile, self.query_bytes_up, self.serp_bytes_down, self.server_time_s
        )
        radio_energy = isolated_request_energy(
            profile, self.query_bytes_up, self.serp_bytes_down, self.server_time_s
        )
        render_s = self.browser.model.render_seconds(SERP_BYTES)
        latency = radio_latency + render_s
        energy = (
            latency * self.base_power_w
            + radio_energy
            + self.browser.render_energy_j(render_s)
        )
        return latency, energy
