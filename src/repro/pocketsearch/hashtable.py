"""The query hash table (Section 5.2.1, Figure 10).

Lives in DRAM and links query strings to search results.  Every entry
holds:

* the 64-bit hash of the query string (salted by a chain index so a query
  with more than two results spawns additional entries);
* two (result hash, ranking score) slots;
* a 64-bit flags word — one bit per slot records whether the user has
  ever accessed that query-result pair (used by the update protocol).

Two results per entry is the footprint-minimizing choice (Figure 11):
most queries have one or two popular results, so wider entries waste
slots while single-slot entries pay the per-entry overhead once per
result.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Fixed per-entry costs, in bytes.
QUERY_HASH_BYTES = 8
RESULT_HASH_BYTES = 8
SCORE_BYTES = 4
FLAGS_BYTES = 8
#: Bucket/pointer overhead of the in-memory table structure per entry.
ENTRY_OVERHEAD_BYTES = 24

#: The paper's choice of results per entry.
DEFAULT_RESULTS_PER_ENTRY = 2


def hash64(text: str, salt: int = 0) -> int:
    """Deterministic 64-bit hash of a string (stable across runs).

    Python's built-in ``hash`` is randomized per process, so the table
    uses the first 8 bytes of MD5 instead — the paper's two-argument hash
    function is modelled by mixing ``salt`` into the digest input.
    """
    digest = hashlib.md5(f"{salt}\x00{text}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class _Slot:
    result_hash: int
    score: float
    accessed: bool = False


@dataclass
class HashEntry:
    """One hash-table entry: up to ``capacity`` result slots."""

    query_hash: int
    capacity: int
    slots: List[_Slot] = field(default_factory=list)

    @property
    def is_full(self) -> bool:
        return len(self.slots) >= self.capacity

    def flags_word(self) -> int:
        """The 64-bit flags field: bit *i* set if slot *i* was accessed."""
        word = 0
        for i, slot in enumerate(self.slots):
            if slot.accessed:
                word |= 1 << i
        return word


def entry_bytes(results_per_entry: int) -> int:
    """Modelled DRAM bytes of one entry with the given slot count."""
    if results_per_entry <= 0:
        raise ValueError("results_per_entry must be positive")
    return (
        ENTRY_OVERHEAD_BYTES
        + QUERY_HASH_BYTES
        + results_per_entry * (RESULT_HASH_BYTES + SCORE_BYTES)
        + FLAGS_BYTES
    )


class QueryHashTable:
    """Query -> ranked search results index.

    Args:
        results_per_entry: slots per entry (the paper uses 2).
        lookup_latency_s: modelled DRAM lookup time (Table 4: ~10 us).
    """

    def __init__(
        self,
        results_per_entry: int = DEFAULT_RESULTS_PER_ENTRY,
        lookup_latency_s: float = 10e-6,
    ) -> None:
        if results_per_entry <= 0:
            raise ValueError("results_per_entry must be positive")
        if lookup_latency_s < 0:
            raise ValueError("lookup_latency_s must be non-negative")
        self.results_per_entry = results_per_entry
        self.lookup_latency_s = lookup_latency_s
        # Keyed by (query_hash, chain index).
        self._entries: Dict[Tuple[int, int], HashEntry] = {}
        self.total_lookups = 0

    # -- write path ---------------------------------------------------------

    def insert(
        self, query: str, result_hash: int, score: float, accessed: bool = False
    ) -> None:
        """Insert or update one (query, result) pair.

        If the pair exists, its score is replaced only when the new score
        is higher (the conflict rule of Section 5.4).  New results go in
        the first free slot, chaining a new entry when all are full.
        """
        if not 0 <= score:
            raise ValueError(f"score must be non-negative, got {score}")
        chain = 0
        while True:
            key = (hash64(query, chain), chain)
            entry = self._entries.get(key)
            if entry is None:
                entry = HashEntry(
                    query_hash=key[0], capacity=self.results_per_entry
                )
                self._entries[key] = entry
            for slot in entry.slots:
                if slot.result_hash == result_hash:
                    slot.score = max(slot.score, score)
                    slot.accessed = slot.accessed or accessed
                    return
            if not entry.is_full:
                entry.slots.append(_Slot(result_hash, score, accessed))
                return
            chain += 1

    def set_score(self, query: str, result_hash: int, score: float) -> None:
        """Overwrite a pair's score (used by the personalized ranker)."""
        slot = self._find_slot(query, result_hash)
        if slot is None:
            raise KeyError(f"pair ({query!r}, {result_hash}) not cached")
        slot.score = score

    def mark_accessed(self, query: str, result_hash: int) -> None:
        """Set the pair's access flag (drives update-time retention)."""
        slot = self._find_slot(query, result_hash)
        if slot is None:
            raise KeyError(f"pair ({query!r}, {result_hash}) not cached")
        slot.accessed = True

    def remove(self, query: str, result_hash: int) -> bool:
        """Remove one pair; returns whether it existed.

        Later chained slots are compacted into the freed position so
        lookups never see a gap.
        """
        chain = 0
        found = False
        all_slots: List[_Slot] = []
        keys = []
        while True:
            key = (hash64(query, chain), chain)
            entry = self._entries.get(key)
            if entry is None:
                break
            keys.append(key)
            all_slots.extend(entry.slots)
            chain += 1
        if not keys:
            return False
        kept = [s for s in all_slots if s.result_hash != result_hash]
        found = len(kept) != len(all_slots)
        if not found:
            return False
        self._rewrite_chain(keys, kept)
        return True

    def _rewrite_chain(
        self, keys: List[Tuple[int, int]], slots: List[_Slot]
    ) -> None:
        for key in keys:
            del self._entries[key]
        for i in range(0, len(slots), self.results_per_entry):
            chain = i // self.results_per_entry
            key = keys[chain]
            self._entries[key] = HashEntry(
                query_hash=key[0],
                capacity=self.results_per_entry,
                slots=slots[i : i + self.results_per_entry],
            )

    # -- read path --------------------------------------------------------------

    def lookup(self, query: str) -> Optional[List[Tuple[int, float]]]:
        """All (result hash, score) pairs for a query, descending score.

        Returns ``None`` on a cache miss.  The walk follows chained
        entries until a missing chain index.
        """
        self.total_lookups += 1
        results: List[Tuple[int, float]] = []
        chain = 0
        while True:
            key = (hash64(query, chain), chain)
            entry = self._entries.get(key)
            if entry is None:
                break
            results.extend((s.result_hash, s.score) for s in entry.slots)
            chain += 1
        if not results:
            return None
        return sorted(results, key=lambda rs: rs[1], reverse=True)

    def contains(self, query: str) -> bool:
        key = (hash64(query, 0), 0)
        entry = self._entries.get(key)
        return entry is not None and bool(entry.slots)

    def slots_for(self, query: str) -> List[Tuple[int, float, bool]]:
        """(result hash, score, accessed) per slot, in chain order."""
        out = []
        chain = 0
        while True:
            key = (hash64(query, chain), chain)
            entry = self._entries.get(key)
            if entry is None:
                break
            out.extend((s.result_hash, s.score, s.accessed) for s in entry.slots)
            chain += 1
        return out

    def _find_slot(self, query: str, result_hash: int) -> Optional[_Slot]:
        chain = 0
        while True:
            key = (hash64(query, chain), chain)
            entry = self._entries.get(key)
            if entry is None:
                return None
            for slot in entry.slots:
                if slot.result_hash == result_hash:
                    return slot
            chain += 1

    # -- footprint ----------------------------------------------------------------

    @property
    def n_entries(self) -> int:
        return len(self._entries)

    @property
    def n_pairs(self) -> int:
        return sum(len(e.slots) for e in self._entries.values())

    @property
    def footprint_bytes(self) -> int:
        """Modelled DRAM footprint (Figure 11's y-axis)."""
        return self.n_entries * entry_bytes(self.results_per_entry)

    def entries(self) -> Iterator[HashEntry]:
        return iter(self._entries.values())

    # -- wire format ------------------------------------------------------------

    _HEADER = struct.Struct("<4sBI")  # magic, width, entry count
    _ENTRY_HEAD = struct.Struct("<QHB")  # query hash, chain idx, slot count
    _SLOT = struct.Struct("<QfB")  # result hash, score, accessed
    _MAGIC = b"PSHT"

    def serialize(self) -> bytes:
        """Encode the table as the update protocol's wire format.

        This is what the phone uploads to the server in Figure 14 and
        what the server ships back: a compact, self-describing blob.
        """
        parts = [self._HEADER.pack(self._MAGIC, self.results_per_entry, self.n_entries)]
        for (query_hash, chain), entry in self._entries.items():
            parts.append(self._ENTRY_HEAD.pack(query_hash, chain, len(entry.slots)))
            for slot in entry.slots:
                parts.append(
                    self._SLOT.pack(slot.result_hash, slot.score, int(slot.accessed))
                )
        return b"".join(parts)

    @classmethod
    def deserialize(cls, data: bytes, lookup_latency_s: float = 10e-6) -> "QueryHashTable":
        """Decode a :meth:`serialize` blob back into a table.

        Raises:
            ValueError: on a malformed or truncated blob.
        """
        if len(data) < cls._HEADER.size:
            raise ValueError("hash-table blob too short for header")
        magic, width, n_entries = cls._HEADER.unpack_from(data, 0)
        if magic != cls._MAGIC:
            raise ValueError(f"bad hash-table magic {magic!r}")
        table = cls(results_per_entry=width, lookup_latency_s=lookup_latency_s)
        offset = cls._HEADER.size
        for _ in range(n_entries):
            if offset + cls._ENTRY_HEAD.size > len(data):
                raise ValueError("truncated hash-table blob (entry head)")
            query_hash, chain, n_slots = cls._ENTRY_HEAD.unpack_from(data, offset)
            offset += cls._ENTRY_HEAD.size
            entry = HashEntry(query_hash=query_hash, capacity=width)
            for _ in range(n_slots):
                if offset + cls._SLOT.size > len(data):
                    raise ValueError("truncated hash-table blob (slot)")
                result_hash, score, accessed = cls._SLOT.unpack_from(data, offset)
                offset += cls._SLOT.size
                entry.slots.append(_Slot(result_hash, score, bool(accessed)))
            table._entries[(query_hash, chain)] = entry
        if offset != len(data):
            raise ValueError(
                f"hash-table blob has {len(data) - offset} trailing bytes"
            )
        return table
