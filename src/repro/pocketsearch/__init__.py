"""PocketSearch: the paper's showcase pocket cloudlet (Section 5).

A search-and-advertisement cache living on the phone:

* :mod:`content` — extracts <query, result, volume> triplets from search
  logs and selects what to cache (memory or saturation threshold);
* :mod:`hashtable` — the DRAM query hash table (two results per entry,
  chained overflow, access flags);
* :mod:`database` — the 32-file custom search-result database on flash;
* :mod:`ranking` — click-driven personalized ranking (Equations 1-2);
* :mod:`cache` — the community + personalization cache composition;
* :mod:`manager` — the server-side update protocol (patch files);
* :mod:`engine` — the on-device service path with latency/energy costs.
"""

from repro.pocketsearch.content import (
    CacheContent,
    CacheEntry,
    ContentPolicy,
    build_cache_content,
    triplets_from_log,
)
from repro.pocketsearch.hashtable import (
    HashEntry,
    QueryHashTable,
    hash64,
)
from repro.pocketsearch.database import ResultDatabase, StoredResult
from repro.pocketsearch.ranking import PersonalizedRanker
from repro.pocketsearch.cache import CacheLookup, PocketSearchCache
from repro.pocketsearch.manager import CacheUpdateServer, UpdatePatch
from repro.pocketsearch.suggest import SuggestIndex, Suggestion
from repro.pocketsearch.engine import PocketSearchEngine, ServeResult

__all__ = [
    "CacheContent",
    "CacheEntry",
    "CacheLookup",
    "CacheUpdateServer",
    "ContentPolicy",
    "HashEntry",
    "PersonalizedRanker",
    "PocketSearchCache",
    "PocketSearchEngine",
    "QueryHashTable",
    "ResultDatabase",
    "ServeResult",
    "SuggestIndex",
    "Suggestion",
    "StoredResult",
    "UpdatePatch",
    "build_cache_content",
    "hash64",
    "triplets_from_log",
]
