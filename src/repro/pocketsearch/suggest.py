"""Instant result suggestions while the user types (Figure 1).

The PocketSearch prototype shows *actual search results* in the
auto-suggest box as the query is typed — possible only because cached
lookups cost microseconds, not radio seconds.  This module provides the
prefix index behind that box: cached query strings sorted for binary
search, each suggestion ranked by the best ranking score among the
query's cached results.

The paper contrasts this with contemporary phones, which either ship
every keystroke to the server over the radio or substring-match browser
history (navigational queries only).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional

from repro.pocketsearch.cache import PocketSearchCache

#: Modelled per-keystroke lookup latency: a binary search plus a short
#: scan over the prefix range, all in DRAM.
SUGGEST_LOOKUP_S = 50e-6


@dataclass(frozen=True)
class Suggestion:
    """One auto-suggest row: a cached query with its best result."""

    query: str
    top_result_hash: int
    score: float


class SuggestIndex:
    """Prefix index over the queries cached by a PocketSearch cache.

    Args:
        cache: the cache whose query registry backs the index.

    The index is rebuilt lazily: mutations to the cache are picked up on
    the next :meth:`refresh` (the engine refreshes on every suggest
    call).  Staleness is detected through the registry's mutation
    *version*, not its length — a server update that replaces N queries
    with N different ones changes the version even though the size is
    unchanged.
    """

    def __init__(self, cache: PocketSearchCache) -> None:
        self.cache = cache
        self._sorted_queries: List[str] = []
        self._registry_version: Optional[int] = None
        self.refresh()

    def refresh(self) -> None:
        """Re-sync the sorted query list with the cache registry.

        No-op when the registry's mutation version is unchanged, so
        calling this on every keystroke costs one integer compare.
        """
        registry = self.cache.query_registry
        version = getattr(registry, "version", None)
        if version is not None and version == self._registry_version:
            return
        self._sorted_queries = sorted(registry.values())
        self._registry_version = version

    @property
    def n_queries(self) -> int:
        return len(self._sorted_queries)

    def complete(self, prefix: str, k: int = 5) -> List[Suggestion]:
        """Top-``k`` cached queries starting with ``prefix``.

        Ranked by the best score among each query's cached results, so a
        staple the user clicks daily floats to the top of the box.

        Args:
            prefix: the partially typed query (leading whitespace kept,
                matching is case-insensitive).
            k: maximum suggestions to return.

        Returns:
            Suggestions in descending score order; empty for an empty
            prefix or when nothing matches.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        needle = prefix.lower()
        if not needle.strip():
            return []
        self.refresh()
        lo = bisect.bisect_left(self._sorted_queries, needle)
        suggestions: List[Suggestion] = []
        for query in self._sorted_queries[lo:]:
            if not query.lower().startswith(needle):
                break
            results = self.cache.hashtable.lookup(query)
            if not results:
                continue
            top_hash, top_score = results[0]
            suggestions.append(
                Suggestion(query=query, top_result_hash=top_hash, score=top_score)
            )
        suggestions.sort(key=lambda s: -s.score)
        return suggestions[:k]

    def lookup_latency_s(self) -> float:
        """Modelled cost of one keystroke's suggestion lookup."""
        return SUGGEST_LOOKUP_S
