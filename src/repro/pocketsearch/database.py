"""The custom flash database of search results (Section 5.2.2, Figure 13).

Search results are stored once each (shared across all queries that reach
them) in a small, fixed number of plain files on flash — 32 by default,
the paper's measured sweet spot between flash fragmentation (few results
per file waste page-rounded space) and retrieval time (huge per-file
headers are slow to parse).

Each file holds a header line of (result hash, offset) pairs followed by
the result records.  A result's file is chosen by ``hash % n_files``.
Retrieval cost = directory lookup + header read + header parse + record
page read, all modelled through the flash filesystem substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.pocketsearch.hashtable import hash64
from repro.storage.filesystem import FlashFilesystem

#: The paper's file count (Figure 12).
DEFAULT_N_FILES = 32

#: Bytes one (hash value, offset) header entry occupies in a file.
HEADER_ENTRY_BYTES = 20

#: Modelled CPU time to parse one header entry while locating a result.
HEADER_PARSE_S_PER_ENTRY = 50e-6

#: Per-file directory lookup cost component that grows with file count
#: (flat-directory scan on the mobile filesystem).
DIRECTORY_SCAN_S_PER_FILE = 4e-6


@dataclass(frozen=True)
class StoredResult:
    """Locator and metadata of one stored search result."""

    url: str
    result_hash: int
    file_index: int
    offset: int
    record_bytes: int


@dataclass(frozen=True)
class FetchResult:
    """Cost and metadata of one database retrieval."""

    stored: StoredResult
    latency_s: float
    energy_j: float


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of a database compaction pass."""

    reclaimed_bytes: int
    live_results: int
    latency_s: float
    energy_j: float


class ResultDatabase:
    """The n-file search-result store.

    Args:
        filesystem: flash filesystem to host the files.
        n_files: number of database files (paper default: 32).
        name_prefix: file-name prefix within the filesystem namespace.
    """

    def __init__(
        self,
        filesystem: FlashFilesystem,
        n_files: int = DEFAULT_N_FILES,
        name_prefix: str = "psdb",
    ) -> None:
        if n_files <= 0:
            raise ValueError(f"n_files must be positive, got {n_files}")
        self.filesystem = filesystem
        self.n_files = n_files
        self.name_prefix = name_prefix
        self._index: Dict[int, StoredResult] = {}
        self._file_sizes: List[int] = [0] * n_files
        self._file_entries: List[int] = [0] * n_files
        self._garbage_bytes = 0
        for i in range(n_files):
            filesystem.create(self._file_name(i))

    def _file_name(self, i: int) -> str:
        return f"{self.name_prefix}.{i:04d}"

    # -- write path ----------------------------------------------------------

    def add_result(self, url: str, record_bytes: int) -> StoredResult:
        """Store one result record; idempotent per URL.

        Appends the record to its hash-selected file and accounts the
        header growth (the (hash, offset) pair added to the file's first
        line).
        """
        if record_bytes <= 0:
            raise ValueError(f"record_bytes must be positive, got {record_bytes}")
        result_hash = hash64(url)
        existing = self._index.get(result_hash)
        if existing is not None:
            return existing
        file_index = result_hash % self.n_files
        offset = self._file_sizes[file_index]
        stored = StoredResult(
            url=url,
            result_hash=result_hash,
            file_index=file_index,
            offset=offset,
            record_bytes=record_bytes,
        )
        self.filesystem.append(
            self._file_name(file_index), record_bytes + HEADER_ENTRY_BYTES
        )
        self._file_sizes[file_index] += record_bytes + HEADER_ENTRY_BYTES
        self._file_entries[file_index] += 1
        self._index[result_hash] = stored
        return stored

    # -- read path ---------------------------------------------------------------

    def contains(self, result_hash: int) -> bool:
        return result_hash in self._index

    def lookup(self, result_hash: int) -> Optional[StoredResult]:
        return self._index.get(result_hash)

    def fetch(self, result_hash: int) -> FetchResult:
        """Retrieve one result and return its modelled cost.

        Cost components (Figure 13's retrieval walk):

        1. directory scan + file open (filesystem overhead, grows mildly
           with the number of files);
        2. read + parse the header line to find the record offset;
        3. read the pages covering the record.

        Raises:
            KeyError: if the result is not stored.
        """
        stored = self._index.get(result_hash)
        if stored is None:
            raise KeyError(f"result hash {result_hash} not in database")
        name = self._file_name(stored.file_index)
        entries = self._file_entries[stored.file_index]
        header_bytes = entries * HEADER_ENTRY_BYTES

        latency = DIRECTORY_SCAN_S_PER_FILE * self.n_files
        energy = 0.0

        if header_bytes > 0:
            header_cost = self.filesystem.read(name, 0, header_bytes)
            latency += header_cost.latency_s
            energy += header_cost.energy_j
        latency += entries * HEADER_PARSE_S_PER_ENTRY

        record_cost = self.filesystem.read(
            name, stored.offset, stored.record_bytes
        )
        latency += record_cost.latency_s
        energy += record_cost.energy_j
        return FetchResult(stored=stored, latency_s=latency, energy_j=energy)

    # -- removal and compaction ------------------------------------------------

    def remove_result(self, result_hash: int) -> bool:
        """Drop a result from the index; its record becomes garbage.

        Flash is append-only at file granularity, so removal only
        unlinks the record; the bytes are reclaimed by :meth:`compact`
        (run during charge-time updates).  Returns whether the result
        existed.
        """
        stored = self._index.pop(result_hash, None)
        if stored is None:
            return False
        self._file_entries[stored.file_index] -= 1
        self._garbage_bytes += stored.record_bytes + HEADER_ENTRY_BYTES
        return True

    @property
    def garbage_bytes(self) -> int:
        """Unreachable record bytes awaiting compaction."""
        return self._garbage_bytes

    def compact(self) -> "CompactionResult":
        """Rewrite the database files without garbage records.

        Models the charge-time maintenance pass of the update protocol:
        every live record is read and re-programmed into fresh files, so
        the cost scales with live data, and the page-rounded footprint
        shrinks by the collected garbage.

        Returns:
            A :class:`CompactionResult` with reclaimed bytes and the
            modelled latency/energy of the rewrite.
        """
        live = sorted(self._index.values(), key=lambda s: (s.file_index, s.offset))
        latency = 0.0
        energy = 0.0
        # Read every live record out of the old files.
        for stored in live:
            cost = self.filesystem.read(
                self._file_name(stored.file_index), stored.offset, stored.record_bytes
            )
            latency += cost.latency_s
            energy += cost.energy_j
        # Rebuild the files from scratch.
        for i in range(self.n_files):
            self.filesystem.delete(self._file_name(i))
            self.filesystem.create(self._file_name(i))
        self._file_sizes = [0] * self.n_files
        self._file_entries = [0] * self.n_files
        reclaimed = self._garbage_bytes
        self._garbage_bytes = 0
        old_index = list(self._index.values())
        self._index.clear()
        for stored in old_index:
            new_stored = self.add_result(stored.url, stored.record_bytes)
            # add_result models the program cost through the filesystem;
            # fold an approximation of it into the compaction totals.
            latency += self.filesystem.open_overhead_s
            energy += self.filesystem.open_energy_j
            assert new_stored.result_hash == stored.result_hash
        return CompactionResult(
            reclaimed_bytes=reclaimed,
            live_results=len(old_index),
            latency_s=latency,
            energy_j=energy,
        )

    # -- stats ---------------------------------------------------------------------

    @property
    def n_results(self) -> int:
        return len(self._index)

    @property
    def logical_bytes(self) -> int:
        return sum(self._file_sizes)

    @property
    def allocated_bytes(self) -> int:
        return sum(
            self.filesystem.file_allocated_bytes(self._file_name(i))
            for i in range(self.n_files)
        )

    @property
    def fragmentation_bytes(self) -> int:
        """Page-rounding waste across the database files."""
        return self.allocated_bytes - self.logical_bytes

    def file_stats(self) -> List[dict]:
        return [
            {
                "file": self._file_name(i),
                "entries": self._file_entries[i],
                "bytes": self._file_sizes[i],
            }
            for i in range(self.n_files)
        ]
