"""CSV export of every figure's data series.

``export_all(directory)`` writes one CSV per paper figure so the actual
plots can be regenerated with any charting tool.  The CLI exposes it as
``python -m repro export``.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional

from repro.experiments import (
    cachedesign,
    characterization,
    hitrate,
    performance,
)
from repro.logs import analysis
from repro.experiments.common import default_log
from repro.sim.powertrace import sample_power


def _write(directory: str, name: str, headers: List[str], rows) -> str:
    path = os.path.join(directory, f"{name}.csv")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def export_fig4(directory: str, seed: int = 23) -> str:
    """Figure 4 CDF curves, downsampled to 200 points per subset."""
    log = default_log(seed=seed).month(0)
    series = analysis.figure4_series(log)
    rows = []
    for subset, curves in series.items():
        cdf = curves["queries"]
        n = cdf.n_items
        if n == 0:
            continue
        step = max(1, n // 200)
        for k in range(1, n + 1, step):
            rows.append([subset, "queries", k, f"{cdf.coverage_at(k):.5f}"])
        rcdf = curves["results"]
        step = max(1, rcdf.n_items // 200)
        for k in range(1, rcdf.n_items + 1, step):
            rows.append([subset, "results", k, f"{rcdf.coverage_at(k):.5f}"])
    return _write(
        directory, "fig4_cdf", ["subset", "axis", "top_items", "coverage"], rows
    )


def export_fig5(directory: str, seed: int = 23) -> str:
    f5 = characterization.figure5(seed=seed)
    rows = [
        [f"{x:.2f}", f"{y:.5f}"] for x, y in zip(f5["grid"], f5["cdf"])
    ]
    return _write(
        directory, "fig5_cdf", ["new_query_probability", "user_fraction"], rows
    )


def export_fig7(directory: str, seed: int = 23) -> str:
    rows = [[k, f"{v:.5f}"] for k, v in cachedesign.figure7(seed=seed)]
    return _write(directory, "fig7_coverage", ["pairs", "coverage"], rows)


def export_fig8(directory: str, seed: int = 23) -> str:
    rows = [
        [f"{r['coverage']:.3f}", r["pairs"], r["dram_bytes"], r["flash_bytes"]]
        for r in cachedesign.figure8(seed=seed)
    ]
    return _write(
        directory,
        "fig8_footprint",
        ["coverage", "pairs", "dram_bytes", "flash_bytes"],
        rows,
    )


def export_fig11(directory: str, seed: int = 23) -> str:
    rows = [
        [r["results_per_entry"], r["entries"], r["footprint_bytes"]]
        for r in cachedesign.figure11(seed=seed)
    ]
    return _write(
        directory,
        "fig11_hashtable",
        ["results_per_entry", "entries", "footprint_bytes"],
        rows,
    )


def export_fig12(directory: str, seed: int = 23) -> str:
    rows = [
        [
            r["n_files"],
            f"{r['mean_fetch2_s']:.6f}",
            f"{r['std_fetch2_s']:.6f}",
            r["fragmentation_bytes"],
        ]
        for r in cachedesign.figure12(seed=seed)
    ]
    return _write(
        directory,
        "fig12_files",
        ["n_files", "mean_fetch2_s", "std_fetch2_s", "fragmentation_bytes"],
        rows,
    )


def export_fig15(directory: str, seed: int = 23) -> str:
    f15 = performance.figure15(seed=seed)
    rows = [
        [
            path,
            f"{d['mean_latency_s']:.6f}",
            f"{d['mean_energy_j']:.6f}",
            f"{d.get('latency_speedup', 1):.3f}",
            f"{d.get('energy_ratio', 1):.3f}",
        ]
        for path, d in f15.items()
    ]
    return _write(
        directory,
        "fig15_bars",
        ["path", "latency_s", "energy_j", "latency_speedup", "energy_ratio"],
        rows,
    )


def export_fig16(directory: str, seed: int = 23, samples: int = 400) -> str:
    f16 = performance.figure16(seed=seed)
    segments = f16["radio"]["segments"]
    powers = sample_power(segments, samples, base_power_w=0.9)
    end = segments[-1].t_end
    rows = [
        [f"{(i + 0.5) / samples * end:.3f}", f"{p:.4f}"]
        for i, p in enumerate(powers)
    ]
    return _write(directory, "fig16_trace", ["time_s", "device_power_w"], rows)


def export_fig17(
    directory: str, users_per_class: int = 40, seed: int = 23
) -> str:
    f17 = hitrate.figure17(users_per_class=users_per_class, seed=seed)
    rows = []
    for mode, data in f17.items():
        for key, value in data.items():
            rows.append([mode, key, f"{value:.5f}"])
    return _write(directory, "fig17_hitrate", ["mode", "class", "hit_rate"], rows)


def export_fig19(
    directory: str, users_per_class: int = 40, seed: int = 23
) -> str:
    f19 = hitrate.figure19(users_per_class=users_per_class, seed=seed)
    rows = [
        [name, f"{split['navigational']:.5f}", f"{split['non_navigational']:.5f}"]
        for name, split in f19.items()
    ]
    return _write(
        directory, "fig19_nav", ["class", "navigational", "non_navigational"], rows
    )


#: Exporters run by :func:`export_all`, keyed by artifact name.
EXPORTERS = {
    "fig4": export_fig4,
    "fig5": export_fig5,
    "fig7": export_fig7,
    "fig8": export_fig8,
    "fig11": export_fig11,
    "fig12": export_fig12,
    "fig15": export_fig15,
    "fig16": export_fig16,
    "fig17": export_fig17,
    "fig19": export_fig19,
}


def export_all(directory: str, only: Optional[List[str]] = None) -> Dict[str, str]:
    """Write every figure's CSV into ``directory``; returns name -> path."""
    os.makedirs(directory, exist_ok=True)
    out = {}
    for name, exporter in EXPORTERS.items():
        if only is not None and name not in only:
            continue
        out[name] = exporter(directory)
    return out
