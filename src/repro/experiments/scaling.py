"""Section 2 experiments: Table 1, Figure 2, Table 2."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.nvmscaling.capacity import TABLE2_BUDGET_BYTES, table2_rows
from repro.nvmscaling.projection import (
    GB,
    CapacityProjection,
    ScalingScenario,
    project_capacity_series,
)
from repro.nvmscaling.trends import TECHNOLOGY_ROADMAP


def table1() -> List[dict]:
    """Table 1: the technology scaling trend rows."""
    return [
        {
            "year": p.year,
            "technology": p.technology,
            "tech_nm": p.feature_nm,
            "scaling_factor": p.scaling_factor,
            "chip_stack": p.chip_stack,
            "cell_layers": p.cell_layers,
            "bits_per_cell": p.bits_per_cell,
        }
        for p in TECHNOLOGY_ROADMAP
    ]


def figure2() -> Dict[str, List[CapacityProjection]]:
    """Figure 2: capacity evolution per scaling scenario."""
    return {
        scenario.value: project_capacity_series(scenario)
        for scenario in ScalingScenario
    }


def figure2_milestones() -> Dict[str, float]:
    """The headline numbers the paper calls out from Figure 2."""
    all_techniques = project_capacity_series(ScalingScenario.ALL_TECHNIQUES)
    by_year = {p.year: p for p in all_techniques}
    return {
        "high_end_2018_gb": by_year[2018].high_end_gb,
        "low_end_2018_gb": by_year[2018].low_end_gb,
        "low_end_final_gb": all_techniques[-1].low_end_gb,
    }


def table2() -> List[Tuple[str, int, int]]:
    """Table 2: items storable in the 25.6 GB cloudlet budget."""
    return table2_rows(TABLE2_BUDGET_BYTES)
