"""Ablations of PocketSearch's design decisions (DESIGN.md section 6).

* baseline comparison: PocketSearch vs plain LRU vs browser URL-substring
  matching vs no cache, replayed over the same user streams;
* ranking-decay sweep: how the Equations (1)-(2) lambda affects how often
  the user's clicked result is ranked first;
* update cadence and shared storage are covered by
  :mod:`repro.experiments.hitrate` and :mod:`repro.experiments.cachedesign`.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.browser_cache import BrowserUrlCache
from repro.baselines.lru import LruQueryCache
from repro.experiments.common import default_content, default_log
from repro.logs.generator import SearchLog
from repro.logs.schema import MONTH_SECONDS
from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import CacheContent
from repro.pocketsearch.database import ResultDatabase
from repro.pocketsearch.engine import PocketSearchEngine
from repro.pocketsearch.hashtable import QueryHashTable, hash64
from repro.pocketsearch.ranking import PersonalizedRanker
from repro.sim.replay import make_cache, CacheMode, select_replay_users
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash


def _baseline_user_rates(
    log: SearchLog, content: CacheContent, uid: int, t0: float, t1: float
) -> Tuple[float, float, float]:
    """(PocketSearch, LRU, browser) hit rates of one user's stream."""
    stream = log.for_user(uid).window(t0, t1)
    cache = make_cache(content, CacheMode.FULL)
    engine = PocketSearchEngine(cache)
    lru = LruQueryCache(capacity=max(content.n_pairs, 1))
    browser = BrowserUrlCache()
    ps_hits = lru_hits = browser_hits = 0
    for i in range(stream.n_events):
        query = stream.query_string(int(stream.query_keys[i]))
        url = stream.result_url(int(stream.result_keys[i]))
        outcome = engine.serve_query(query, url)
        ps_hits += int(outcome.outcome.hit)
        if lru.lookup(query) is not None:
            lru_hits += 1
        else:
            lru.insert(query, url)
        if browser.lookup(query) is not None:
            browser_hits += 1
        browser.visit(url)
    n = max(stream.n_events, 1)
    return ps_hits / n, lru_hits / n, browser_hits / n


_BASELINE_STATE: Dict[str, object] = {}


def _baseline_init(log: SearchLog, content: CacheContent) -> None:
    _BASELINE_STATE.update(log=log, content=content)


def _baseline_worker(args: Tuple[int, float, float]) -> Tuple[float, float, float]:
    uid, t0, t1 = args
    return _baseline_user_rates(
        _BASELINE_STATE["log"], _BASELINE_STATE["content"], uid, t0, t1
    )


def baseline_hit_rates(
    users_per_class: int = 30, seed: int = 23, workers: int = 1
) -> Dict[str, float]:
    """Hit rates of PocketSearch and the baselines on identical streams.

    The LRU cache gets the same entry budget as PocketSearch's pair count
    (a generous setting: it ignores DRAM/flash structure).  The browser
    cache serves only substring-matching navigational queries.

    Per-user streams are independent, so ``workers > 1`` fans them out to
    a process pool; rates are reassembled in user order and are identical
    to the serial run.
    """
    log = default_log(seed=seed)
    content = default_content(seed=seed)
    users = select_replay_users(log, month=1, users_per_class=users_per_class)
    t0, t1 = MONTH_SECONDS, 2 * MONTH_SECONDS
    all_uids = [uid for uids in users.values() for uid in uids]

    if workers > 1 and len(all_uids) > 1:
        ctx = multiprocessing.get_context()
        with ctx.Pool(
            processes=min(workers, len(all_uids)),
            initializer=_baseline_init,
            initargs=(log, content),
        ) as pool:
            triples = pool.map(
                _baseline_worker, [(uid, t0, t1) for uid in all_uids]
            )
    else:
        triples = [
            _baseline_user_rates(log, content, uid, t0, t1)
            for uid in all_uids
        ]

    ps_rates: List[float] = [t[0] for t in triples]
    lru_rates: List[float] = [t[1] for t in triples]
    browser_rates: List[float] = [t[2] for t in triples]

    return {
        "pocketsearch": float(np.mean(ps_rates)),
        "lru": float(np.mean(lru_rates)),
        "browser_substring": float(np.mean(browser_rates)),
        "no_cache": 0.0,
    }


def ranking_lambda_sweep(
    lambdas=(0.0, 0.05, 0.1, 0.3, 0.7),
    seed: int = 23,
    users_per_class: int = 10,
) -> Dict[float, float]:
    """How the decay rate affects top-rank accuracy.

    Measures, over full-cache replays, the fraction of hits where the
    result the user clicks is ranked first by the cache at lookup time.
    """
    log = default_log(seed=seed)
    content = default_content(seed=seed)
    users = select_replay_users(log, month=1, users_per_class=users_per_class)
    t0, t1 = MONTH_SECONDS, 2 * MONTH_SECONDS

    out = {}
    for lam in lambdas:
        correct = 0
        total = 0
        for uids in users.values():
            for uid in uids:
                stream = log.for_user(uid).window(t0, t1)
                cache = PocketSearchCache(
                    database=ResultDatabase(FlashFilesystem(NandFlash())),
                    ranker=PersonalizedRanker(decay_lambda=lam),
                )
                cache.load_community(content)
                for i in range(stream.n_events):
                    query = stream.query_string(int(stream.query_keys[i]))
                    url = stream.result_url(int(stream.result_keys[i]))
                    lookup = cache.lookup(query)
                    if lookup.hit and len(lookup.results) > 1:
                        total += 1
                        if lookup.results[0][0] == hash64(url):
                            correct += 1
                    cache.record_click(query, url)
        out[lam] = correct / total if total else float("nan")
    return out


def results_per_entry_hit_cost(seed: int = 23) -> Dict[int, dict]:
    """Entry-width ablation beyond footprint: lookup result completeness.

    For each slot width, loads the cache and reports footprint plus the
    mean number of chained entries walked per lookup (wider entries mean
    fewer chain steps for multi-result queries).
    """
    content = default_content(seed=seed)
    out = {}
    for width in (1, 2, 4):
        table = QueryHashTable(results_per_entry=width)
        for entry in content.entries:
            table.insert(entry.query, hash64(entry.url), entry.score)
        chain_lengths = []
        for query in sorted({e.query for e in content.entries}):
            slots = table.slots_for(query)
            chains = -(-len(slots) // width) if slots else 0
            chain_lengths.append(chains)
        out[width] = {
            "footprint_bytes": table.footprint_bytes,
            "mean_chain_entries": float(np.mean(chain_lengths)),
        }
    return out
