"""Section 4 experiments: Figures 4 and 5, Table 3, and the mobile vs
desktop repeatability contrast (Section 4.2)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.logs import analysis
from repro.logs.schema import Triplet
from repro.experiments.common import default_log, desktop_log
from repro.pocketsearch.content import triplets_from_log


def figure4(seed: int = 23) -> Dict[str, dict]:
    """Figure 4: query and result volume CDFs across subsets.

    For each subset reports the item counts needed for fixed coverage
    levels and the coverage at the paper-equivalent top counts.
    """
    log = default_log(seed=seed).month(0)
    series = analysis.figure4_series(log)
    out: Dict[str, dict] = {}
    k60 = series["all"]["queries"].items_for_coverage(0.60)
    for name, curves in series.items():
        q, r = curves["queries"], curves["results"]
        out[name] = {
            "events": int(q.counts.sum()) if q.n_items else 0,
            "distinct_queries": q.n_items,
            "distinct_results": r.n_items,
            "queries_for_60pct": q.items_for_coverage(0.60),
            "results_for_60pct": r.items_for_coverage(0.60),
            "query_coverage_at_k60": q.coverage_at(k60),
            "result_coverage_at_k60": r.coverage_at(k60),
        }
    out["_k60"] = k60
    return out


def figure5(seed: int = 23) -> dict:
    """Figure 5: CDF of per-user new-query probability over a month."""
    log = default_log(seed=seed).month(0)
    probs = analysis.user_new_pair_probability(log)
    grid, cdf = analysis.new_pair_probability_cdf(probs)
    values = np.asarray(sorted(probs.values()))
    nav_probs = analysis.user_new_pair_probability(log.navigational_only(True))
    non_probs = analysis.user_new_pair_probability(log.navigational_only(False))
    return {
        "grid": grid,
        "cdf": cdf,
        "median_new_probability": float(np.median(values)),
        "users_at_most_30pct_new": float((values <= 0.30).mean()),
        "mean_repeat_rate": float(1 - values.mean()),
        "nav_median_new": float(
            np.median(sorted(nav_probs.values()))
        ) if nav_probs else float("nan"),
        "non_nav_median_new": float(
            np.median(sorted(non_probs.values()))
        ) if non_probs else float("nan"),
    }


def table3(limit: int = 10, seed: int = 23) -> List[Triplet]:
    """Table 3: the top of the triplet ranking."""
    return triplets_from_log(default_log(seed=seed).month(0))[:limit]


def mobile_vs_desktop(seed: int = 23) -> dict:
    """Section 4.2: mobile vs desktop repeat rates and concentration."""
    mobile = default_log(seed=seed).month(0)
    desktop = desktop_log().month(0)
    mobile_q = analysis.query_volume_cdf(mobile)
    desktop_q = analysis.query_volume_cdf(desktop)
    k60 = mobile_q.items_for_coverage(0.60)
    return {
        "mobile_repeat_rate": analysis.overall_repeat_rate(mobile),
        "desktop_repeat_rate": analysis.overall_repeat_rate(desktop),
        "mobile_coverage_at_k60": mobile_q.coverage_at(k60),
        "desktop_coverage_at_k60": desktop_q.coverage_at(k60),
        "k60": k60,
    }
