"""Section 5 design-space experiments: Figures 7, 8, 11, and 12."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.experiments.common import default_content, default_log
from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.content import (
    ContentPolicy,
    PAPER_OPERATING_POINT,
    build_cache_content,
    build_cache_content_from_model,
    coverage_curve,
)
from repro.pocketsearch.database import ResultDatabase
from repro.pocketsearch.hashtable import QueryHashTable, entry_bytes, hash64
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash


def figure7(seed: int = 23, points: int = 24) -> List[Tuple[int, float]]:
    """Figure 7: cumulative pair volume vs number of cached pairs."""
    log = default_log(seed=seed).month(0)
    n_pairs = len(np.unique(log.pair_ids))
    ks = np.unique(
        np.logspace(1, np.log10(max(n_pairs, 11)), points).astype(int)
    )
    return coverage_curve(log, ks.tolist())


def figure8(
    seed: int = 23,
    coverages: Tuple[float, ...] = (0.30, 0.40, 0.45, 0.50, 0.55, 0.58, 0.60),
) -> List[dict]:
    """Figure 8: DRAM and flash footprint vs aggregate covered volume.

    Builds a real hash table + database at each operating point and
    measures the modelled footprints.
    """
    log = default_log(seed=seed).month(0)
    rows = []
    for coverage in coverages:
        content = build_cache_content(
            log, ContentPolicy(target_coverage=coverage)
        )
        cache = PocketSearchCache.from_content(
            content,
            database=ResultDatabase(FlashFilesystem(NandFlash())),
        )
        rows.append(
            {
                "coverage": content.coverage,
                "pairs": content.n_pairs,
                "unique_results": content.n_unique_results,
                "dram_bytes": cache.hashtable.footprint_bytes,
                "flash_bytes": cache.database.logical_bytes,
                "flash_allocated_bytes": cache.database.allocated_bytes,
            }
        )
    return rows


def figure11(
    seed: int = 23, slots: Tuple[int, ...] = (1, 2, 3, 4, 6, 8)
) -> List[dict]:
    """Figure 11: hash-table footprint vs results per entry.

    Uses the server's long-horizon (model-level) cache content — the
    design study the paper ran over its full multi-month logs, where a
    third of cached queries link to two or more results.  Two results
    per entry then minimizes the footprint: wider entries waste slots on
    single-result queries, single-slot entries pay the per-entry
    overhead once per result.
    """
    log = default_log(seed=seed)
    content = build_cache_content_from_model(
        log.community, PAPER_OPERATING_POINT
    )
    rows = []
    for width in slots:
        table = QueryHashTable(results_per_entry=width)
        for entry in content.entries:
            table.insert(entry.query, hash64(entry.url), entry.score)
        rows.append(
            {
                "results_per_entry": width,
                "entries": table.n_entries,
                "entry_bytes": entry_bytes(width),
                "footprint_bytes": table.footprint_bytes,
            }
        )
    return rows


def figure12(
    seed: int = 23,
    file_counts: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
    probe_results: int = 40,
) -> List[dict]:
    """Figure 12: retrieval time for two results vs database file count.

    For each file count, stores the full cache content and measures the
    modelled time to retrieve two search results (averaged over a probe
    sample), along with flash fragmentation — the other half of the
    tradeoff that makes 32 files the paper's sweet spot.
    """
    content = default_content(seed=seed)
    urls = []
    seen = set()
    for entry in content.entries:
        if entry.url not in seen:
            seen.add(entry.url)
            urls.append(entry.url)
    rows = []
    for n_files in file_counts:
        database = ResultDatabase(
            FlashFilesystem(NandFlash()), n_files=n_files
        )
        for entry in content.entries:
            database.add_result(entry.url, entry.record_bytes)
        probes = urls[:: max(1, len(urls) // probe_results)][:probe_results]
        times = []
        for i in range(0, len(probes) - 1, 2):
            t = 0.0
            for url in probes[i : i + 2]:
                t += database.fetch(hash64(url)).latency_s
            times.append(t)
        rows.append(
            {
                "n_files": n_files,
                "mean_fetch2_s": float(np.mean(times)),
                "std_fetch2_s": float(np.std(times)),
                "fragmentation_bytes": database.fragmentation_bytes,
                "allocated_bytes": database.allocated_bytes,
            }
        )
    return rows


def shared_storage_savings(seed: int = 23) -> dict:
    """Section 5.2.1's motivation: store each result once, not per query."""
    content = default_content(seed=seed)
    return {
        "pairs": content.n_pairs,
        "unique_results": content.n_unique_results,
        "unique_queries": content.n_unique_queries,
        "shared_bytes": content.flash_bytes,
        "unshared_bytes": content.flash_bytes_unshared,
        "savings_factor": content.flash_bytes_unshared
        / max(content.flash_bytes, 1),
    }
