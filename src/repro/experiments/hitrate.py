"""Section 6.2 experiments: Table 6, Figures 17-19, and the daily-update
study of Section 6.2.2."""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import default_log, default_replay
from repro.logs import analysis
from repro.logs.schema import (
    CLASS_POPULATION_SHARE,
    CLASS_VOLUME_RANGES,
    MONTH_SECONDS,
    WEEK_SECONDS,
    UserClass,
)
from repro.sim.replay import (
    CacheMode,
    ReplayConfig,
    run_replay,
    select_replay_users,
)


def table6(seed: int = 23) -> Dict[str, dict]:
    """Table 6: user classes, volume bands, and observed population mix."""
    log = default_log(seed=seed)
    observed = analysis.observed_class_mix(log, month=1)
    return {
        user_class.value: {
            "volume_range": CLASS_VOLUME_RANGES[user_class][:2],
            "target_share": CLASS_POPULATION_SHARE[user_class],
            "observed_share": observed[user_class],
        }
        for user_class in UserClass
    }


def figure17(
    users_per_class: int = 100, seed: int = 23, workers: int = 1,
    engine: str = "scalar",
) -> Dict[str, dict]:
    """Figure 17: hit rate per class for full / community / personal."""
    replay = default_replay(
        users_per_class=users_per_class, seed=seed, workers=workers,
        engine=engine,
    )
    out = {}
    for mode, result in replay.items():
        by_class = result.hit_rate_by_class()
        out[mode] = {
            "overall": result.overall_hit_rate(),
            **{c.value: by_class[c] for c in UserClass},
        }
    return out


def figure18(
    users_per_class: int = 100, seed: int = 23, workers: int = 1,
    engine: str = "scalar",
) -> Dict[str, dict]:
    """Figure 18: hit rates over the first week and first two weeks."""
    replay = default_replay(
        users_per_class=users_per_class, seed=seed, workers=workers,
        engine=engine,
    )
    t0 = 1 * MONTH_SECONDS  # replay month start
    windows = {
        "week1": (t0, t0 + WEEK_SECONDS),
        "weeks1_2": (t0, t0 + 2 * WEEK_SECONDS),
        "full_month": (t0, t0 + MONTH_SECONDS),
    }
    out: Dict[str, dict] = {}
    for window_name, (lo, hi) in windows.items():
        out[window_name] = {}
        for mode, result in replay.items():
            by_class = result.hit_rate_by_class_windowed(lo, hi)
            out[window_name][mode] = {
                c.value: by_class[c] for c in UserClass
            }
    return out


def figure19(
    users_per_class: int = 100, seed: int = 23, workers: int = 1,
    engine: str = "scalar",
) -> Dict[str, dict]:
    """Figure 19: navigational vs non-navigational share of cache hits."""
    replay = default_replay(
        users_per_class=users_per_class, seed=seed, workers=workers,
        engine=engine,
    )
    full = replay[CacheMode.FULL]
    breakdown = full.navigational_breakdown()
    merged_nav = []
    merged_weights = []
    out = {}
    for user_class in UserClass:
        split = breakdown[user_class]
        out[user_class.value] = split
        hits = sum(
            u.metrics.hits
            for u in full.users
            if u.user_class is user_class
        )
        merged_nav.append(split["navigational"] * hits)
        merged_weights.append(hits)
    total_hits = sum(merged_weights)
    overall_nav = sum(merged_nav) / total_hits if total_hits else 0.0
    out["overall"] = {
        "navigational": overall_nav,
        "non_navigational": 1 - overall_nav,
    }
    return out


def daily_updates(
    users_per_class: int = 25, seed: int = 23, workers: int = 1,
    engine: str = "scalar",
) -> Dict[str, float]:
    """Section 6.2.2: full-cache hit rate with vs without daily updates."""
    log = default_log(seed=seed)
    users = select_replay_users(log, month=1, users_per_class=users_per_class)
    static = run_replay(
        log,
        ReplayConfig(
            users_per_class=users_per_class, workers=workers, engine=engine
        ),
        modes=(CacheMode.FULL,),
        selected_users=users,
    )[CacheMode.FULL]
    daily = run_replay(
        log,
        ReplayConfig(
            users_per_class=users_per_class,
            daily_updates=True,
            workers=workers,
            engine=engine,
        ),
        modes=(CacheMode.FULL,),
        selected_users=users,
    )[CacheMode.FULL]
    return {
        "static_hit_rate": static.overall_hit_rate(),
        "daily_update_hit_rate": daily.overall_hit_rate(),
        "improvement": daily.overall_hit_rate() - static.overall_hit_rate(),
    }
