"""Edge-tier experiments: community hit rate vs. cloudlet topology.

The cooperative cloudlet tier (:mod:`repro.edge`) answers device cache
misses out of per-node community slices before falling back to the
origin.  These experiments measure how much of the device-miss stream
the tier absorbs as the topology changes:

* :func:`hit_rate_vs_nodes` — community hit rate as the fleet of
  cloudlet nodes grows (consistent-hash key routing);
* :func:`hit_rate_vs_skew` — home-region routing under increasingly
  skewed device placement (skewed placement concentrates devices with
  correlated interests on fewer nodes, raising slice locality);
* :func:`capacity_sweep_experiment` — hit rate vs. per-node slice
  capacity.  Node slices are strict LRU, so this curve is provably
  monotone non-decreasing (the stack-algorithm inclusion property);
  the benchmark gate asserts it.

All three evaluate the *same* device-miss reference stream offline
(:func:`repro.edge.evaluate.evaluate_stream`), extracted once from the
memoized Section 6.2 replay.  Device misses are a property of the
personal caches alone, so the stream is independent of any edge
topology — every point of every sweep sees identical traffic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.edge.evaluate import (
    EdgeEvalResult,
    capacity_sweep,
    evaluate_stream,
    hit_rates_monotone,
)
from repro.edge.tier import EdgeTopology
from repro.experiments.common import DEFAULT_SEED, default_content, default_replay
from repro.sim.replay import CacheMode

__all__ = [
    "capacity_sweep_experiment",
    "edge_miss_stream",
    "edge_warm_keys",
    "hit_rate_vs_nodes",
    "hit_rate_vs_skew",
]

#: Node counts of the default hit-rate-vs-nodes sweep.
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16)

#: Placement skews of the default skew sweep.
DEFAULT_SKEWS = (0.0, 0.5, 1.0, 2.0)


def edge_miss_stream(
    users_per_class: int = 20,
    seed: int = DEFAULT_SEED,
    mode: str = CacheMode.FULL,
) -> List[Tuple[float, int, str]]:
    """The device-miss reference stream: ``(timestamp, device, key)``.

    Extracted from the exact-mode replay's retained outcome streams and
    sorted by arrival time (ties broken by device then key), so every
    topology point replays identical traffic in identical order.
    """
    result = default_replay(users_per_class=users_per_class, seed=seed)[mode]
    events: List[Tuple[float, int, str]] = []
    for user in result.users:
        for outcome in user.metrics.outcomes:
            if not outcome.hit:
                events.append((outcome.timestamp, user.user_id, outcome.query))
    events.sort()
    return events


def edge_warm_keys(seed: int = DEFAULT_SEED) -> List[Tuple[str, float]]:
    """``(key, score)`` warm-seed pairs from the mined community content,
    ascending score (admission order puts the hottest keys at the MRU
    end of each slice)."""
    best: Dict[str, float] = {}
    for entry in default_content(seed=seed).entries:
        score = float(entry.score)
        if entry.query not in best or score > best[entry.query]:
            best[entry.query] = score
    return sorted(best.items(), key=lambda kv: (kv[1], kv[0]))


def _row(result: EdgeEvalResult, **extra) -> Dict[str, object]:
    row = result.to_dict()
    row.update(extra)
    return row


def hit_rate_vs_nodes(
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
    node_capacity: Optional[int] = None,
    users_per_class: int = 20,
    seed: int = DEFAULT_SEED,
    warm: bool = True,
    mode: str = CacheMode.FULL,
) -> List[Dict[str, object]]:
    """Community hit rate as the cloudlet fleet grows (key routing).

    With unbounded slices, sharding by key never changes what the
    community as a whole has seen — the curve is flat and the sweep
    documents that invariant.  With bounded ``node_capacity``, more
    nodes mean more aggregate slice space and the hit rate climbs.
    """
    events = edge_miss_stream(
        users_per_class=users_per_class, seed=seed, mode=mode
    )
    warm_keys = edge_warm_keys(seed=seed) if warm else None
    rows = []
    for n_nodes in sorted(node_counts):
        topology = EdgeTopology(n_nodes=n_nodes, routing="key", seed=seed)
        result = evaluate_stream(
            events, topology, node_capacity=node_capacity, warm_keys=warm_keys
        )
        rows.append(_row(result))
    return rows


def hit_rate_vs_skew(
    skews: Sequence[float] = DEFAULT_SKEWS,
    n_nodes: int = 8,
    node_capacity: Optional[int] = 256,
    users_per_class: int = 20,
    seed: int = DEFAULT_SEED,
    warm: bool = True,
    mode: str = CacheMode.FULL,
) -> List[Dict[str, object]]:
    """Community hit rate under home-region routing as placement skews.

    Home routing sends every device to its region's node, so under
    bounded slices a skewed placement concentrates the shared working
    set on fewer, hotter slices.
    """
    events = edge_miss_stream(
        users_per_class=users_per_class, seed=seed, mode=mode
    )
    warm_keys = edge_warm_keys(seed=seed) if warm else None
    rows = []
    for skew in skews:
        topology = EdgeTopology(
            n_nodes=n_nodes,
            routing="home",
            placement_skew=float(skew),
            seed=seed,
        )
        result = evaluate_stream(
            events, topology, node_capacity=node_capacity, warm_keys=warm_keys
        )
        rows.append(_row(result, placement_skew=float(skew)))
    return rows


def capacity_sweep_experiment(
    capacities: Iterable[Optional[int]] = (64, 256, 1024, None),
    n_nodes: int = 8,
    users_per_class: int = 20,
    seed: int = DEFAULT_SEED,
    warm: bool = True,
    mode: str = CacheMode.FULL,
) -> Dict[str, object]:
    """Hit rate vs. per-node slice capacity, with the monotonicity bit.

    Returns the sweep rows plus ``monotone`` — strict LRU slices make
    the hit-rate curve non-decreasing in capacity by construction, and
    the bench gate treats a violation as fatal.
    """
    events = edge_miss_stream(
        users_per_class=users_per_class, seed=seed, mode=mode
    )
    warm_keys = edge_warm_keys(seed=seed) if warm else None
    topology = EdgeTopology(n_nodes=n_nodes, routing="key", seed=seed)
    results = capacity_sweep(
        events, topology, capacities, warm_keys=warm_keys
    )
    return {
        "n_nodes": n_nodes,
        "n_events": len(events),
        "rows": [_row(r) for r in results],
        "monotone": hit_rates_monotone(results),
    }
