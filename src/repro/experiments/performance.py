"""Section 6.1 experiments: Figures 15a/15b/16 and Tables 4 and 5.

These fix a PocketSearch cache at the paper's operating point and measure
the service path against the three radios, matching the methodology of
Section 6.1: 100 cached queries, each served repeatedly, radios cold per
query.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.common import default_content
from repro.pocketsearch.content import CacheContent
from repro.pocketsearch.cache import PocketSearchCache
from repro.pocketsearch.database import ResultDatabase
from repro.pocketsearch.engine import PocketSearchEngine
from repro.radio.models import EDGE, THREE_G, WIFI_80211G, RadioProfile
from repro.radio.states import RadioLink, RadioState
from repro.storage.filesystem import FlashFilesystem
from repro.storage.flash import NandFlash

RADIOS = (THREE_G, EDGE, WIFI_80211G)


def _engine(seed: int = 23) -> PocketSearchEngine:
    content = default_content(seed=seed)
    cache = PocketSearchCache.from_content(
        content, database=ResultDatabase(FlashFilesystem(NandFlash()))
    )
    return PocketSearchEngine(cache)


def _cached_queries(engine: PocketSearchEngine, n: int = 100) -> List[str]:
    queries = list(engine.cache.query_registry.values())
    step = max(1, len(queries) // n)
    return queries[::step][:n]


_MEASURE_STATE: Dict[str, object] = {}


def _measure_init(content: CacheContent) -> None:
    """Build a per-worker engine from the shared cache content."""
    cache = PocketSearchCache.from_content(
        content, database=ResultDatabase(FlashFilesystem(NandFlash()))
    )
    _MEASURE_STATE["engine"] = PocketSearchEngine(cache)


def _measure_shard(queries: List[str]) -> List[Tuple[float, float]]:
    engine = _MEASURE_STATE["engine"]
    out = []
    for query in queries:
        result = engine.measure_hit(query)
        out.append((result.outcome.latency_s, result.outcome.energy_j))
    return out


def _measure_hits(
    engine: PocketSearchEngine,
    queries: List[str],
    seed: int,
    workers: int,
) -> List[Tuple[float, float]]:
    """(latency, energy) per query, optionally sharded across a pool.

    ``measure_hit`` never mutates cache or database state and every
    worker loads the identical content, so sharding the query list and
    reassembling in query order reproduces the serial measurements
    exactly.
    """
    if workers > 1 and len(queries) > 1:
        content = default_content(seed=seed)
        shard = max(1, -(-len(queries) // workers))
        shards = [
            queries[i: i + shard] for i in range(0, len(queries), shard)
        ]
        ctx = multiprocessing.get_context()
        with ctx.Pool(
            processes=min(workers, len(shards)),
            initializer=_measure_init,
            initargs=(content,),
        ) as pool:
            return [pair for part in pool.map(_measure_shard, shards)
                    for pair in part]
    return [
        (r.outcome.latency_s, r.outcome.energy_j)
        for r in (engine.measure_hit(query) for query in queries)
    ]


def figure15(
    seed: int = 23, n_queries: int = 100, workers: int = 1
) -> Dict[str, dict]:
    """Figures 15(a) and 15(b): mean per-query latency and energy.

    PocketSearch serves the queries from its cache; each radio serves the
    same queries cold (wake + transfer + render), as in the paper's
    isolated per-query measurements.
    """
    engine = _engine(seed=seed)
    queries = _cached_queries(engine, n_queries)
    measured = _measure_hits(engine, queries, seed, workers)
    ps_lat = [m[0] for m in measured]
    ps_en = [m[1] for m in measured]
    out = {
        "pocketsearch": {
            "mean_latency_s": float(np.mean(ps_lat)),
            "mean_energy_j": float(np.mean(ps_en)),
        }
    }
    for radio in RADIOS:
        latency, energy = engine.radio_only_cost(radio)
        out[radio.name] = {
            "mean_latency_s": latency,
            "mean_energy_j": energy,
            "latency_speedup": latency / out["pocketsearch"]["mean_latency_s"],
            "energy_ratio": energy / out["pocketsearch"]["mean_energy_j"],
        }
    return out


def table4(seed: int = 23, n_queries: int = 100) -> Dict[str, dict]:
    """Table 4: PocketSearch user response time breakdown on a hit."""
    engine = _engine(seed=seed)
    queries = _cached_queries(engine, n_queries)
    sums: Dict[str, float] = {}
    total = 0.0
    for query in queries:
        result = engine.measure_hit(query)
        for part, value in result.breakdown.items():
            sums[part] = sums.get(part, 0.0) + value
        total += result.outcome.latency_s
    rows = {}
    for part, value in sums.items():
        rows[part] = {
            "mean_s": value / len(queries),
            "share": value / total,
        }
    rows["total"] = {"mean_s": total / len(queries), "share": 1.0}
    return rows


def table5(
    seed: int = 23,
    page_load_s: Dict[str, float] = None,
) -> Dict[str, dict]:
    """Table 5: navigation time (search + page download) comparison."""
    if page_load_s is None:
        page_load_s = {"lightweight": 15.0, "heavyweight": 30.0}
    engine = _engine(seed=seed)
    queries = _cached_queries(engine, 20)
    ps = [engine.measure_hit(query).outcome.latency_s for query in queries]
    ps_search = float(np.mean(ps))
    radio_search, _ = engine.radio_only_cost(THREE_G)
    out = {}
    for page, load_s in page_load_s.items():
        ps_total = ps_search + load_s
        radio_total = radio_search + load_s
        out[page] = {
            "pocketsearch_s": ps_total,
            "threeg_s": radio_total,
            "speedup_pct": (radio_total - ps_total) / radio_total * 100,
        }
    return out


def figure16(
    seed: int = 23,
    n_queries: int = 10,
    think_time_s: float = 0.0,
    radio: Optional[RadioProfile] = None,
) -> Dict[str, dict]:
    """Figure 16: time and power of 10 consecutive queries.

    PocketSearch serves them back-to-back at base device power; the radio
    path wakes once, stays active across the burst (tail keeps it awake),
    and takes an order of magnitude longer at ~1.5 kW-milliwatt power.
    Returns the full power timeline for the radio run.
    """
    radio = radio or THREE_G
    engine = _engine(seed=seed)
    queries = _cached_queries(engine, n_queries)

    ps_total_s = 0.0
    ps_energy_j = 0.0
    for query in queries:
        result = engine.measure_hit(query)
        ps_total_s += result.outcome.latency_s + think_time_s
        ps_energy_j += result.outcome.energy_j

    link = RadioLink(radio)
    now = 0.0
    for _ in queries:
        request = link.request(
            now,
            engine.query_bytes_up,
            engine.serp_bytes_down,
            engine.server_time_s,
        )
        render_s = engine.browser.model.render_seconds(24 * 1024)
        now = request.t_end + render_s + think_time_s
    segments = link.drain(now)
    radio_energy = sum(s.energy_j for s in segments) + now * engine.base_power_w
    active = [
        s
        for s in segments
        if s.state in (RadioState.ACTIVE, RadioState.RAMP, RadioState.TAIL)
    ]
    mean_active_power = (
        sum(s.energy_j for s in active) / sum(s.duration_s for s in active)
        if active
        else 0.0
    )
    return {
        "pocketsearch": {
            "total_s": ps_total_s,
            "energy_j": ps_energy_j,
            "mean_power_w": ps_energy_j / ps_total_s if ps_total_s else 0.0,
        },
        "radio": {
            "name": radio.name,
            "total_s": now,
            "energy_j": radio_energy,
            "mean_power_w": radio_energy / now if now else 0.0,
            "mean_active_power_w": mean_active_power + engine.base_power_w,
            "wakeups": link.total_wakeups,
            "segments": segments,
        },
    }
