"""Experiment runners: one per table and figure of the paper.

Each function regenerates one evaluation artifact and returns structured
data; the scripts in ``benchmarks/`` print the paper's rows/series from
these, and integration tests assert the shapes.  Expensive inputs (the
synthetic log, replay results) are memoized per process in
:mod:`repro.experiments.common`.
"""

from repro.experiments import (
    ablations,
    cachedesign,
    characterization,
    common,
    edge,
    extensions,
    export,
    hitrate,
    performance,
    scale,
    scaling,
)

__all__ = [
    "ablations",
    "cachedesign",
    "characterization",
    "common",
    "edge",
    "extensions",
    "export",
    "hitrate",
    "performance",
    "scale",
    "scaling",
]
