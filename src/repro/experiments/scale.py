"""Paper-scale characterization run.

The default experiments use a scaled-down universe for speed.  This run
approaches the paper's absolute numbers: a ~260k-distinct-query universe
and a ~1.5M-event month, at which point the Figure 4 head sits in the
paper's own range (thousands of queries for 60% of the volume).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict

from repro.logs import analysis
from repro.logs.generator import GeneratorConfig, SearchLog, generate_logs
from repro.logs.popularity import CommunityModel
from repro.logs.schema import UserClass
from repro.logs.users import PopulationConfig, UserPopulation
from repro.logs.vocabulary import Vocabulary, VocabularyConfig
from repro.pocketsearch.content import PAPER_OPERATING_POINT, build_cache_content
from repro.sim.replay import CacheMode, ReplayConfig, run_replay

#: 5x the default topic universe and population.
PAPER_SCALE_VOCAB = VocabularyConfig(
    n_nav_topics=60_000, n_non_nav_topics=90_000, seed=7
)
PAPER_SCALE_POPULATION = PopulationConfig(n_users=10_000, seed=11)


@lru_cache(maxsize=1)
def paper_scale_log(months: int = 1, seed: int = 23) -> SearchLog:
    community = CommunityModel(Vocabulary.build(PAPER_SCALE_VOCAB))
    population = UserPopulation.build(PAPER_SCALE_POPULATION)
    return generate_logs(
        community, population, GeneratorConfig(months=months, seed=seed)
    )


def paper_scale_characterization(seed: int = 23) -> Dict[str, float]:
    """Figure 4 + cache-size statistics at near-paper scale."""
    log = paper_scale_log(seed=seed)
    month = log.month(0)
    qcdf = analysis.query_volume_cdf(month)
    rcdf = analysis.result_volume_cdf(month)
    k60 = qcdf.items_for_coverage(0.60)
    content = build_cache_content(month, PAPER_OPERATING_POINT)
    return {
        "events": float(month.n_events),
        "distinct_queries": float(qcdf.n_items),
        "queries_for_60pct": float(k60),
        "results_for_60pct": float(rcdf.items_for_coverage(0.60)),
        "head_fraction": k60 / qcdf.n_items,
        "repeat_rate": analysis.overall_repeat_rate(month),
        "cache_pairs_at_55pct": float(content.n_pairs),
        "cache_flash_kb": content.flash_bytes / 1024,
        "cache_dram_kb": content.approx_dram_bytes / 1024,
        "unique_result_ratio": content.n_unique_results
        / max(content.n_unique_queries, 1),
    }


def paper_scale_replay(
    users_per_class: int = 25,
    workers: int = 1,
    seed: int = 23,
    months: int = 2,
    modes=(CacheMode.FULL,),
    engine: str = "scalar",
) -> Dict[str, dict]:
    """Section 6.2 hit-rate replay at near-paper scale.

    The 10k-user population makes the serial replay the slowest artifact
    in the repo; this is the workload the sharded harness and the
    vectorized engine exist for.  Uses bounded-memory collectors
    (thousands of month-long users would otherwise retain every outcome)
    — results are bit-identical for any ``workers``/``engine`` value.
    """
    log = paper_scale_log(months=months, seed=seed)
    replay = run_replay(
        log,
        ReplayConfig(
            users_per_class=users_per_class,
            seed=seed,
            workers=workers,
            bounded_metrics=True,
            engine=engine,
        ),
        modes=modes,
    )
    out: Dict[str, dict] = {}
    for mode, result in replay.items():
        by_class = result.hit_rate_by_class()
        out[mode] = {
            "overall": result.overall_hit_rate(),
            "n_users": len(result.users),
            **{c.value: by_class[c] for c in UserClass},
        }
    return out
