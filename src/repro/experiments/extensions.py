"""Extension experiments beyond the paper's evaluation section.

These exercise the systems the paper describes but does not evaluate:
the PocketWeb content cloudlet (intro, Section 3.2), the ads cloudlet
(Figure 1, Section 7), the PCM index tier (Section 3.3), and the battery
framing of the energy results.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.management import ChargeState
from repro.experiments.common import default_content, default_log
from repro.pocketads import AdsCloudlet
from repro.pocketweb import PocketWebCloudlet
from repro.pocketweb.pages import PageModel
from repro.radio.energy import isolated_request_energy, isolated_request_latency
from repro.radio.models import THREE_G
from repro.sim.battery import Battery
from repro.sim.replay import CacheMode, make_cache, select_replay_users
from repro.storage.hierarchy import MemoryHierarchy
from repro.storage.pcm import Pcm

KB = 1024
MB = 1024**2
DAY = 86400.0


def pocketweb_replay(
    users: int = 20, budget_mb: int = 64, seed: int = 23
) -> Dict[str, float]:
    """Replay users' clicked-URL streams through PocketWeb.

    The visit stream is the clicked-result URL sequence of the search
    log (the same source the paper's revisit statistic comes from).
    Compares against downloading every page over 3G.
    """
    log = default_log(seed=seed)
    selected = select_replay_users(log, month=1, users_per_class=users // 4 or 1)
    charging = ChargeState(charging=True, on_fast_link=True)
    page_model = PageModel()

    hit_rates: List[float] = []
    cloudlet_energy = 0.0
    nocache_energy = 0.0
    radio_bytes = 0
    nocache_bytes = 0
    visits = 0
    for uids in selected.values():
        for uid in uids:
            stream = log.for_user(uid).month(1)
            web = PocketWebCloudlet(budget_bytes=budget_mb * MB, page_model=page_model)
            day = 30  # month 1 starts at day 30
            for i in range(stream.n_events):
                t = float(stream.timestamps[i])
                while t // DAY > day:
                    day += 1
                    web.overnight_update(day * DAY, charging)
                url = stream.result_url(int(stream.result_keys[i]))
                outcome = web.browse(url, t)
                cloudlet_energy += outcome.energy_j
                radio_bytes += outcome.bytes_over_radio
                page = page_model.profile(url)
                nocache_energy += isolated_request_energy(
                    THREE_G, 1 * KB, page.page_bytes, 0.2
                ) + (
                    isolated_request_latency(THREE_G, 1 * KB, page.page_bytes, 0.2)
                ) * 0.9
                nocache_bytes += page.page_bytes
                visits += 1
            if web.outcomes:
                hit_rates.append(web.hit_rate)
    return {
        "users": float(len(hit_rates)),
        "visits": float(visits),
        "mean_hit_rate": float(np.mean(hit_rates)) if hit_rates else 0.0,
        "energy_ratio_vs_3g": nocache_energy / max(cloudlet_energy, 1e-9),
        "radio_bytes_saved_frac": 1 - radio_bytes / max(nocache_bytes, 1),
    }


def ads_coupling(seed: int = 23, users: int = 40) -> Dict[str, float]:
    """How often local ads accompany locally served queries."""
    log = default_log(seed=seed)
    content = default_content(seed=seed)
    selected = select_replay_users(log, month=1, users_per_class=users // 4 or 1)
    served = suppressed = queries = ad_hits = 0
    for uids in selected.values():
        for uid in uids:
            cache = make_cache(content, CacheMode.FULL)
            ads = AdsCloudlet(cache, budget_bytes=8 * MB)
            ads.load_from_content(content)
            stream = log.for_user(uid).month(1)
            for i in range(stream.n_events):
                query = stream.query_string(int(stream.query_keys[i]))
                url = stream.result_url(int(stream.result_keys[i]))
                lookup = cache.lookup(query)
                outcome = ads.serve(query, search_hit=lookup.hit)
                cache.record_click(query, url)
                queries += 1
                if lookup.hit:
                    served += 1
                    ad_hits += int(outcome.hit)
                else:
                    suppressed += 1
    return {
        "queries": float(queries),
        "search_hit_rate": served / max(queries, 1),
        "ads_served_given_hit": ad_hits / max(served, 1),
        "ads_suppressed_frac": suppressed / max(queries, 1),
    }


def pcm_boot(index_sizes_mb=(1, 8, 64, 512, 2048)) -> List[dict]:
    """Section 3.3: boot-time index availability, DRAM-only vs PCM tier.

    Without PCM the cloudlet indexes must stream from NAND into DRAM
    after every power cycle; with a PCM tier they are instantly
    available.  The gap grows linearly with index size and reaches tens
    of seconds at the gigabyte scale the paper anticipates.
    """
    rows = []
    for size_mb in index_sizes_mb:
        index_bytes = size_mb * MB
        two_tier = MemoryHierarchy().boot_index_load(index_bytes)
        three_tier = MemoryHierarchy(pcm=Pcm()).boot_index_load(index_bytes)
        rows.append(
            {
                "index_mb": size_mb,
                "dram_only_s": two_tier.latency_s,
                "with_pcm_s": three_tier.latency_s,
                "speedup": two_tier.latency_s / max(three_tier.latency_s, 1e-12),
            }
        )
    return rows


def maps_commute(
    days: int = 20,
    budget_mb: int = 128,
    seed: int = 23,
) -> Dict[str, float]:
    """A commuting user's map viewports against a prefetched corridor.

    The user pans along a home-work corridor every weekday with
    occasional random side trips; the cloudlet prefetches the corridor
    region during charging (the static-data path of Section 3.2) and
    learns side-trip tiles on miss.
    """
    import numpy as np

    from repro.pocketmaps.cloudlet import MapCloudlet
    from repro.pocketmaps.grid import Region

    rng = np.random.default_rng(seed)
    maps = MapCloudlet(budget_bytes=budget_mb * MB)
    home = (5_000.0, 5_000.0)
    work = (25_000.0, 12_000.0)
    # Overnight prefetch: a corridor around the commute plus both ends.
    corridor = Region(3_000, 3_000, 25_000, 12_000)
    prefetched = maps.prefetch_region(corridor)

    for _day in range(days):
        # The commute: viewports sampled along the home-work line.
        for step in range(8):
            frac = step / 7
            x = home[0] + (work[0] - home[0]) * frac + rng.normal(0, 400)
            y = home[1] + (work[1] - home[1]) * frac + rng.normal(0, 400)
            maps.serve_viewport(Region.viewport(x, y))
        # Occasional side trip outside the corridor.
        if rng.random() < 0.25:
            x = rng.uniform(0, 60_000)
            y = rng.uniform(0, 60_000)
            for _ in range(3):
                maps.serve_viewport(
                    Region.viewport(x + rng.normal(0, 500), y + rng.normal(0, 500))
                )
    radio_bytes = sum(o.bytes_over_radio for o in maps.outcomes)
    all_bytes = sum(o.tiles_needed for o in maps.outcomes) * 5 * KB
    return {
        "prefetched_tiles": float(prefetched),
        "viewports": float(maps.viewports_served),
        "viewport_hit_rate": maps.viewport_hit_rate,
        "tile_hit_rate": maps.tile_hit_rate,
        "radio_bytes_saved_frac": 1 - radio_bytes / max(all_bytes, 1),
        "store_mb": maps.bytes_stored / MB,
    }


def suggest_effort(seed: int = 23, users: int = 20) -> Dict[str, float]:
    """Figure 1's UX: keystrokes until the intended query tops the box.

    For every cache-hit query in a replay stream, types the query one
    character at a time and records when it first appears as the #1
    auto-suggestion.  Reports the mean fraction of keystrokes saved.
    """
    log = default_log(seed=seed)
    content = default_content(seed=seed)
    selected = select_replay_users(log, month=1, users_per_class=users // 4 or 1)
    saved_fracs: List[float] = []
    suggest_hits = 0
    lookups = 0
    from repro.pocketsearch.engine import PocketSearchEngine

    for uids in selected.values():
        for uid in uids:
            cache = make_cache(content, CacheMode.FULL)
            engine = PocketSearchEngine(cache)
            stream = log.for_user(uid).month(1)
            for i in range(stream.n_events):
                query = stream.query_string(int(stream.query_keys[i]))
                url = stream.result_url(int(stream.result_keys[i]))
                if cache.hashtable.contains(query):
                    lookups += 1
                    found_at = None
                    for n_typed in range(1, len(query) + 1):
                        suggestions, _ = engine.suggest(query[:n_typed], k=3)
                        if suggestions and suggestions[0].query == query:
                            found_at = n_typed
                            break
                    if found_at is not None:
                        suggest_hits += 1
                        saved_fracs.append(1 - found_at / len(query))
                    else:
                        saved_fracs.append(0.0)
                cache.record_click(query, url)
    import numpy as np

    return {
        "hit_queries_tested": float(lookups),
        "topped_before_full_query": suggest_hits / max(lookups, 1),
        "mean_keystrokes_saved_frac": float(np.mean(saved_fracs))
        if saved_fracs
        else 0.0,
    }


def yellow_pages_day(
    searches: int = 60, budget_mb: int = 32, seed: int = 23
) -> Dict[str, float]:
    """A day of local-business searches against a prefetched metro area.

    Section 7 sizes the national directory at ~100 GB — far beyond a
    phone — but the user's *metro area* fits easily, and that is where
    their searches land (with occasional trips elsewhere).
    """
    import numpy as np

    from repro.pocketmaps.grid import Region
    from repro.pocketyellow.cloudlet import YellowPagesCloudlet
    from repro.pocketyellow.directory import CATEGORIES

    rng = np.random.default_rng(seed)
    yp = YellowPagesCloudlet(budget_bytes=budget_mb * MB)
    metro = Region(0, 0, 15_000, 15_000)
    prefetched = yp.prefetch_region(metro)

    for _ in range(searches):
        category = CATEGORIES[rng.integers(len(CATEGORIES))]
        if rng.random() < 0.85:
            x = rng.uniform(500, 14_000)
            y = rng.uniform(500, 14_000)
        else:  # out-of-town trip
            x = rng.uniform(30_000, 60_000)
            y = rng.uniform(30_000, 60_000)
        yp.search(category, x, y)

    latencies = [o.latency_s for o in yp.outcomes]
    return {
        "prefetched_tiles": float(prefetched),
        "searches": float(len(yp.outcomes)),
        "search_hit_rate": yp.search_hit_rate,
        "mean_latency_s": float(np.mean(latencies)),
        "store_mb": yp.bytes_stored / MB,
        "mean_results": float(
            np.mean([len(o.businesses) for o in yp.outcomes])
        ),
    }


def latency_variability(
    n_requests: int = 2000, seed: int = 23
) -> Dict[str, dict]:
    """The paper's unpredictability claim as latency distributions.

    Section 1: a 3G search takes "3 to 10 seconds depending on location,
    device and operator", doubling or tripling on weak signal — while a
    cache hit is deterministic.  Samples per-request link conditions and
    reports percentiles per path.
    """
    import numpy as np

    from repro.radio.conditions import ConditionSampler
    from repro.radio.models import EDGE, THREE_G
    from repro.sim.browser import RADIO_SERP_BYTES, RenderModel, SERP_BYTES

    render_s = RenderModel().render_seconds(SERP_BYTES)
    ps_latency = render_s + 0.0066 + 0.007 + 10e-6

    out: Dict[str, dict] = {
        "pocketsearch": {
            "p10": ps_latency,
            "p50": ps_latency,
            "p90": ps_latency,
            "p99": ps_latency,
            "spread": 0.0,
        }
    }
    for profile in (THREE_G, EDGE):
        sampler = ConditionSampler(seed=seed)
        latencies = []
        for _ in range(n_requests):
            degraded = sampler.sample().apply(profile)
            latencies.append(
                isolated_request_latency(degraded, 1 * KB, RADIO_SERP_BYTES, 0.35)
                + render_s
            )
        values = np.asarray(latencies)
        out[profile.name] = {
            "p10": float(np.percentile(values, 10)),
            "p50": float(np.percentile(values, 50)),
            "p90": float(np.percentile(values, 90)),
            "p99": float(np.percentile(values, 99)),
            "spread": float(np.percentile(values, 99) - np.percentile(values, 10)),
        }
    return out


def server_load_relief(seed: int = 23) -> Dict[str, float]:
    """Section 7: PocketSearch removes ~2/3 of the query load from the
    search engine, easing peak-time load balancing.

    Replays the whole population's month through per-user caches and
    compares the hourly query rate reaching the server with and without
    PocketSearch, using the log's diurnal traffic profile.
    """
    import numpy as np

    from repro.logs.schema import MONTH_SECONDS

    log = default_log(seed=seed)
    month = log.month(1)
    content = default_content(seed=seed)

    hours_total = np.zeros(24)
    hours_misses = np.zeros(24)
    users = np.unique(month.user_ids)
    rng = np.random.default_rng(seed)
    sampled = rng.choice(users, size=min(400, len(users)), replace=False)
    for uid in sampled:
        stream = month.for_user(int(uid))
        cache = make_cache(content, CacheMode.FULL)
        for i in range(stream.n_events):
            t = float(stream.timestamps[i]) - MONTH_SECONDS
            hour = int(t // 3600) % 24
            query = stream.query_string(int(stream.query_keys[i]))
            url = stream.result_url(int(stream.result_keys[i]))
            hours_total[hour] += 1
            if not cache.lookup(query).hit:
                hours_misses[hour] += 1
            cache.record_click(query, url)
    return {
        "queries": float(hours_total.sum()),
        "server_queries": float(hours_misses.sum()),
        "load_eliminated_frac": 1 - hours_misses.sum() / max(hours_total.sum(), 1),
        "peak_hour_before": float(hours_total.max()),
        "peak_hour_after": float(hours_misses.max()),
        "peak_reduction_frac": 1 - hours_misses.max() / max(hours_total.max(), 1),
        "peak_hour": int(hours_total.argmax()),
    }


def battery_life(queries_per_day: float = 40.0, seed: int = 23) -> Dict[str, dict]:
    """The Figure 15(b) energies expressed as battery-life impact."""
    from repro.experiments.performance import figure15

    f15 = figure15(seed=seed)
    battery = Battery()
    out = {}
    for path, data in f15.items():
        energy = data["mean_energy_j"]
        out[path] = {
            "energy_per_query_j": energy,
            "queries_per_charge": battery.queries_per_charge(energy),
            "daily_share_pct": battery.daily_budget_share(energy, queries_per_day)
            * 100,
        }
    return out
