"""Shared, memoized experiment inputs.

The synthetic two-month log and the Section 6.2 replay are the expensive
inputs reused by many experiments; they are built once per process at the
default seed and scale.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict

from repro.logs.generator import GeneratorConfig, SearchLog, generate_logs
from repro.pocketsearch.content import (
    CacheContent,
    PAPER_OPERATING_POINT,
    build_cache_content,
)
from repro.sim.replay import CacheMode, ReplayConfig, ReplayResult, run_replay

#: Default seeds/scales for all experiments (see DESIGN.md section 5).
DEFAULT_SEED = 23
DEFAULT_MONTHS = 2


@lru_cache(maxsize=4)
def default_log(months: int = DEFAULT_MONTHS, seed: int = DEFAULT_SEED) -> SearchLog:
    """The memoized default mobile log."""
    return generate_logs(config=GeneratorConfig(months=months, seed=seed))


@lru_cache(maxsize=2)
def desktop_log(seed: int = 29) -> SearchLog:
    """The memoized desktop-mode comparison log."""
    return generate_logs(config=GeneratorConfig(months=1, seed=seed, desktop=True))


@lru_cache(maxsize=2)
def default_content(seed: int = DEFAULT_SEED) -> CacheContent:
    """Community cache content mined from month 0 of the default log."""
    return build_cache_content(default_log(seed=seed).month(0), PAPER_OPERATING_POINT)


_replay_cache: Dict[int, Dict[str, ReplayResult]] = {}


def clear_replay_cache() -> None:
    """Drop memoized replays so the next call actually re-runs.

    Needed when a caller wants side effects of the replay itself — e.g.
    ``repro trace`` / ``repro profile`` must re-execute the serve path to
    record spans; a memoized result would yield an empty trace.
    """
    _replay_cache.clear()


def default_replay(
    users_per_class: int = 100,
    seed: int = DEFAULT_SEED,
    workers: int = 1,
    engine: str = "scalar",
) -> Dict[str, ReplayResult]:
    """The memoized Section 6.2 replay (all three cache modes).

    ``workers`` and ``engine`` only accelerate the first (cache-filling)
    run — replay results are bit-identical for any worker count or
    engine, so the memo key deliberately ignores both.
    """
    key = (users_per_class, seed)
    if key not in _replay_cache:
        _replay_cache[key] = run_replay(
            default_log(seed=seed),
            ReplayConfig(
                users_per_class=users_per_class,
                workers=workers,
                engine=engine,
            ),
            modes=CacheMode.ALL,
        )
    return _replay_cache[key]


def format_table(rows, headers) -> str:
    """Plain-text table formatting for benchmark output."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
