"""Radio power-state machine.

A radio link is in one of four states: SLEEP (standby), RAMP (waking up,
1.5-2 s for cellular regardless of throughput), ACTIVE (transferring), and
TAIL (post-transfer high-power lingering typical of 3G radio resource
control).  Requests produce a latency and extend a piecewise-constant
power timeline from which experiments integrate energy (Figure 16's trace,
Figure 15b's per-query bars).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, List

from repro.obs.trace import get_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.radio.models import RadioProfile


class RadioState(Enum):
    SLEEP = "sleep"
    RAMP = "ramp"
    ACTIVE = "active"
    TAIL = "tail"


@dataclass(frozen=True)
class PowerSegment:
    """A constant-power interval of the radio timeline."""

    t_start: float
    duration_s: float
    power_w: float
    state: RadioState

    @property
    def t_end(self) -> float:
        return self.t_start + self.duration_s

    @property
    def energy_j(self) -> float:
        return self.duration_s * self.power_w


@dataclass(frozen=True)
class RequestResult:
    """Outcome of one radio request."""

    latency_s: float
    woke: bool
    t_start: float
    t_end: float


class RadioLink:
    """One radio link instance with power-state bookkeeping.

    The link starts asleep at time 0.  Callers issue requests at
    monotonically non-decreasing times; each request wakes the radio if it
    is not already within a previous request's tail, transfers, and
    schedules a new tail.  :meth:`drain` returns the completed power
    timeline (including truncated tails and sleep gaps) up to a given time.
    """

    def __init__(self, profile: "RadioProfile") -> None:
        self.profile = profile
        self._segments: List[PowerSegment] = []
        self._busy_until = 0.0  # end of the last request's ACTIVE period
        self._tail_until = 0.0  # end of the last request's scheduled tail
        self._timeline_cursor = 0.0  # time up to which segments are emitted
        self.total_requests = 0
        self.total_wakeups = 0
        self.total_bytes_up = 0
        self.total_bytes_down = 0

    # -- state inspection ---------------------------------------------------

    def state_at(self, t: float) -> RadioState:
        """The radio's state at time ``t`` (for t >= last request start)."""
        if t < self._busy_until:
            return RadioState.ACTIVE
        if t < self._tail_until:
            return RadioState.TAIL
        return RadioState.SLEEP

    def is_awake(self, t: float) -> bool:
        return self.state_at(t) is not RadioState.SLEEP

    # -- request path ---------------------------------------------------------

    def request(
        self,
        now: float,
        bytes_up: int,
        bytes_down: int,
        server_s: float = 0.0,
    ) -> RequestResult:
        """Issue a request at time ``now`` and return its latency.

        Args:
            now: submission time; must not precede the end of the previous
                request's active period.
            bytes_up: request payload size.
            bytes_down: response payload size.
            server_s: server-side processing time added between send and
                receive.

        Raises:
            ValueError: on negative sizes or a request submitted while a
                previous transfer is still active.
        """
        if bytes_up < 0 or bytes_down < 0:
            raise ValueError("transfer sizes must be non-negative")
        if server_s < 0:
            raise ValueError(f"server_s must be non-negative, got {server_s}")
        if now < self._busy_until:
            raise ValueError(
                f"request at t={now} overlaps previous transfer ending "
                f"at t={self._busy_until}"
            )

        self._emit_idle_segments(now)

        profile = self.profile
        woke = not self.is_awake(now)
        t = now
        if woke:
            self._emit(t, profile.wakeup_s, profile.ramp_power_w, RadioState.RAMP)
            t += profile.wakeup_s
            self.total_wakeups += 1

        transfer_s = (
            profile.request_rtt_s()
            + bytes_up / profile.uplink_bps
            + server_s
            + bytes_down / profile.downlink_bps
        )
        self._emit(t, transfer_s, profile.active_power_w, RadioState.ACTIVE)
        t += transfer_s

        self._busy_until = t
        self._tail_until = t + profile.tail_s
        self.total_requests += 1
        self.total_bytes_up += bytes_up
        self.total_bytes_down += bytes_down
        return RequestResult(
            latency_s=t - now, woke=woke, t_start=now, t_end=t
        )

    def drain(self, until: float) -> List[PowerSegment]:
        """Close the timeline at ``until`` and return all segments so far.

        Emits any outstanding (possibly truncated) tail and trailing sleep
        up to ``until``, then returns and clears the accumulated segments.
        """
        if until < self._timeline_cursor:
            raise ValueError(
                f"until={until} precedes timeline cursor {self._timeline_cursor}"
            )
        self._emit_idle_segments(until)
        segments, self._segments = self._segments, []
        return segments

    # -- internals ---------------------------------------------------------------

    def _emit_idle_segments(self, now: float) -> None:
        """Emit tail/sleep segments covering [cursor, now)."""
        cursor = self._timeline_cursor
        if now <= cursor:
            return
        tail_end = min(self._tail_until, now)
        if cursor < tail_end and cursor >= self._busy_until:
            self._emit(
                cursor, tail_end - cursor, self.profile.tail_power_w, RadioState.TAIL
            )
            cursor = tail_end
        elif cursor < self._busy_until:
            # Cursor inside an already-emitted active period: skip forward.
            cursor = min(self._busy_until, now)
            tail_end = min(self._tail_until, now)
            if cursor < tail_end:
                self._emit(
                    cursor,
                    tail_end - cursor,
                    self.profile.tail_power_w,
                    RadioState.TAIL,
                )
                cursor = tail_end
        if cursor < now:
            self._emit(
                cursor, now - cursor, self.profile.sleep_power_w, RadioState.SLEEP
            )
            cursor = now
        self._timeline_cursor = now

    def _emit(self, t: float, duration: float, power: float, state: RadioState) -> None:
        if duration <= 0:
            return
        self._segments.append(PowerSegment(t, duration, power, state))
        self._timeline_cursor = max(self._timeline_cursor, t + duration)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "radio_state",
                state=state.value,
                t_model=t,
                dwell_s=duration,
                energy_j=duration * power,
            )
