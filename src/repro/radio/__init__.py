"""Radio-link substrate: latency and energy models for 3G, EDGE, 802.11g.

The paper's motivation (Section 1) and evaluation (Section 6.1) rest on
two radio properties: a 1.5-2 s wake-up from standby that is independent of
link throughput, and a power draw that dominates the device's budget while
the radio is awake.  This subpackage models radios as power-state machines
(sleep / ramp / active / tail) whose requests produce both a latency and a
piecewise-constant power timeline, so experiments can reproduce both the
per-query bars of Figure 15 and the power trace of Figure 16.
"""

from repro.radio.conditions import ConditionSampler, LinkConditions
from repro.radio.states import PowerSegment, RadioState, RadioLink
from repro.radio.models import (
    RadioProfile,
    THREE_G,
    EDGE,
    WIFI_80211G,
    make_link,
    standard_links,
)
from repro.radio.energy import (
    average_power,
    isolated_request_energy,
    isolated_request_latency,
    segments_duration,
    segments_energy,
    timeline_by_state,
)

__all__ = [
    "ConditionSampler",
    "EDGE",
    "LinkConditions",
    "PowerSegment",
    "RadioLink",
    "RadioProfile",
    "RadioState",
    "THREE_G",
    "WIFI_80211G",
    "average_power",
    "isolated_request_energy",
    "isolated_request_latency",
    "make_link",
    "segments_duration",
    "segments_energy",
    "standard_links",
    "timeline_by_state",
]
