"""Energy accounting helpers over radio power timelines."""

from __future__ import annotations

from typing import Iterable, List, NamedTuple

from repro.radio.states import PowerSegment, RadioState
from repro.radio.models import RadioProfile


class RadioEnergyComponents(NamedTuple):
    """Per-state energy of one cold radio request.

    The components sum (left-to-right) to exactly what
    :func:`isolated_request_energy` returns for the same arguments —
    the decomposition the serve layer's energy attribution rests on.
    """

    ramp_j: float
    transfer_j: float
    tail_j: float

    @property
    def total_j(self) -> float:
        return (self.ramp_j + self.transfer_j) + self.tail_j


def segments_energy(segments: Iterable[PowerSegment]) -> float:
    """Total energy (J) of a power timeline."""
    return sum(s.energy_j for s in segments)


def segments_duration(segments: Iterable[PowerSegment]) -> float:
    """Total covered duration (s) of a power timeline."""
    return sum(s.duration_s for s in segments)


def average_power(segments: List[PowerSegment]) -> float:
    """Duration-weighted mean power (W) of a non-empty timeline."""
    total = segments_duration(segments)
    if total <= 0:
        raise ValueError("cannot average an empty timeline")
    return segments_energy(segments) / total


def isolated_request_components(
    profile: RadioProfile,
    bytes_up: int,
    bytes_down: int,
    server_s: float = 0.0,
    include_tail: bool = True,
) -> RadioEnergyComponents:
    """Per-state energy of one cold request (ramp, transfer, tail).

    ``include_tail=False`` zeroes the tail component (a request whose
    tail is absorbed by a follow-on transfer).
    """
    if bytes_up < 0 or bytes_down < 0:
        raise ValueError("transfer sizes must be non-negative")
    transfer_s = (
        profile.request_rtt_s()
        + bytes_up / profile.uplink_bps
        + server_s
        + bytes_down / profile.downlink_bps
    )
    return RadioEnergyComponents(
        ramp_j=profile.wakeup_s * profile.ramp_power_w,
        transfer_j=transfer_s * profile.active_power_w,
        tail_j=profile.tail_s * profile.tail_power_w if include_tail else 0.0,
    )


def isolated_request_energy(
    profile: RadioProfile,
    bytes_up: int,
    bytes_down: int,
    server_s: float = 0.0,
    include_tail: bool = True,
) -> float:
    """Radio energy of one cold request (wake + transfer [+ full tail]).

    This is the per-query radio energy of Figure 15b, where each query is
    measured in isolation and the radio pays the full wake-up and tail.
    Identical (to the bit) to summing :func:`isolated_request_components`
    left-to-right.
    """
    parts = isolated_request_components(
        profile, bytes_up, bytes_down, server_s, include_tail
    )
    energy = parts.ramp_j + parts.transfer_j
    if include_tail:
        energy += parts.tail_j
    return energy


def isolated_request_latency(
    profile: RadioProfile,
    bytes_up: int,
    bytes_down: int,
    server_s: float = 0.0,
) -> float:
    """User-visible latency of one cold request (wake + transfer)."""
    if bytes_up < 0 or bytes_down < 0:
        raise ValueError("transfer sizes must be non-negative")
    return (
        profile.wakeup_s
        + profile.request_rtt_s()
        + bytes_up / profile.uplink_bps
        + server_s
        + bytes_down / profile.downlink_bps
    )


def timeline_by_state(segments: Iterable[PowerSegment]) -> dict:
    """Aggregate a timeline's duration and energy per radio state."""
    summary = {
        state: {"duration_s": 0.0, "energy_j": 0.0} for state in RadioState
    }
    for segment in segments:
        summary[segment.state]["duration_s"] += segment.duration_s
        summary[segment.state]["energy_j"] += segment.energy_j
    return summary
