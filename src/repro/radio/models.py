"""Parameter sets for the radios of the paper's test phone.

The phone in Section 6.1 (Sony Ericsson Xperia X1a on AT&T) exposes three
links: 3G (UMTS/HSDPA), EDGE, and 802.11g WiFi.  The profiles below are
fitted so that the *shape* of the paper's results holds on the simulated
device (see ``tests/radio/test_calibration.py``):

* serving a cached search query is ~16x faster than 3G, ~25x faster than
  EDGE, ~7x faster than WiFi (Figure 15a);
* the energy gaps are larger than the latency gaps: ~23x/41x/11x
  (Figure 15b);
* the radio needs 1.5-2 s to leave standby regardless of throughput, and
  lingers in a high-power tail after each transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.radio.states import RadioLink

KB = 1024


@dataclass(frozen=True)
class RadioProfile:
    """Static description of one radio link.

    Attributes:
        name: link name as used in the paper's figures.
        wakeup_s: ramp time from sleep to connected-active.
        rtt_s: one round-trip time once active.
        handshake_rtts: round trips per HTTP request (DNS + TCP + HTTP
            request/response); each costs ``rtt_s``.
        downlink_bps: sustained downlink goodput, bytes/s.
        uplink_bps: sustained uplink goodput, bytes/s.
        sleep_power_w: radio power in standby.
        ramp_power_w: radio power while waking.
        active_power_w: radio power while transferring.
        tail_power_w: radio power in the post-transfer tail.
        tail_s: tail duration before falling back to sleep.
    """

    name: str
    wakeup_s: float
    rtt_s: float
    handshake_rtts: int
    downlink_bps: float
    uplink_bps: float
    sleep_power_w: float
    ramp_power_w: float
    active_power_w: float
    tail_power_w: float
    tail_s: float

    def __post_init__(self) -> None:
        if self.wakeup_s < 0 or self.rtt_s < 0 or self.tail_s < 0:
            raise ValueError("durations must be non-negative")
        if self.handshake_rtts < 1:
            raise ValueError("handshake_rtts must be at least 1")
        if self.downlink_bps <= 0 or self.uplink_bps <= 0:
            raise ValueError("link rates must be positive")

    def request_rtt_s(self) -> float:
        """Total round-trip latency of one HTTP request."""
        return self.handshake_rtts * self.rtt_s


#: 3G (UMTS/HSDPA as deployed in 2010): ~2 s wake, ~500 ms RTTs, ~53 KB/s
#: effective goodput.
THREE_G = RadioProfile(
    name="3g",
    wakeup_s=2.0,
    rtt_s=0.52,
    handshake_rtts=4,
    downlink_bps=53 * KB,
    uplink_bps=16 * KB,
    sleep_power_w=0.01,
    ramp_power_w=0.55,
    active_power_w=0.65,
    tail_power_w=0.45,
    tail_s=4.0,
)

#: EDGE: similar wake-up, far lower goodput, long high-power transfers
#: (the GSM/EDGE PA draws close to a watt while bursting).
EDGE = RadioProfile(
    name="edge",
    wakeup_s=2.0,
    rtt_s=0.75,
    handshake_rtts=4,
    downlink_bps=17 * KB,
    uplink_bps=8 * KB,
    sleep_power_w=0.01,
    ramp_power_w=0.70,
    active_power_w=0.90,
    tail_power_w=0.50,
    tail_s=4.0,
)

#: 802.11g: fast once associated, but association/power-save exit costs
#: push a cold query past 2 s (the paper measured "slightly higher than
#: 2 seconds"), and the radio is power hungry while on.
WIFI_80211G = RadioProfile(
    name="802.11g",
    wakeup_s=1.45,
    rtt_s=0.10,
    handshake_rtts=4,
    downlink_bps=600 * KB,
    uplink_bps=400 * KB,
    sleep_power_w=0.02,
    ramp_power_w=0.70,
    active_power_w=0.80,
    tail_power_w=0.55,
    tail_s=1.5,
)


def make_link(profile: RadioProfile) -> RadioLink:
    """Instantiate a fresh (asleep) link for ``profile``."""
    return RadioLink(profile)


def standard_links() -> dict:
    """Fresh links for all three radios, keyed by name."""
    return {p.name: make_link(p) for p in (THREE_G, EDGE, WIFI_80211G)}
