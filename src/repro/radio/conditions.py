"""Radio condition variability.

The paper's motivation stresses that cellular latency is not just high
but *unpredictable*: "3 to 10 seconds depending on location, device and
operator", doubling or tripling on a weak or EDGE-only connection.  A
:class:`LinkConditions` value scales a profile's round-trip time and
goodput; :class:`ConditionSampler` draws per-request conditions so
experiments can report full latency distributions rather than means.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.radio.models import RadioProfile


@dataclass(frozen=True)
class LinkConditions:
    """One request's link quality in (0, 1]; 1.0 is the nominal profile.

    RTT scales as ``1/quality`` and goodput as ``quality`` — a 0.5
    quality roughly doubles a transfer-bound request, matching the
    paper's "doubled or even tripled" weak-signal observation.
    """

    quality: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.quality <= 1:
            raise ValueError(f"quality must be in (0, 1], got {self.quality}")

    def apply(self, profile: RadioProfile) -> RadioProfile:
        """A degraded copy of ``profile`` under these conditions."""
        return replace(
            profile,
            rtt_s=profile.rtt_s / self.quality,
            downlink_bps=profile.downlink_bps * self.quality,
            uplink_bps=profile.uplink_bps * self.quality,
        )


class ConditionSampler:
    """Draws per-request link conditions.

    Quality follows a Beta distribution skewed toward good signal (most
    requests happen where coverage is fine) with a weak-signal tail.

    Args:
        mean_quality: average link quality.
        concentration: Beta concentration (higher = tighter around mean).
        floor: minimum quality (total dead zones are out of scope —
            the request eventually completes).
        seed: RNG seed.
    """

    def __init__(
        self,
        mean_quality: float = 0.75,
        concentration: float = 6.0,
        floor: float = 0.2,
        seed: int = 7,
    ) -> None:
        if not 0 < mean_quality < 1:
            raise ValueError("mean_quality must be in (0, 1)")
        if concentration <= 0:
            raise ValueError("concentration must be positive")
        if not 0 < floor <= 1:
            raise ValueError("floor must be in (0, 1]")
        self.mean_quality = mean_quality
        self.concentration = concentration
        self.floor = floor
        self._rng = np.random.default_rng(seed)

    def sample(self) -> LinkConditions:
        a = self.mean_quality * self.concentration
        b = (1 - self.mean_quality) * self.concentration
        quality = float(np.clip(self._rng.beta(a, b), self.floor, 1.0))
        return LinkConditions(quality=quality)

    def sample_many(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        return [self.sample() for _ in range(n)]
