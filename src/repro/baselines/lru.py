"""A plain LRU query cache baseline.

Caches (query -> results page) pairs with least-recently-used eviction
under an entry budget.  No community warm start, no shared result
storage, no personalized ranking — the generic client cache PocketSearch
is implicitly compared against.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional


class LruQueryCache:
    """LRU map from query to an opaque cached value.

    Args:
        capacity: maximum number of cached queries.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, query: Hashable) -> Optional[object]:
        """Return the cached value (refreshing recency), or None."""
        if query in self._entries:
            self._entries.move_to_end(query)
            self.hits += 1
            return self._entries[query]
        self.misses += 1
        return None

    def insert(self, query: Hashable, value: object) -> None:
        """Cache a value, evicting the LRU entry when full."""
        if query in self._entries:
            self._entries.move_to_end(query)
            self._entries[query] = value
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[query] = value

    def __contains__(self, query: Hashable) -> bool:
        return query in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
