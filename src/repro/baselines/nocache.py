"""The no-cache baseline: every query pays the full radio round trip."""

from __future__ import annotations

from typing import Optional

from repro.radio.energy import isolated_request_energy, isolated_request_latency
from repro.radio.models import RadioProfile, THREE_G
from repro.sim.browser import Browser, RADIO_SERP_BYTES, SERP_BYTES

KB = 1024


class NoCacheBaseline:
    """Serves every query over one radio link.

    Mirrors :class:`repro.pocketsearch.engine.PocketSearchEngine`'s cost
    model with the cache removed, so comparisons isolate the cache's
    contribution.
    """

    def __init__(
        self,
        radio: RadioProfile = THREE_G,
        browser: Optional[Browser] = None,
        base_power_w: float = 0.9,
        query_bytes_up: int = 1 * KB,
        serp_bytes_down: int = RADIO_SERP_BYTES,
        server_time_s: float = 0.35,
    ) -> None:
        self.radio = radio
        self.browser = browser or Browser()
        self.base_power_w = base_power_w
        self.query_bytes_up = query_bytes_up
        self.serp_bytes_down = serp_bytes_down
        self.server_time_s = server_time_s
        self.queries = 0

    def serve_query(self, query: str) -> tuple:
        """(latency_s, energy_j) of serving ``query`` over the radio."""
        self.queries += 1
        radio_latency = isolated_request_latency(
            self.radio, self.query_bytes_up, self.serp_bytes_down, self.server_time_s
        )
        radio_energy = isolated_request_energy(
            self.radio, self.query_bytes_up, self.serp_bytes_down, self.server_time_s
        )
        render_s = self.browser.render(SERP_BYTES)
        latency = radio_latency + render_s
        energy = (
            latency * self.base_power_w
            + radio_energy
            + self.browser.render_energy_j(render_s)
        )
        return latency, energy

    @property
    def hit_rate(self) -> float:
        """Always zero: nothing is ever served locally."""
        return 0.0
