"""Comparator systems.

* :mod:`nocache` — every query over the radio (the pre-PocketSearch
  status quo, the denominator of every speedup the paper reports);
* :mod:`lru` — a plain LRU query cache with no community warm start and
  no personalized ranking;
* :mod:`browser_cache` — the URL-substring auto-suggest technique of
  contemporary smartphone browsers (Section 8), which can only serve the
  navigational queries whose text appears in a previously visited URL.
"""

from repro.baselines.nocache import NoCacheBaseline
from repro.baselines.lru import LruQueryCache
from repro.baselines.browser_cache import BrowserUrlCache

__all__ = ["BrowserUrlCache", "LruQueryCache", "NoCacheBaseline"]
