"""The browser URL-substring baseline (Section 8).

Contemporary smartphone browsers suggest previously visited sites by
substring-matching the partial query against URLs in the browser history.
This serves only the *navigational* queries whose text appears inside a
visited URL — misspellings, shortcuts, and every non-navigational query
still go to the radio.  The paper notes its own footnote 4: those are the
queries "current browser cache substring matching techniques could also
serve".
"""

from __future__ import annotations

from typing import List, Optional


class BrowserUrlCache:
    """History-based URL substring matcher.

    Args:
        capacity: maximum number of remembered URLs (browser history cap).
    """

    def __init__(self, capacity: int = 1000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._history: List[str] = []
        self.hits = 0
        self.misses = 0

    def visit(self, url: str) -> None:
        """Record a visited URL (FIFO beyond capacity)."""
        normalized = url.lower()
        if normalized in self._history:
            return
        self._history.append(normalized)
        if len(self._history) > self.capacity:
            self._history.pop(0)

    def lookup(self, query: str) -> Optional[str]:
        """Return a visited URL containing the query text, else None.

        Matching mirrors the paper's navigational test: the query with
        whitespace stripped must be a substring of the URL.
        """
        needle = query.strip().lower().replace(" ", "")
        if needle:
            for url in reversed(self._history):
                if needle in url:
                    self.hits += 1
                    return url
        self.misses += 1
        return None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._history)
