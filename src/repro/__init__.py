"""Reproduction of "Pocket Cloudlets" (ASPLOS 2011).

Pocket cloudlets cache slices of cloud services in a mobile device's
non-volatile memory so requests are answered locally instead of over a
slow, power-hungry cellular radio.  This package implements the paper's
full stack:

* :mod:`repro.nvmscaling` — the Section 2 NVM capacity analysis;
* :mod:`repro.logs` — the calibrated synthetic mobile search-log
  substrate standing in for the paper's 200M m.bing.com queries;
* :mod:`repro.storage`, :mod:`repro.radio`, :mod:`repro.sim` — the
  simulated device: flash/DRAM/PCM, 3G/EDGE/WiFi, browser, energy;
* :mod:`repro.core` — the generic pocket cloudlet architecture
  (Sections 3 and 7);
* :mod:`repro.pocketsearch` — the paper's showcase system (Sections
  5-6), plus :mod:`repro.pocketads` and :mod:`repro.pocketweb` for the
  sibling cloudlets the paper sketches;
* :mod:`repro.baselines` and :mod:`repro.experiments` — comparators and
  one runner per paper table/figure.

Quick start::

    from repro.logs.generator import generate_logs
    from repro.pocketsearch.content import build_cache_content
    from repro.pocketsearch.engine import PocketSearchEngine
    from repro.sim.replay import CacheMode, make_cache

    log = generate_logs()
    cache = make_cache(build_cache_content(log.month(0)), CacheMode.FULL)
    engine = PocketSearchEngine(cache)
    engine.serve_query("site0", "www.site0.com")

Or assemble a whole device hosting all five cloudlets::

    from repro.device import PocketDevice

    device = PocketDevice.build(year=2018, tier="low")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison.
"""

__version__ = "1.0.0"
