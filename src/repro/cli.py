"""Command-line interface: regenerate any paper artifact.

Usage::

    python -m repro list                 # available artifacts
    python -m repro table2               # print one artifact
    python -m repro fig17 --users 40     # replay-based figures take --users
    python -m repro all                  # everything (slow)

Observability wrappers run any artifact with the span tracer on::

    python -m repro trace fig17 --users 5      # writes trace.jsonl
    python -m repro profile fig17 --users 5    # prints span-time breakdown

Online-serving verbs (see :mod:`repro.serve`)::

    python -m repro serve --users 5 --check-equivalence
    python -m repro loadtest --duration 600 --rate 10 --manifest-out m.json

Telemetry verbs::

    python -m repro top --url http://127.0.0.1:9464   # live dashboard
    python -m repro top --snapshot snap.json          # render one frame
    python -m repro bench-gate --baseline BENCH_seed.json --candidate b.json
    python -m repro postmortem flight_bundles/flight-shed-spike-t95000

Static analysis (see :mod:`repro.analysis`)::

    python -m repro lint                  # determinism/async-safety rules
    python -m repro lint --format json --stats

Any invocation can also record a run manifest (seed/config/git
SHA/wall-time/peak-RSS JSON) with ``--manifest-out PATH``.

Each command prints the same rows the corresponding benchmark emits.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro.experiments import (
    ablations,
    cachedesign,
    characterization,
    extensions,
    hitrate,
    performance,
    scaling,
)
from repro.experiments.common import format_table
from repro.obs import trace as obs_trace
from repro.obs.manifest import ManifestRecorder

#: Wrapper subcommands that run an artifact under the tracer.
OBS_MODES = ("trace", "profile")

#: Online-serving verbs with their own parsers (see repro.serve.cli).
SERVE_MODES = ("serve", "loadtest")


def _print_table1() -> None:
    rows = scaling.table1()
    print(
        format_table(
            [list(r.values()) for r in rows],
            list(rows[0].keys()),
        )
    )


def _print_fig2() -> None:
    for scenario, series in scaling.figure2().items():
        points = ", ".join(f"{p.year}: {p.high_end_gb:.0f}GB" for p in series)
        print(f"{scenario:28} {points}")


def _print_table2() -> None:
    print(
        format_table(
            [[n, b, f"{c:,}"] for n, b, c in scaling.table2()],
            ["cloudlet", "item bytes", "items"],
        )
    )


def _print_fig4() -> None:
    f4 = characterization.figure4()
    k60 = f4.pop("_k60")
    rows = [
        [name, d["distinct_queries"], d["queries_for_60pct"],
         f"{d['query_coverage_at_k60']:.3f}"]
        for name, d in f4.items()
    ]
    print(format_table(rows, ["subset", "queries", "q@60%", f"cov@{k60}"]))


def _print_fig5() -> None:
    f5 = characterization.figure5()
    for key, value in f5.items():
        if isinstance(value, float):
            print(f"{key:30} {value:.3f}")


def _print_table3() -> None:
    print(
        format_table(
            [[t.query, t.url, t.volume] for t in characterization.table3(10)],
            ["query", "result", "volume"],
        )
    )


def _print_fig7() -> None:
    print(
        format_table(
            [[k, f"{v:.3f}"] for k, v in cachedesign.figure7()],
            ["pairs", "coverage"],
        )
    )


def _print_fig8() -> None:
    rows = cachedesign.figure8()
    print(
        format_table(
            [
                [f"{r['coverage']:.2f}", r["pairs"], r["dram_bytes"], r["flash_bytes"]]
                for r in rows
            ],
            ["coverage", "pairs", "DRAM B", "flash B"],
        )
    )


def _print_fig11() -> None:
    rows = cachedesign.figure11()
    print(
        format_table(
            [[r["results_per_entry"], r["entries"], r["footprint_bytes"]] for r in rows],
            ["results/entry", "entries", "bytes"],
        )
    )


def _print_fig12() -> None:
    rows = cachedesign.figure12()
    print(
        format_table(
            [
                [r["n_files"], f"{r['mean_fetch2_s'] * 1000:.2f}",
                 r["fragmentation_bytes"]]
                for r in rows
            ],
            ["files", "fetch2 (ms)", "frag B"],
        )
    )


def _make_fig15(workers: int):
    def run() -> None:
        f15 = performance.figure15(workers=workers)
        rows = []
        for path, d in f15.items():
            rows.append(
                [
                    path,
                    f"{d['mean_latency_s']:.3f}",
                    f"{d.get('latency_speedup', 1):.1f}x",
                    f"{d['mean_energy_j']:.2f}",
                    f"{d.get('energy_ratio', 1):.1f}x",
                ]
            )
        print(
            format_table(
                rows, ["path", "latency s", "speedup", "energy J", "ratio"]
            )
        )

    return run


def _print_table4() -> None:
    t4 = performance.table4()
    print(
        format_table(
            [
                [part, f"{d['mean_s'] * 1000:.2f}", f"{d['share'] * 100:.1f}%"]
                for part, d in t4.items()
            ],
            ["operation", "ms", "share"],
        )
    )


def _print_table5() -> None:
    t5 = performance.table5()
    print(
        format_table(
            [
                [p, f"{d['pocketsearch_s']:.2f}", f"{d['threeg_s']:.2f}",
                 f"{d['speedup_pct']:.1f}%"]
                for p, d in t5.items()
            ],
            ["page", "PocketSearch s", "3G s", "speedup"],
        )
    )


def _print_fig16() -> None:
    f16 = performance.figure16()
    for path in ("pocketsearch", "radio"):
        d = f16[path]
        name = d.get("name", path)
        print(
            f"{name:14} total {d['total_s']:.1f}s  energy {d['energy_j']:.1f}J  "
            f"mean power {d['mean_power_w'] * 1000:.0f}mW"
        )


def _print_table6() -> None:
    t6 = hitrate.table6()
    print(
        format_table(
            [
                [c, str(d["volume_range"]), f"{d['observed_share']:.3f}",
                 f"{d['target_share']:.2f}"]
                for c, d in t6.items()
            ],
            ["class", "volume", "observed", "paper"],
        )
    )


def _make_fig17(
    users: int, workers: int, engine: str
) -> Callable[[], None]:
    def run() -> None:
        f17 = hitrate.figure17(
            users_per_class=users, workers=workers, engine=engine
        )
        rows = [
            [mode] + [f"{d[k]:.3f}" for k in ("overall", "low", "medium", "high", "extreme")]
            for mode, d in f17.items()
        ]
        print(format_table(rows, ["mode", "overall", "low", "med", "high", "extreme"]))

    return run


def _make_fig18(
    users: int, workers: int, engine: str
) -> Callable[[], None]:
    def run() -> None:
        f18 = hitrate.figure18(
            users_per_class=users, workers=workers, engine=engine
        )
        for window, modes in f18.items():
            for mode, by_class in modes.items():
                values = " ".join(f"{v:.3f}" for v in by_class.values())
                print(f"{window:12} {mode:16} {values}")

    return run


def _make_fig19(
    users: int, workers: int, engine: str
) -> Callable[[], None]:
    def run() -> None:
        f19 = hitrate.figure19(
            users_per_class=users, workers=workers, engine=engine
        )
        rows = [
            [c, f"{s['navigational']:.3f}", f"{s['non_navigational']:.3f}"]
            for c, s in f19.items()
        ]
        print(format_table(rows, ["class", "nav", "non-nav"]))

    return run


def _print_extensions() -> None:
    print("PocketWeb:", extensions.pocketweb_replay(users=12))
    print("Ads:", extensions.ads_coupling(users=12))
    print("Maps:", extensions.maps_commute())
    print("Suggest:", extensions.suggest_effort(users=8))
    print("PCM boot:", extensions.pcm_boot())
    print("Battery:", extensions.battery_life())


def build_parser(mode: Optional[str] = None) -> argparse.ArgumentParser:
    prog = "repro" if mode is None else f"repro {mode}"
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Regenerate Pocket Cloudlets (ASPLOS'11) tables and figures.",
    )
    parser.add_argument("artifact", help="artifact name, 'list', or 'all'")
    parser.add_argument(
        "--users",
        type=int,
        default=40,
        help="users per Table 6 class for replay figures (default 40)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for replay fan-outs (default 1 = serial; "
        "results are bit-identical for any value)",
    )
    parser.add_argument(
        "--engine",
        choices=("scalar", "vectorized"),
        default="scalar",
        help="replay engine for replay figures (vectorized batch-evaluates "
        "each user's stream; results are bit-identical)",
    )
    parser.add_argument(
        "--manifest-out",
        metavar="PATH",
        default=None,
        help="write a run-manifest JSON (config, git SHA, wall time, peak RSS)",
    )
    if mode == "trace":
        parser.add_argument(
            "--trace-out",
            metavar="PATH",
            default="trace.jsonl",
            help="trace destination, JSON Lines (default: trace.jsonl)",
        )
    if mode in OBS_MODES:
        parser.add_argument(
            "--trace-capacity",
            type=int,
            default=obs_trace.DEFAULT_CAPACITY,
            help="ring-buffer size; older spans are evicted beyond this",
        )
    if mode == "profile":
        parser.add_argument(
            "--top",
            type=int,
            default=20,
            help="rows to show in the span-time breakdown (default 20)",
        )
    return parser


def _profile_table(records, top: int) -> str:
    """Aggregate trace records into the span-time breakdown table."""
    rows = obs_trace.span_breakdown(records)
    total_self = sum(r["self_s"] for r in rows) or 1.0
    body = [
        [
            r["name"],
            r["count"],
            f"{r['total_s']:.4f}",
            f"{r['self_s']:.4f}",
            f"{r['mean_ms']:.4f}",
            f"{r['self_s'] / total_self * 100:.1f}%",
        ]
        for r in rows[:top]
    ]
    return format_table(
        body, ["span", "count", "total s", "self s", "mean ms", "self %"]
    )


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SERVE_MODES:
        from repro.serve.cli import loadtest_main, serve_main

        verb = {"serve": serve_main, "loadtest": loadtest_main}[argv[0]]
        return verb(argv[1:])
    if argv and argv[0] == "top":
        from repro.serve.top import top_main

        return top_main(argv[1:])
    if argv and argv[0] == "bench-gate":
        from repro.obs.benchgate import main as benchgate_main

        return benchgate_main(argv[1:])
    if argv and argv[0] == "postmortem":
        from repro.obs.postmortem import postmortem_main

        return postmortem_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analysis.cli import lint_main

        return lint_main(argv[1:])
    mode: Optional[str] = None
    if argv and argv[0] in OBS_MODES:
        mode = argv[0]
        argv = argv[1:]
    args = build_parser(mode).parse_args(argv)
    commands: Dict[str, Callable[[], None]] = {
        "table1": _print_table1,
        "fig2": _print_fig2,
        "table2": _print_table2,
        "fig4": _print_fig4,
        "fig5": _print_fig5,
        "table3": _print_table3,
        "fig7": _print_fig7,
        "fig8": _print_fig8,
        "fig11": _print_fig11,
        "fig12": _print_fig12,
        "fig15": _make_fig15(args.workers),
        "table4": _print_table4,
        "table5": _print_table5,
        "fig16": _print_fig16,
        "table6": _print_table6,
        "fig17": _make_fig17(args.users, args.workers, args.engine),
        "fig18": _make_fig18(args.users, args.workers, args.engine),
        "fig19": _make_fig19(args.users, args.workers, args.engine),
        "mobile-vs-desktop": lambda: print(characterization.mobile_vs_desktop()),
        "daily-updates": lambda: print(
            hitrate.daily_updates(
                users_per_class=10, workers=args.workers, engine=args.engine
            )
        ),
        "baselines": lambda: print(
            ablations.baseline_hit_rates(
                users_per_class=10, workers=args.workers
            )
        ),
        "extensions": _print_extensions,
        "export": lambda: print(
            "\n".join(
                f"{name}: {path}"
                for name, path in __import__(
                    "repro.experiments.export", fromlist=["export_all"]
                ).export_all("figures_csv").items()
            )
        ),
    }
    if args.artifact == "list":
        for name in commands:
            print(name)
        return 0
    if args.artifact == "all":
        def runner() -> None:
            _run_all(commands)
    else:
        command = commands.get(args.artifact)
        if command is None:
            print(
                f"unknown artifact {args.artifact!r}; try 'list'",
                file=sys.stderr,
            )
            return 2
        runner = command

    tracer = None
    if mode in OBS_MODES:
        if args.trace_capacity <= 0:
            print(
                f"repro {mode}: --trace-capacity must be positive, "
                f"got {args.trace_capacity}",
                file=sys.stderr,
            )
            return 2
        from repro.experiments.common import clear_replay_cache

        clear_replay_cache()  # memoized replays would record no spans
        tracer = obs_trace.enable(capacity=args.trace_capacity)
    if args.workers <= 0:
        print(
            f"repro: --workers must be positive, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    recorder = ManifestRecorder(
        args.artifact,
        config={
            "users": args.users,
            "workers": args.workers,
            "engine": args.engine,
            "mode": mode or "run",
        },
    )
    try:
        with recorder:
            runner()
            if tracer is not None:
                recorder.add_metric("spans_dropped", tracer.spans_dropped)
    finally:
        if tracer is not None:
            obs_trace.disable()

    if mode == "trace":
        written = tracer.export_jsonl(args.trace_out)
        if tracer.dropped:
            print(
                f"warning: ring buffer evicted {tracer.dropped} records; "
                "raise --trace-capacity for a complete trace",
                file=sys.stderr,
            )
        print(f"wrote {written} trace records to {args.trace_out}")
    elif mode == "profile":
        print(f"\n=== span-time breakdown: {args.artifact} ===")
        print(_profile_table(tracer.records(), args.top))
    if args.manifest_out:
        recorder.manifest.write(args.manifest_out)
        print(f"wrote run manifest to {args.manifest_out}")
    return 0


def _run_all(commands: Dict[str, Callable[[], None]]) -> None:
    for name, command in commands.items():
        print(f"\n=== {name} ===")
        command()


if __name__ == "__main__":
    sys.exit(main())
