"""The multi-cloudlet registry (Section 7).

When several cloudlets (search, ads, maps, web content...) share one
device, the operating system must:

* **budget storage** — grant each cloudlet a slice of the cloudlet
  partition and keep index memory in check;
* **coordinate eviction** — related items should be evicted together:
  if a query misses the search cache, a hit in the ad cache buys nothing
  (the radio is waking up anyway), so the registry evicts grouped items
  across cloudlets in one pass;
* **isolate** — one cloudlet must not read another's (possibly
  sensitive) cached data without an explicit grant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Set, Tuple

from repro.core.cloudlet import Cloudlet


class IsolationError(Exception):
    """Raised when a cloudlet touches another's data without a grant."""


@dataclass(frozen=True)
class EvictionEvent:
    """One coordinated eviction: which cloudlets dropped how much."""

    group_key: Hashable
    freed_bytes: Dict[str, int]

    @property
    def total_freed(self) -> int:
        return sum(self.freed_bytes.values())


class CloudletRegistry:
    """OS-level manager for the device's cloudlets.

    Args:
        total_budget_bytes: the cloudlet storage partition (the paper
            suggests ~10% of device NVM).
        index_budget_bytes: total index (DRAM/PCM) budget across
            cloudlets; the registry refuses registrations that would
            starve user applications of memory.
    """

    def __init__(
        self, total_budget_bytes: int, index_budget_bytes: int = 64 * 1024 * 1024
    ) -> None:
        if total_budget_bytes <= 0:
            raise ValueError("total_budget_bytes must be positive")
        if index_budget_bytes <= 0:
            raise ValueError("index_budget_bytes must be positive")
        self.total_budget_bytes = total_budget_bytes
        self.index_budget_bytes = index_budget_bytes
        self._cloudlets: Dict[str, Cloudlet] = {}
        self._index_bytes: Dict[str, int] = {}
        self._grants: Set[Tuple[str, str]] = set()  # (reader, owner)
        self._groups: Dict[Hashable, List[Tuple[str, Hashable, int]]] = {}
        self.evictions: List[EvictionEvent] = []

    # -- registration ---------------------------------------------------------

    def register(self, cloudlet: Cloudlet, index_bytes: int = 0) -> None:
        """Admit a cloudlet if storage and index budgets allow.

        Raises:
            ValueError: on duplicate names or budget exhaustion.
        """
        if cloudlet.name in self._cloudlets:
            raise ValueError(f"cloudlet {cloudlet.name!r} already registered")
        if index_bytes < 0:
            raise ValueError("index_bytes must be non-negative")
        allocated = sum(
            c.storage_budget_bytes for c in self._cloudlets.values()
        )
        if allocated + cloudlet.storage_budget_bytes > self.total_budget_bytes:
            raise ValueError(
                f"storage budget exhausted: {allocated} allocated, "
                f"{cloudlet.storage_budget_bytes} requested, "
                f"{self.total_budget_bytes} total"
            )
        index_allocated = sum(self._index_bytes.values())
        if index_allocated + index_bytes > self.index_budget_bytes:
            raise ValueError(
                "index budget exhausted: user applications need the rest "
                "of main memory"
            )
        self._cloudlets[cloudlet.name] = cloudlet
        self._index_bytes[cloudlet.name] = index_bytes

    def unregister(self, name: str) -> None:
        self._require(name)
        del self._cloudlets[name]
        del self._index_bytes[name]
        self._grants = {
            (r, o) for (r, o) in self._grants if r != name and o != name
        }

    def cloudlet(self, name: str) -> Cloudlet:
        return self._require(name)

    @property
    def names(self) -> List[str]:
        return sorted(self._cloudlets)

    @property
    def allocated_bytes(self) -> int:
        return sum(c.storage_budget_bytes for c in self._cloudlets.values())

    @property
    def free_bytes(self) -> int:
        return self.total_budget_bytes - self.allocated_bytes

    # -- isolation --------------------------------------------------------------

    def grant_access(self, reader: str, owner: str) -> None:
        """Allow ``reader`` to read ``owner``'s cached data."""
        self._require(reader)
        self._require(owner)
        self._grants.add((reader, owner))

    def revoke_access(self, reader: str, owner: str) -> None:
        self._grants.discard((reader, owner))

    def read_across(self, reader: str, owner: str, key: Hashable):
        """Cross-cloudlet read, enforced by grants.

        Raises:
            IsolationError: without a prior :meth:`grant_access`.
        """
        self._require(reader)
        target = self._require(owner)
        if reader != owner and (reader, owner) not in self._grants:
            raise IsolationError(
                f"cloudlet {reader!r} may not access data of {owner!r}"
            )
        return target.lookup_local(key)

    # -- coordinated eviction ------------------------------------------------------

    def link_group(
        self, group_key: Hashable, members: List[Tuple[str, Hashable, int]]
    ) -> None:
        """Declare that items across cloudlets belong together.

        Args:
            group_key: identity of the related-content group (e.g. a
                query string shared by search and ad caches).
            members: (cloudlet name, item key, item bytes) triples.
        """
        for name, _key, nbytes in members:
            self._require(name)
            if nbytes < 0:
                raise ValueError("item bytes must be non-negative")
        self._groups[group_key] = list(members)

    def evict_group(self, group_key: Hashable) -> EvictionEvent:
        """Evict every member of a group across its cloudlets.

        Raises:
            KeyError: for unknown groups.
        """
        members = self._groups.pop(group_key, None)
        if members is None:
            raise KeyError(f"unknown eviction group {group_key!r}")
        freed: Dict[str, int] = {}
        for name, _key, nbytes in members:
            cloudlet = self._cloudlets.get(name)
            if cloudlet is None:
                continue
            released = cloudlet.evict(nbytes)
            cloudlet.stats.bytes_stored = max(
                0, cloudlet.stats.bytes_stored - released
            )
            freed[name] = freed.get(name, 0) + released
        event = EvictionEvent(group_key=group_key, freed_bytes=freed)
        self.evictions.append(event)
        return event

    def reclaim(self, target_bytes: int) -> List[EvictionEvent]:
        """Free at least ``target_bytes`` by evicting whole groups.

        Groups are evicted in insertion order (oldest first) until the
        target is met or no groups remain.
        """
        if target_bytes < 0:
            raise ValueError("target_bytes must be non-negative")
        events = []
        freed = 0
        for group_key in list(self._groups):
            if freed >= target_bytes:
                break
            event = self.evict_group(group_key)
            freed += event.total_freed
            events.append(event)
        return events

    def _require(self, name: str) -> Cloudlet:
        try:
            return self._cloudlets[name]
        except KeyError:
            raise KeyError(f"no cloudlet named {name!r}") from None
