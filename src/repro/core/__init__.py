"""The generic pocket cloudlet architecture (Sections 3 and 7).

PocketSearch (:mod:`repro.pocketsearch`) is one instance of the template
this package defines:

* :mod:`cloudlet` — the cloudlet interface: local lookup, radio
  fallback, access recording;
* :mod:`selection` — the data-selection layer combining community and
  personal access models (Section 3.1);
* :mod:`management` — update policies: charge-time bulk refresh for
  static data, real-time refresh for the small hot set (Section 3.2);
* :mod:`registry` — the OS-level manager for multiple cloudlets sharing
  one device: storage budgeting, coordinated eviction, and isolation
  (Section 7).
"""

from repro.core.cloudlet import Cloudlet, CloudletStats, LookupOutcome
from repro.core.selection import (
    CommunityAccessModel,
    DataSelector,
    PersonalAccessModel,
)
from repro.core.management import (
    ChargeState,
    UpdatePolicy,
    UpdateScheduler,
)
from repro.core.registry import (
    CloudletRegistry,
    EvictionEvent,
    IsolationError,
)

__all__ = [
    "ChargeState",
    "Cloudlet",
    "CloudletRegistry",
    "CloudletStats",
    "CommunityAccessModel",
    "DataSelector",
    "EvictionEvent",
    "IsolationError",
    "LookupOutcome",
    "PersonalAccessModel",
    "UpdatePolicy",
    "UpdateScheduler",
]
