"""The cloudlet interface.

A pocket cloudlet replicates part of one cloud service on the device.
Concrete cloudlets (search, ads, maps, web content, yellow pages) share
the same service path: try the local store first, fall back to the radio,
and record every access so both the personal and community models learn.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass(frozen=True)
class LookupOutcome(Generic[V]):
    """Result of asking a cloudlet for an item."""

    hit: bool
    value: Optional[V]
    latency_s: float
    energy_j: float


@dataclass
class CloudletStats:
    """Service counters every cloudlet maintains."""

    lookups: int = 0
    hits: int = 0
    bytes_stored: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class Cloudlet(abc.ABC, Generic[K, V]):
    """Base class for pocket cloudlets.

    Subclasses implement the storage-specific pieces; the base class owns
    the service-path bookkeeping shared by all cloudlets.

    Args:
        name: cloudlet name (unique within a registry).
        storage_budget_bytes: flash budget granted by the registry.
    """

    def __init__(self, name: str, storage_budget_bytes: int) -> None:
        if not name:
            raise ValueError("cloudlet name must be non-empty")
        if storage_budget_bytes <= 0:
            raise ValueError("storage_budget_bytes must be positive")
        self.name = name
        self.storage_budget_bytes = storage_budget_bytes
        self.stats = CloudletStats()

    # -- abstract storage operations -------------------------------------------

    @abc.abstractmethod
    def lookup_local(self, key: K) -> Optional[V]:
        """Return the locally cached value for ``key``, or None."""

    @abc.abstractmethod
    def store_local(self, key: K, value: V, nbytes: int) -> None:
        """Cache ``value`` locally, accounting ``nbytes`` of storage."""

    @abc.abstractmethod
    def evict(self, nbytes: int) -> int:
        """Release at least ``nbytes`` of storage; returns bytes freed."""

    @abc.abstractmethod
    def local_cost(self, key: K) -> tuple:
        """(latency_s, energy_j) of serving ``key`` locally."""

    @abc.abstractmethod
    def remote_cost(self, key: K) -> tuple:
        """(latency_s, energy_j) of serving ``key`` over the radio."""

    # -- shared service path -----------------------------------------------------

    def serve(self, key: K) -> LookupOutcome[V]:
        """Serve one request: local first, radio fallback."""
        self.stats.lookups += 1
        value = self.lookup_local(key)
        if value is not None:
            self.stats.hits += 1
            latency, energy = self.local_cost(key)
            return LookupOutcome(True, value, latency, energy)
        latency, energy = self.remote_cost(key)
        return LookupOutcome(False, None, latency, energy)

    def record_access(self, key: K, value: V, nbytes: int) -> None:
        """Cache an item fetched over the radio (personalization path).

        Evicts as needed to stay within the storage budget.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        overflow = self.stats.bytes_stored + nbytes - self.storage_budget_bytes
        if overflow > 0:
            freed = self.evict(overflow)
            self.stats.bytes_stored -= freed
            if self.stats.bytes_stored + nbytes > self.storage_budget_bytes:
                return  # could not make room; skip caching
        self.store_local(key, value, nbytes)
        self.stats.bytes_stored += nbytes
