"""Data management: update policies (Section 3.2).

Cached cloud data needs refreshing.  The paper distinguishes:

* **periodic bulk updates** for relatively static data (search indexes,
  map tiles), run only while the device charges on a fast link — free in
  battery terms;
* **real-time updates** over the radio for the small hot set of dynamic
  data the user actually revisits (news pages, stock quotes) — affordable
  only because that set is small.

:class:`UpdateScheduler` decides, for each cached item, which policy it
gets and when it may run.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Hashable, List, Set


class UpdatePolicy(Enum):
    PERIODIC_CHARGING = "periodic-charging"
    REALTIME = "realtime"


@dataclass(frozen=True)
class ChargeState:
    """Device power/link conditions relevant to bulk updates."""

    charging: bool
    on_fast_link: bool  # WiFi or tethered

    @property
    def bulk_update_allowed(self) -> bool:
        return self.charging and self.on_fast_link


@dataclass(frozen=True)
class UpdateDecision:
    item: Hashable
    policy: UpdatePolicy
    due: bool


class UpdateScheduler:
    """Assigns update policies and schedules refreshes.

    Items accessed more often than ``realtime_threshold`` times per day by
    this user are treated as dynamic-hot and refreshed in real time; the
    rest wait for charge-time bulk updates every ``bulk_period_s``.
    """

    def __init__(
        self,
        bulk_period_s: float = 24 * 3600,
        realtime_threshold_per_day: float = 3.0,
        realtime_budget_per_day: int = 50,
    ) -> None:
        if bulk_period_s <= 0:
            raise ValueError("bulk_period_s must be positive")
        if realtime_threshold_per_day < 0:
            raise ValueError("realtime_threshold_per_day must be non-negative")
        if realtime_budget_per_day < 0:
            raise ValueError("realtime_budget_per_day must be non-negative")
        self.bulk_period_s = bulk_period_s
        self.realtime_threshold_per_day = realtime_threshold_per_day
        self.realtime_budget_per_day = realtime_budget_per_day
        self._daily_access_rate: Dict[Hashable, float] = {}
        self._last_bulk_update: float = 0.0
        self._realtime_updates_today: int = 0
        self._today: int = 0

    # -- access bookkeeping ------------------------------------------------------

    def observe_daily_rate(self, item: Hashable, accesses_per_day: float) -> None:
        """Record how often the user touches ``item``."""
        if accesses_per_day < 0:
            raise ValueError("accesses_per_day must be non-negative")
        self._daily_access_rate[item] = accesses_per_day

    def policy_for(self, item: Hashable) -> UpdatePolicy:
        """Which policy an item gets, given its observed access rate."""
        rate = self._daily_access_rate.get(item, 0.0)
        if rate >= self.realtime_threshold_per_day:
            return UpdatePolicy.REALTIME
        return UpdatePolicy.PERIODIC_CHARGING

    def hot_set(self) -> Set[Hashable]:
        """Items on the real-time policy (should stay small)."""
        return {
            item
            for item, rate in self._daily_access_rate.items()
            if rate >= self.realtime_threshold_per_day
        }

    # -- scheduling ----------------------------------------------------------------

    def bulk_update_due(self, now: float, charge: ChargeState) -> bool:
        """Whether a charge-time bulk refresh should run now."""
        if not charge.bulk_update_allowed:
            return False
        return now - self._last_bulk_update >= self.bulk_period_s

    def run_bulk_update(self, now: float, charge: ChargeState) -> bool:
        """Attempt a bulk refresh; returns whether it ran."""
        if not self.bulk_update_due(now, charge):
            return False
        self._last_bulk_update = now
        return True

    def request_realtime_update(self, item: Hashable, now: float) -> bool:
        """Attempt a radio refresh for one hot item.

        Enforces the per-day budget that keeps real-time updates from
        turning into the bulk-over-radio pattern the paper rules out.
        """
        day = int(now // (24 * 3600))
        if day != self._today:
            self._today = day
            self._realtime_updates_today = 0
        if self.policy_for(item) is not UpdatePolicy.REALTIME:
            return False
        if self._realtime_updates_today >= self.realtime_budget_per_day:
            return False
        self._realtime_updates_today += 1
        return True

    def decisions(self, now: float, charge: ChargeState) -> List[UpdateDecision]:
        """A snapshot of per-item update decisions."""
        bulk_due = self.bulk_update_due(now, charge)
        out = []
        for item in self._daily_access_rate:
            policy = self.policy_for(item)
            due = (
                policy is UpdatePolicy.REALTIME
                or (policy is UpdatePolicy.PERIODIC_CHARGING and bulk_due)
            )
            out.append(UpdateDecision(item=item, policy=policy, due=due))
        return out
