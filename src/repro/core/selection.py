"""Data selection: community + personal access models (Section 3.1).

What gets pushed to the device is chosen by combining:

* a **community model** — item popularity across all users of the
  service (mined server-side from logs);
* a **personal model** — the individual user's own access history,
  frequency- and recency-weighted.

:class:`DataSelector` merges the two into the set of items to cache under
a byte budget, mirroring how PocketSearch's community content plus the
user's own pairs fill its cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Generic, Hashable, List, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)


class CommunityAccessModel(Generic[K]):
    """Server-side item popularity: item -> access volume."""

    def __init__(self) -> None:
        self._volumes: Dict[K, int] = {}

    def record(self, item: K, volume: int = 1) -> None:
        if volume < 0:
            raise ValueError("volume must be non-negative")
        self._volumes[item] = self._volumes.get(item, 0) + volume

    def volume(self, item: K) -> int:
        return self._volumes.get(item, 0)

    @property
    def total_volume(self) -> int:
        return sum(self._volumes.values())

    def top_items(self, k: int) -> List[Tuple[K, int]]:
        """The ``k`` most popular items with their volumes."""
        if k < 0:
            raise ValueError("k must be non-negative")
        ranked = sorted(self._volumes.items(), key=lambda kv: -kv[1])
        return ranked[:k]

    def normalized_volume(self, item: K) -> float:
        total = self.total_volume
        return self._volumes.get(item, 0) / total if total else 0.0


class PersonalAccessModel(Generic[K]):
    """On-device access history with exponential recency decay.

    Each access adds 1 to the item's weight; all weights decay by
    ``exp(-decay_rate * dt)`` between observations, so the score reflects
    both frequency and freshness — the same principle as PocketSearch's
    Equations (1)-(2).
    """

    def __init__(self, decay_rate: float = 1e-6) -> None:
        if decay_rate < 0:
            raise ValueError("decay_rate must be non-negative")
        self.decay_rate = decay_rate
        self._weights: Dict[K, float] = {}
        self._last_update: float = 0.0

    def record(self, item: K, timestamp: float) -> None:
        """Record one access at ``timestamp`` (non-decreasing)."""
        if timestamp < self._last_update:
            raise ValueError(
                f"timestamp {timestamp} precedes last update {self._last_update}"
            )
        self._decay_to(timestamp)
        self._weights[item] = self._weights.get(item, 0.0) + 1.0

    def _decay_to(self, timestamp: float) -> None:
        dt = timestamp - self._last_update
        if dt > 0 and self.decay_rate > 0:
            factor = math.exp(-self.decay_rate * dt)
            for item in self._weights:
                self._weights[item] *= factor
        self._last_update = timestamp

    def weight(self, item: K) -> float:
        return self._weights.get(item, 0.0)

    def top_items(self, k: int) -> List[Tuple[K, float]]:
        if k < 0:
            raise ValueError("k must be non-negative")
        ranked = sorted(self._weights.items(), key=lambda kv: -kv[1])
        return ranked[:k]

    @property
    def n_items(self) -> int:
        return len(self._weights)


@dataclass(frozen=True)
class SelectedItem(Generic[K]):
    item: K
    score: float
    source: str  # "community", "personal", or "both"


class DataSelector(Generic[K]):
    """Merge community and personal models under a storage budget.

    Items are scored ``community_weight * normalized community volume +
    personal_weight * normalized personal weight`` and taken greedily
    until the byte budget is exhausted.
    """

    def __init__(
        self,
        community: CommunityAccessModel,
        personal: PersonalAccessModel,
        community_weight: float = 1.0,
        personal_weight: float = 1.0,
    ) -> None:
        if community_weight < 0 or personal_weight < 0:
            raise ValueError("weights must be non-negative")
        if community_weight == 0 and personal_weight == 0:
            raise ValueError("at least one weight must be positive")
        self.community = community
        self.personal = personal
        self.community_weight = community_weight
        self.personal_weight = personal_weight

    def select(
        self, budget_bytes: int, item_bytes: Dict[K, int]
    ) -> List[SelectedItem]:
        """Choose items to cache.

        Args:
            budget_bytes: storage budget.
            item_bytes: footprint of each candidate item.

        Returns:
            Selected items, best-scored first.
        """
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative")
        total_comm = self.community.total_volume
        max_personal = max(
            (w for _, w in self.personal.top_items(1)), default=0.0
        )
        # Sorted so equal-score ties land deterministically after the
        # stable sort below, whatever order item_bytes was built in.
        candidates = sorted(set(item_bytes))
        scored: List[SelectedItem] = []
        for item in candidates:
            comm = (
                self.community.volume(item) / total_comm if total_comm else 0.0
            )
            pers = (
                self.personal.weight(item) / max_personal
                if max_personal
                else 0.0
            )
            score = (
                self.community_weight * comm + self.personal_weight * pers
            )
            if score <= 0:
                continue
            source = (
                "both"
                if comm > 0 and pers > 0
                else ("community" if comm > 0 else "personal")
            )
            scored.append(SelectedItem(item=item, score=score, source=source))
        scored.sort(key=lambda s: -s.score)
        chosen: List[SelectedItem] = []
        used = 0
        for selected in scored:
            nbytes = item_bytes[selected.item]
            if nbytes < 0:
                raise ValueError("item sizes must be non-negative")
            if used + nbytes > budget_bytes:
                continue
            chosen.append(selected)
            used += nbytes
        return chosen
