"""One simulated cloudlet node: an LRU community-cache slice.

A node holds a bounded slice of the community cache (strict LRU over
query keys — LRU is a *stack algorithm*, so a larger slice's contents
always contain a smaller slice's, which is what makes the hit-rate
sweep in :mod:`repro.edge.evaluate` provably monotone in capacity), a
bounded map of pending popularity deltas awaiting propagation to the
origin, and the counters the telemetry plane reads.

All node state is loop-confined and mutated synchronously between
awaits; the only randomness is the per-node propagation-flush jitter,
drawn once from the node's own ``SeedSequence(seed, spawn_key=(4,
node_id))`` stream so fleets of any size stay deterministic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["EdgeNode"]

#: Spawn-key domain for per-node RNG streams (placement owns 3, the
#: replay harness owns 0-2).
_NODE_DOMAIN = 4


class EdgeNode:
    """A cloudlet node's cache slice, delta buffer, and counters."""

    __slots__ = (
        "node_id",
        "capacity",
        "max_pending_deltas",
        "flush_jitter",
        "next_flush_at",
        "inflight",
        "hits",
        "misses",
        "inserts",
        "evictions",
        "sheds",
        "delta_overflow",
        "_slice",
        "_pending",
    )

    def __init__(
        self,
        node_id: int,
        capacity: Optional[int] = None,
        seed: int = 1009,
        max_pending_deltas: int = 4096,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive when bounded")
        if max_pending_deltas <= 0:
            raise ValueError("max_pending_deltas must be positive")
        self.node_id = node_id
        self.capacity = capacity
        self.max_pending_deltas = max_pending_deltas
        rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(_NODE_DOMAIN, node_id))
        )
        #: uniform [0, 1) offset desynchronizing this node's propagation
        #: flushes from its peers'
        self.flush_jitter = float(rng.random())
        #: loop-clock time of the next propagation flush (set lazily on
        #: first traffic, since the loop epoch isn't known at build time)
        self.next_flush_at: Optional[float] = None
        self.inflight = 0
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.sheds = 0
        self.delta_overflow = 0
        self._slice: "OrderedDict[str, None]" = OrderedDict()
        self._pending: Dict[str, int] = {}

    # -- cache slice ---------------------------------------------------------

    def lookup(self, key: str) -> bool:
        """Probe the slice; a hit refreshes the key's LRU position."""
        if key in self._slice:
            self._slice.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def admit(self, key: str) -> None:
        """Insert (or touch) ``key``, evicting LRU keys above capacity."""
        if key in self._slice:
            self._slice.move_to_end(key)
            return
        self._slice[key] = None
        self.inserts += 1
        if self.capacity is not None:
            while len(self._slice) > self.capacity:
                self._slice.popitem(last=False)
                self.evictions += 1

    def seed_slice(self, keys: Iterable[str]) -> None:
        """Warm the slice; pass keys in ascending score order so the
        most valuable key lands most-recently-used (and warm contents
        stay nested across capacities)."""
        for key in keys:
            self.admit(key)

    def __contains__(self, key: str) -> bool:
        return key in self._slice

    @property
    def size(self) -> int:
        return len(self._slice)

    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    # -- popularity deltas ---------------------------------------------------

    def record_delta(self, key: str) -> None:
        """Count one community access of ``key`` for eventual propagation.

        The pending map is bounded: once ``max_pending_deltas`` distinct
        keys are waiting, deltas for *new* keys are dropped (counted in
        ``delta_overflow``) rather than growing without bound — known
        keys keep accumulating, so the popular mass is preserved.
        """
        count = self._pending.get(key)
        if count is not None:
            self._pending[key] = count + 1
        elif len(self._pending) < self.max_pending_deltas:
            self._pending[key] = 1
        else:
            self.delta_overflow += 1

    @property
    def pending_deltas(self) -> int:
        return len(self._pending)

    def take_deltas(self, limit: Optional[int] = None) -> List[Tuple[str, int]]:
        """Remove and return up to ``limit`` pending ``(key, count)``
        deltas, hottest first (ties broken by key for determinism)."""
        ordered = sorted(self._pending.items(), key=lambda kv: (-kv[1], kv[0]))
        if limit is not None:
            ordered = ordered[:limit]
        for key, _ in ordered:
            del self._pending[key]
        return ordered

    def stats(self) -> Dict[str, float]:
        return {
            "node_id": self.node_id,
            "size": self.size,
            "inflight": self.inflight,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "sheds": self.sheds,
            "pending_deltas": self.pending_deltas,
            "delta_overflow": self.delta_overflow,
        }
