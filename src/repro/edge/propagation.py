"""Bounded, batched popularity propagation between nodes and the origin.

Cloudlet nodes observe community demand locally; the origin update
server needs the global view to compute the next refresh.  Rather than
a chatty per-access feed, each node accumulates a bounded map of
``key -> access count`` deltas (:meth:`~repro.edge.node.EdgeNode.record_delta`)
and flushes them in batches — on its own jittered schedule during
traffic, and unconditionally at end of run.

Every flush is accounted as an
:class:`~repro.pocketsearch.manager.UpdatePatch`, the same bookkeeping
unit the single-device nightly refresh uses, so edge propagation cost
lands in the existing bytes-up/bytes-down compaction ledgers; a refresh
*back* to the nodes (origin pushing its merged top keys) is an
``UpdatePatch`` too, with the payload priced at the cache's
:data:`~repro.pocketsearch.content.DEFAULT_RECORD_BYTES` per record.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.pocketsearch.content import DEFAULT_RECORD_BYTES
from repro.pocketsearch.manager import UpdatePatch

__all__ = ["DELTA_BYTES", "OriginCoordinator"]

#: Wire size of one propagated delta: an 8-byte key hash + 4-byte count.
DELTA_BYTES = 12


class OriginCoordinator:
    """The origin's side of popularity propagation.

    Merges node delta batches into a global popularity book and accounts
    each exchange as an :class:`UpdatePatch`.  Pure synchronous
    bookkeeping — scheduling lives with the tier/nodes.
    """

    def __init__(self) -> None:
        #: merged global popularity: key -> community access count
        self.popularity: Dict[str, int] = {}
        self.patches: List[UpdatePatch] = []
        self.flushes = 0
        self.deltas_merged = 0
        self.refreshes = 0

    # -- node -> origin ------------------------------------------------------

    def apply_deltas(
        self, node_id: int, deltas: List[Tuple[str, int]]
    ) -> UpdatePatch:
        """Merge one node's flushed delta batch into the global book."""
        pairs_added = 0
        for key, count in deltas:
            if count <= 0:
                raise ValueError(f"delta count must be positive, got {count}")
            existing = self.popularity.get(key)
            if existing is None:
                pairs_added += 1
                self.popularity[key] = count
            else:
                self.popularity[key] = existing + count
        patch = UpdatePatch(
            bytes_uploaded=DELTA_BYTES * len(deltas),
            bytes_downloaded=0,
            pairs_added=pairs_added,
            pairs_removed=0,
            results_added=0,
        )
        self.patches.append(patch)
        self.flushes += 1
        self.deltas_merged += len(deltas)
        return patch

    # -- origin -> nodes -----------------------------------------------------

    def top_keys(self, n: int) -> List[str]:
        """The ``n`` globally hottest keys (ties broken by key)."""
        ordered = sorted(self.popularity.items(), key=lambda kv: (-kv[1], kv[0]))
        return [key for key, _ in ordered[:n]]

    def refresh_patch(self, records_pushed: int) -> UpdatePatch:
        """Account one origin -> nodes refresh of ``records_pushed`` records."""
        patch = UpdatePatch(
            bytes_uploaded=0,
            bytes_downloaded=DEFAULT_RECORD_BYTES * records_pushed,
            pairs_added=0,
            pairs_removed=0,
            results_added=records_pushed,
        )
        self.patches.append(patch)
        self.refreshes += 1
        return patch

    # -- totals --------------------------------------------------------------

    @property
    def bytes_uploaded(self) -> int:
        return sum(p.bytes_uploaded for p in self.patches)

    @property
    def bytes_downloaded(self) -> int:
        return sum(p.bytes_downloaded for p in self.patches)

    def stats(self) -> Dict[str, int]:
        return {
            "flushes": self.flushes,
            "refreshes": self.refreshes,
            "deltas_merged": self.deltas_merged,
            "distinct_keys": len(self.popularity),
            "bytes_uploaded": self.bytes_uploaded,
            "bytes_downloaded": self.bytes_downloaded,
        }
